"""Exp. O1 — observability overhead.

The metrics layer is on by default, so its cost must be negligible: this
bench runs the Fig. 2 pipeline (read -> decode -> display) under three
regimes and compares wall time:

* ``disabled()``  — NULL_OBS: no-op metrics, no tracer (the un-instrumented
  baseline);
* default         — live metrics registry, null tracer (what every user
  gets);
* ``scoped(tracing=True)`` — metrics plus a recording tracer.

The gate is on the default regime: always-on metrics must stay within
10% of the null baseline.  Tracing is opt-in, so its cost is reported
but not gated.

Exp. O2 extends the measurement to the supervision layer: the stream
dataplane (the kernel-throughput hot path) runs with a
:class:`~repro.watch.Watchdog` armed — invariant probes on a virtual-time
cadence, SLO engine, flight recorder tracking the channel — and the
*total* observability bill (metrics + watch vs the null baseline) must
stay under 10%.
"""

from __future__ import annotations

import time

from repro.activities import ActivityGraph
from repro.activities.library import VideoDecoder, VideoReader, VideoWindow
from repro.avtime import WorldTime
from repro.codecs import JPEGCodec
from repro.net.channel import Channel
from repro.obs import disabled, scoped
from repro.sim import Simulator
from repro.streams.buffer import StreamBuffer
from repro.streams.element import END_OF_STREAM, StreamElement
from repro.synth import moving_scene
from repro.values.mediatype import standard_type
from repro.watch import Watchdog, default_slos

FRAMES = 30
W, H = 64, 48
REPEATS = 9


def make_encoded():
    return JPEGCodec(80).encode_value(moving_scene(FRAMES, W, H))


def run_pipeline(encoded) -> int:
    """Build and run the Fig. 2 chain inside the ambient obs scope."""
    sim = Simulator()
    graph = ActivityGraph(sim)
    reader = graph.add(VideoReader(sim, name="read"))
    reader.bind(encoded)
    decoder = graph.add(VideoDecoder(sim, encoded.codec, W, H, 8, name="decode"))
    window = graph.add(VideoWindow(sim, name="display"))
    graph.connect(reader.port("video_out"), decoder.port("video_in"))
    graph.connect(decoder.port("video_out"), window.port("video_in"))
    graph.run_to_completion()
    return len(window.presented)


def best_of(repeats, fn) -> float:
    """Minimum wall time over ``repeats`` runs (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        frames = fn()
        elapsed = time.perf_counter() - start
        assert frames == FRAMES
        best = min(best, elapsed)
    return best


def test_obs_overhead_within_budget(exhibit):
    encoded = make_encoded()

    def run_disabled():
        with disabled():
            return run_pipeline(encoded)

    def run_default():
        return run_pipeline(encoded)

    def run_traced():
        with scoped(tracing=True):
            return run_pipeline(encoded)

    # Warm-up (imports, JIT-ish caches) then interleaved best-of-N.
    run_disabled(), run_default(), run_traced()
    base = best_of(REPEATS, run_disabled)
    default = best_of(REPEATS, run_default)
    traced = best_of(REPEATS, run_traced)

    metrics_overhead = default / base - 1
    tracing_overhead = traced / base - 1
    exhibit("obs_overhead", "\n".join([
        "Exp. O1 — observability overhead on the Fig. 2 pipeline",
        f"({FRAMES} frames, best of {REPEATS} runs each)",
        "",
        f"  null obs (baseline)      : {base * 1000:8.2f} ms",
        f"  metrics on, no tracer    : {default * 1000:8.2f} ms  "
        f"({metrics_overhead * 100:+.1f}%)",
        f"  metrics + tracing        : {traced * 1000:8.2f} ms  "
        f"({tracing_overhead * 100:+.1f}%)",
        "",
        "gate: always-on metrics must cost < 10% over the null baseline",
    ]))
    assert metrics_overhead < 0.10, (
        f"default metrics overhead {metrics_overhead * 100:.1f}% exceeds 10%"
    )


# ---------------------------------------------------------------------------
# Exp. O2 — supervision (watch) overhead on the stream dataplane
# ---------------------------------------------------------------------------

ELEMENTS = 4_000
ELEMENT_BITS = 8_000
WATCH_CADENCE_S = 0.002


def run_stream(watch: bool) -> int:
    """The kernel-throughput stream hot path, optionally supervised.

    Producer serializes elements over a channel reservation into a
    bounded buffer; consumer drains it.  With ``watch=True`` a Watchdog
    arms the channel (reservation + bit conservation + process
    accounting probes) and ticks on a virtual-time cadence throughout.
    """
    sim = Simulator()
    channel = Channel(sim, capacity_bps=1e9, latency_s=0.0, name="bench")
    reservation = channel.reserve(1e9, label="bench")
    buffer = StreamBuffer(sim, capacity=64, name="bench")
    raw = standard_type("video/raw")
    payload = b"\x00" * 1000
    horizon_s = ELEMENTS * ELEMENT_BITS / 1e9  # virtual run length

    dog = None
    if watch:
        dog = Watchdog(sim, slos=default_slos())
        dog.arm(channels=[channel], channels_complete=True)
        dog.start(cadence_s=WATCH_CADENCE_S, horizon_s=horizon_s)

    def producer():
        for i in range(ELEMENTS):
            element = StreamElement(
                payload, i, WorldTime(i * 1e-4), raw, ELEMENT_BITS)
            yield from reservation.serialize(element.size_bits)
            yield from buffer.put(element)
        yield from buffer.put(END_OF_STREAM)

    def consumer():
        count = 0
        while True:
            element = yield from buffer.get()
            if element is END_OF_STREAM:
                return count
            count += 1

    sim.spawn(producer(), name="producer")
    proc = sim.spawn(consumer(), name="consumer")
    got = sim.run_until_complete(proc)
    sim.run()  # drain the watchdog ticker to its horizon
    if dog is not None:
        reservation.release()
        dog.teardown(strict=True)
        assert dog.ticks > 0, "watchdog never ticked during the run"
    return got


def test_watch_overhead_within_budget(exhibit):
    def run_null():
        with disabled():
            return run_stream(watch=False)

    def run_default():
        return run_stream(watch=False)

    def run_watched():
        with scoped():
            return run_stream(watch=True)

    for fn in (run_null, run_default, run_watched):  # warm-up
        assert fn() == ELEMENTS

    def best(fn) -> float:
        best_dt = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            got = fn()
            elapsed = time.perf_counter() - start
            assert got == ELEMENTS
            best_dt = min(best_dt, elapsed)
        return best_dt

    base = best(run_null)
    default = best(run_default)
    watched = best(run_watched)

    metrics_overhead = default / base - 1
    watch_overhead = watched / base - 1
    ticks = int(ELEMENTS * ELEMENT_BITS / 1e9 / WATCH_CADENCE_S)
    exhibit("obs_overhead_watch", "\n".join([
        "Exp. O2 — supervision overhead on the stream dataplane",
        f"({ELEMENTS} elements, ~{ticks} invariant checks, "
        f"best of {REPEATS} runs each)",
        "",
        f"  null obs (baseline)      : {base * 1000:8.2f} ms",
        f"  metrics on               : {default * 1000:8.2f} ms  "
        f"({metrics_overhead * 100:+.1f}%)",
        f"  metrics + watchdog armed : {watched * 1000:8.2f} ms  "
        f"({watch_overhead * 100:+.1f}%)",
        "",
        "gate: total observability bill (metrics + watch) must cost",
        "      < 10% over the null baseline",
    ]))
    assert watch_overhead < 0.10, (
        f"watch-armed overhead {watch_overhead * 100:.1f}% exceeds 10%"
    )
