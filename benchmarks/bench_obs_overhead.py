"""Exp. O1 — observability overhead.

The metrics layer is on by default, so its cost must be negligible: this
bench runs the Fig. 2 pipeline (read -> decode -> display) under three
regimes and compares wall time:

* ``disabled()``  — NULL_OBS: no-op metrics, no tracer (the un-instrumented
  baseline);
* default         — live metrics registry, null tracer (what every user
  gets);
* ``scoped(tracing=True)`` — metrics plus a recording tracer.

The gate is on the default regime: always-on metrics must stay within
10% of the null baseline.  Tracing is opt-in, so its cost is reported
but not gated.
"""

from __future__ import annotations

import time

from repro.activities import ActivityGraph
from repro.activities.library import VideoDecoder, VideoReader, VideoWindow
from repro.codecs import JPEGCodec
from repro.obs import disabled, scoped
from repro.sim import Simulator
from repro.synth import moving_scene

FRAMES = 30
W, H = 64, 48
REPEATS = 9


def make_encoded():
    return JPEGCodec(80).encode_value(moving_scene(FRAMES, W, H))


def run_pipeline(encoded) -> int:
    """Build and run the Fig. 2 chain inside the ambient obs scope."""
    sim = Simulator()
    graph = ActivityGraph(sim)
    reader = graph.add(VideoReader(sim, name="read"))
    reader.bind(encoded)
    decoder = graph.add(VideoDecoder(sim, encoded.codec, W, H, 8, name="decode"))
    window = graph.add(VideoWindow(sim, name="display"))
    graph.connect(reader.port("video_out"), decoder.port("video_in"))
    graph.connect(decoder.port("video_out"), window.port("video_in"))
    graph.run_to_completion()
    return len(window.presented)


def best_of(repeats, fn) -> float:
    """Minimum wall time over ``repeats`` runs (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        frames = fn()
        elapsed = time.perf_counter() - start
        assert frames == FRAMES
        best = min(best, elapsed)
    return best


def test_obs_overhead_within_budget(exhibit):
    encoded = make_encoded()

    def run_disabled():
        with disabled():
            return run_pipeline(encoded)

    def run_default():
        return run_pipeline(encoded)

    def run_traced():
        with scoped(tracing=True):
            return run_pipeline(encoded)

    # Warm-up (imports, JIT-ish caches) then interleaved best-of-N.
    run_disabled(), run_default(), run_traced()
    base = best_of(REPEATS, run_disabled)
    default = best_of(REPEATS, run_default)
    traced = best_of(REPEATS, run_traced)

    metrics_overhead = default / base - 1
    tracing_overhead = traced / base - 1
    exhibit("obs_overhead", "\n".join([
        "Exp. O1 — observability overhead on the Fig. 2 pipeline",
        f"({FRAMES} frames, best of {REPEATS} runs each)",
        "",
        f"  null obs (baseline)      : {base * 1000:8.2f} ms",
        f"  metrics on, no tracer    : {default * 1000:8.2f} ms  "
        f"({metrics_overhead * 100:+.1f}%)",
        f"  metrics + tracing        : {traced * 1000:8.2f} ms  "
        f"({tracing_overhead * 100:+.1f}%)",
        "",
        "gate: always-on metrics must cost < 10% over the null baseline",
    ]))
    assert metrics_overhead < 0.10, (
        f"default metrics overhead {metrics_overhead * 100:.1f}% exceeds 10%"
    )
