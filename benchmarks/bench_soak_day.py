"""Exp. R5 — broadcast-day soak: survive seeded chaos, minimize what breaks.

The ``day`` scenario composes every prior subsystem into one long-horizon
broadcast day — live newscast viewers, a Zipf VOD crowd through the cache
tier, BACKGROUND editing batches, overnight maintenance — supervised end
to end by ``repro.watch`` while a seeded gentle chaos plan kills storage
nodes and edge caches under it.  The chaos-*search* harness then proves
the debugging loop closes: with the planted failover leak armed, the
sweep finds the failing chaos seed and ddmin reduces its fault schedule
to the known two-fault core, whose replay deterministically reproduces
the breach and writes the postmortem artifacts.

Gates:

* the gentle-chaos day survives clean: zero invariant breaches, zero QoS
  violations among admitted *interactive* sessions, no unhandled
  exception, nothing stranded after drain — with every planned fault
  actually injected (a quiet chaos plan proves nothing);
* determinism: a second run with the same seed reproduces every fact and
  summary line byte-for-byte (timeline and fault-schedule digests
  included);
* the search minimizes the planted breach to exactly the two overlapping
  outages (``node-outage`` on node-1 + ``edge-cache-outage`` on edge-0),
  the minimized schedule *replays* the breach, and ddmin's probe economy
  stays within the per-pass bound (< 2x the schedule length);
* a second search run returns the identical minimized schedule and probe
  counts — the reduction itself is deterministic.

Runnable as a script for CI (``python benchmarks/bench_soak_day.py
--smoke``) or under pytest like the other benches.  ``--update-perf``
records the headline soak facts under the ``soak_day`` key of
``BENCH_PERF.json``.
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import Dict, Tuple

from repro.obs import scoped
from repro.soak import SEARCH_DEMO_SEED, chaos_search, day, summary_line

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
PERF_PATH = REPO_ROOT / "BENCH_PERF.json"

SEED = 0
#: the minimal failing schedule the search must recover with the leak
#: planted: the two outages whose overlap arms the failover bug.
EXPECTED_CORE = {("node-outage", "node-1"), ("edge-cache-outage", "edge-0")}


def run_all(seed: int) -> Tuple[Dict[str, Dict[str, object]],
                                Dict[str, str]]:
    """One full pass: the supervised day, then the planted-leak search."""
    results: Dict[str, Dict[str, object]] = {}
    summaries: Dict[str, str] = {}
    # Fresh observability scope per run: soak counters must not bleed
    # between the day and the search's probe runs.
    with scoped(tracing=False):
        results["day"] = day(seed=seed)
    summaries["day"] = summary_line("day", results["day"])
    results["search"] = chaos_search(chaos_seeds=[SEARCH_DEMO_SEED],
                                     seed=seed, plant_leak=True)
    return results, summaries


def check(results: Dict[str, Dict[str, object]]) -> list:
    """Evaluate the gates; return the list of failures."""
    failures = []
    facts = results["day"]
    if int(facts["invariant_breaches"]) != 0:
        failures.append(
            f"day: {facts['invariant_breaches']} invariant breach(es) "
            f"({facts['breach_invariant']} on {facts['breach_component']}; "
            f"gate: 0)")
    if int(facts["interactive_violations"]) != 0:
        failures.append(
            f"day: {facts['interactive_violations']} QoS violations among "
            f"admitted interactive sessions (gate: 0)")
    if facts["unhandled_failure"] != "none":
        failures.append(f"day: unhandled {facts['unhandled_failure']}")
    if int(facts["stranded_processes"]) != 0:
        failures.append(f"day: {facts['stranded_processes']} stranded "
                        f"processes after drain")
    if not int(facts["faults_planned"]) or \
            int(facts["faults_injected"]) != int(facts["faults_planned"]):
        failures.append(
            f"day: {facts['faults_injected']} of {facts['faults_planned']} "
            f"planned faults injected — the chaos plan must actually bite")
    report = results["search"]
    if report["failing_seed"] != SEARCH_DEMO_SEED:
        failures.append(f"search: planted leak not found at chaos seed "
                        f"{SEARCH_DEMO_SEED} (got {report['failing_seed']})")
        return failures
    core = {(f["kind"], f["target"])
            for f in report["minimized_plan"]["faults"]} \
        if "minimized_plan" in report else None
    if int(report["minimized_len"]) != len(EXPECTED_CORE):
        failures.append(
            f"search: minimized to {report['minimized_len']} fault(s), "
            f"expected {len(EXPECTED_CORE)}: {report['minimized_schedule']}")
    elif core is not None and core != EXPECTED_CORE:
        failures.append(f"search: minimized core {sorted(core)} != "
                        f"expected {sorted(EXPECTED_CORE)}")
    if report["replay_failing"] is not True:
        failures.append("search: the minimized schedule does not replay "
                        "the breach")
    if int(report["max_pass_probes"]) >= int(report["probe_bound"]):
        failures.append(
            f"search: {report['max_pass_probes']} probes in one ddmin pass "
            f"(bound: < {report['probe_bound']})")
    return failures


def exhibit_text(results: Dict[str, Dict[str, object]]) -> str:
    facts = results["day"]
    report = results["search"]
    lines = [
        "Exp. R5 — broadcast-day soak with seeded chaos search",
        f"(workload seed {SEED}; {facts['phases']} phases / "
        f"{facts['horizon_s']}s horizon: {facts['phase_names']})",
        "",
        f"  workload: {facts['timeline_events']} timeline events — "
        f"{facts['vod_sessions']} VOD sessions "
        f"({facts['vod_admitted']} admitted), "
        f"{facts['live_viewers']} live viewers "
        f"({facts['live_elements']} elements), "
        f"{facts['edit_jobs']} edit batches ({facts['edit_done']} done), "
        f"{facts['version_bumps']} maintenance bumps",
        f"  chaos:    {facts['faults_planned']} faults planned / "
        f"{facts['faults_injected']} injected "
        f"({facts['node_deaths']} node deaths, "
        f"{facts['edge_deaths']} edge deaths); "
        f"{facts['failovers']} failovers, {facts['repairs']} repairs",
        f"  health:   {facts['invariant_breaches']} invariant breaches "
        f"(gate: 0), {facts['interactive_violations']} interactive QoS "
        f"violations (gate: 0), hit ratio {facts['hit_ratio']}, "
        f"{facts['invariant_checks']} invariant checks",
        "",
        f"  search (planted failover leak, chaos seed {SEARCH_DEMO_SEED}):",
        f"    schedule {report['schedule_len']} faults -> minimized "
        f"{report['minimized_len']} in {report['ddmin_probes']} probes "
        f"across {report['ddmin_passes']} passes "
        f"(max {report['max_pass_probes']}/pass, bound < "
        f"{report['probe_bound']}; {report['ddmin_cache_hits']} cache hits)",
        f"    minimal core: {report['minimized_schedule']}",
        f"    replay: failing={report['replay_failing']}, breach="
        f"{report['replay_breach_invariant']} on "
        f"{report['replay_breach_component']}, "
        f"{report['replay_bundles']} postmortem bundle(s)",
        "",
        "gates: clean supervised day under gentle chaos, byte-identical "
        "rerun, two-fault minimized core, breach replays, ddmin probe "
        "bound",
    ]
    return "\n".join(lines)


def update_perf_json(results: Dict[str, Dict[str, object]]) -> None:
    """Record the soak result as a sibling of the kernel trajectory."""
    facts = results["day"]
    report = results["search"]
    doc = json.loads(PERF_PATH.read_text())
    doc["soak_day"] = {
        "seed": SEED,
        "timeline_events": facts["timeline_events"],
        "faults_injected": facts["faults_injected"],
        "invariant_breaches": facts["invariant_breaches"],
        "interactive_violations": facts["interactive_violations"],
        "hit_ratio": facts["hit_ratio"],
        "search": {
            "demo_seed": SEARCH_DEMO_SEED,
            "schedule_len": report["schedule_len"],
            "minimized_len": report["minimized_len"],
            "ddmin_probes": report["ddmin_probes"],
            "max_pass_probes": report["max_pass_probes"],
            "probe_bound": report["probe_bound"],
        },
    }
    PERF_PATH.write_text(json.dumps(doc, indent=2) + "\n")


def test_soak_day_survives_and_search_minimizes(exhibit):
    first, first_lines = run_all(SEED)
    second, second_lines = run_all(SEED)
    failures = check(first)
    exhibit("soak_day", exhibit_text(first))
    assert first["day"] == second["day"], "soak day is not deterministic"
    assert first_lines == second_lines, (
        "soak summary lines are not deterministic across runs")
    for key in ("minimized_sha256", "minimized_schedule", "ddmin_probes",
                "ddmin_passes", "max_pass_probes"):
        assert first["search"][key] == second["search"][key], (
            f"chaos search is not deterministic: {key}")
    assert not failures, "; ".join(failures)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the CI gates and exit nonzero on failure")
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--update-perf", action="store_true",
                        help="record the soak facts in BENCH_PERF.json")
    args = parser.parse_args(argv)

    first, first_lines = run_all(args.seed)
    second, _ = run_all(args.seed)
    failures = check(first)
    if first["day"] != second["day"]:
        failures.append("soak day is not deterministic")
    print(exhibit_text(first))
    print()
    for line in first_lines.values():
        print(line)
    if args.update_perf and not failures:
        update_perf_json(first)
        print(f"updated {PERF_PATH}")
    if failures:
        for failure in failures:
            print(f"soak-smoke FAILED: {failure}", file=sys.stderr)
        return 1
    if args.smoke:
        print("soak-smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
