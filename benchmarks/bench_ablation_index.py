"""Ablation F — ordered index implementation: B-tree vs sorted list.

The database's ordered indexes default to B-trees; the sorted-list
``OrderedIndex`` (bisect + ``list.insert``) is the simple baseline.
Sorted-array insertion is O(n) per key; the B-tree's is O(log n) —
the crossover is what justifies the default for large catalogs.
"""

from __future__ import annotations

import time

from repro.db.btree import BTreeIndex
from repro.db.index import OrderedIndex
from repro.db.objects import OID


def bulk_insert(index, count, stride=7):
    # Non-sequential key order: the sorted list's worst-ish case.
    for i in range(count):
        index.insert((i * stride) % count, OID("T", i))
    return index


def timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return time.perf_counter() - start, result


def test_ablation_index_insert_scaling(benchmark, exhibit):
    lines = [
        "Ablation F — ordered index: B-tree vs sorted list",
        "",
        f"{'keys':<9}{'sorted-list insert (ms)':>25}{'B-tree insert (ms)':>20}",
    ]
    timings = {}
    sizes = (1_000, 10_000, 40_000, 160_000)
    for count in sizes:
        list_s, _ = timed(lambda: bulk_insert(OrderedIndex("T", "n"), count))
        tree_s, _ = timed(lambda: bulk_insert(BTreeIndex("T", "n"), count))
        timings[count] = (list_s, tree_s)
        lines.append(f"{count:<9,}{list_s * 1000:>25.1f}{tree_s * 1000:>20.1f}")
    lines += [
        "",
        "shape: at small catalogs the C-speed memmove of list.insert wins",
        "on constants, but its O(n)-per-insert total grows quadratically;",
        "the B-tree's O(log n) inserts overtake it as the catalog grows.",
    ]
    exhibit("ablation_index", "\n".join(lines))

    # Quadratic vs near-linear growth over the sweep.
    list_growth = timings[sizes[-1]][0] / timings[sizes[0]][0]
    tree_growth = timings[sizes[-1]][1] / timings[sizes[0]][1]
    assert tree_growth < list_growth
    # At the largest size the asymptotics dominate the constants.
    assert timings[sizes[-1]][1] < timings[sizes[-1]][0]

    benchmark(lambda: len(bulk_insert(BTreeIndex("T", "n"), 2_000)))


def test_ablation_index_queries_agree(benchmark, exhibit):
    """Both implementations answer identically (sanity for the swap)."""
    count = 5_000
    tree = bulk_insert(BTreeIndex("T", "n"), count)
    baseline = bulk_insert(OrderedIndex("T", "n"), count)
    for lo, hi in ((0, 100), (2_000, 2_500), (4_900, 4_999)):
        assert tree.range(lo=lo, hi=hi) == baseline.range(lo=lo, hi=hi)
    for key in (0, 1234, 4_999):
        assert tree.eq(key) == baseline.eq(key)
    exhibit("ablation_index_agreement", "\n".join([
        "Ablation F (cont.) — implementations agree on every probed query",
        f"  keys: {count:,}; ranges and point lookups identical: True",
    ]))

    benchmark(lambda: tree.range(lo=1_000, hi=2_000))
