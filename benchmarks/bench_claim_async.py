"""Exp. C4 — the §3.3 client-interface claim.

"Certain AV values require significant lengths of time for their
transfer.  The client does not want to 'block' during such transfers.
Rather it needs to initiate the transfer and then proceed to other tasks,
perhaps being informed when the transfer is complete."

Compares a blocking (issue-request / receive-reply) client against the
prescribed asynchronous stream-based client over the same long transfer:
the async client completes its other work during the transfer; the
blocking client's work is delayed by the full transfer time.
"""

from __future__ import annotations

import pytest

from repro.activities import EVENT_FINISHED
from repro.avdb import AVDatabaseSystem
from repro.sim import Delay, WaitProcess
from repro.storage import MagneticDisk
from repro.synth import moving_scene

FRAMES = 90  # a 3-second transfer at 30 fps
WORK_UNITS = 10
WORK_UNIT_S = 0.2


def build(paced=True):
    system = AVDatabaseSystem()
    system.add_storage(MagneticDisk(system.simulator, "disk0"))
    video = moving_scene(FRAMES, 64, 48)
    system.store_value(video, "disk0")
    session = system.open_session()
    source = session.new_db_source(video)
    window = session.new_video_window(name="w")
    stream = session.connect(source, window)
    return system, session, stream, window


def run_blocking_client():
    """Issue-request / receive-reply: start, wait for EOS, then work."""
    system, session, stream, window = build()
    sim = system.simulator
    work_times = []

    def client():
        stream.start()
        yield WaitProcess(window.process)  # blocked for the whole transfer
        for _ in range(WORK_UNITS):
            yield Delay(WORK_UNIT_S)
            work_times.append(sim.now.seconds)

    proc = sim.spawn(client())
    sim.run_until_complete(proc)
    return sim.now.seconds, work_times


def run_async_client():
    """The paper's interface: start, proceed, get notified at the end."""
    system, session, stream, window = build()
    sim = system.simulator
    work_times = []
    finished_at = []
    window.catch(EVENT_FINISHED, lambda a, e, p: finished_at.append(p.seconds))

    def client():
        stream.start()
        for _ in range(WORK_UNITS):  # work proceeds during the transfer
            yield Delay(WORK_UNIT_S)
            work_times.append(sim.now.seconds)

    proc = sim.spawn(client())
    sim.run_until_complete(proc)
    sim.run()  # drain the remaining stream
    return sim.now.seconds, work_times, finished_at


def test_claim_async_client_interface(benchmark, exhibit):
    blocking_end, blocking_work = run_blocking_client()
    async_end, async_work, finished_at = run_async_client()
    transfer_s = FRAMES / 30.0
    lines = [
        "C4 — blocking vs asynchronous client over a 3 s transfer",
        f"    (client has {WORK_UNITS} x {WORK_UNIT_S:.1f} s of other work)",
        "",
        f"{'client':<12}{'first work done at (s)':>24}"
        f"{'all work done at (s)':>22}{'session ends (s)':>18}",
        f"{'blocking':<12}{blocking_work[0]:>24.2f}"
        f"{blocking_work[-1]:>22.2f}{blocking_end:>18.2f}",
        f"{'async':<12}{async_work[0]:>24.2f}"
        f"{async_work[-1]:>22.2f}{async_end:>18.2f}",
        "",
        f"transfer duration  : {transfer_s:.2f} s",
        f"async notified at  : {finished_at[0]:.2f} s (FINISHED event)",
        "shape: the async client overlaps all its work with the transfer;",
        "the blocking client pays transfer + work serially.",
    ]
    exhibit("claim_async", "\n".join(lines))

    assert async_work[0] == pytest.approx(WORK_UNIT_S)
    assert blocking_work[0] >= transfer_s
    # Total completion: async ~= max(transfer, work); blocking ~= sum.
    assert async_end < blocking_end - 1.0
    assert finished_at and finished_at[0] == pytest.approx(transfer_s, abs=0.2)

    def run():
        end, work, _ = run_async_client()
        return len(work)

    assert benchmark(run) == WORK_UNITS


def test_claim_async_blocking_baseline_benchmark(benchmark):
    def run():
        end, work = run_blocking_client()
        return len(work)

    assert benchmark(run) == WORK_UNITS
