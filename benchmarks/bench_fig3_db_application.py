"""Exp. F3 — Fig. 3: the AV database system and its applications.

Runs both §4.3 pseudo-code sessions against a populated database —
SimpleNewscast (video only) and Newscast (synchronized composite) — with
streams crossing the database/application channel.  Measures end-to-end
latency, inter-track skew, traffic, and the resource allocations the
statements performed.
"""

from __future__ import annotations

from repro.activities.library import Speaker, SubtitleWindow, VideoWindow
from repro.avdb import AVDatabaseSystem
from repro.db import AttributeSpec, ClassDef, Q
from repro.storage import MagneticDisk
from repro.streams.clock import skew_between
from repro.synth import NEWSCAST_CLIP_SPEC, moving_scene, newscast_clip
from repro.values import VideoValue

FRAMES = 30


def build_populated_system():
    system = AVDatabaseSystem()
    system.add_storage(MagneticDisk(system.simulator, "disk0"))
    system.add_storage(MagneticDisk(system.simulator, "disk1"))
    system.db.define_class(ClassDef("SimpleNewscast", attributes=[
        AttributeSpec("title", str, indexed=True),
        AttributeSpec("whenBroadcast", str, indexed=True),
        AttributeSpec("videoTrack", VideoValue),
    ]))
    system.db.define_class(ClassDef("Newscast", attributes=[
        AttributeSpec("title", str, indexed=True),
        AttributeSpec("whenBroadcast", str, indexed=True),
    ], tcomps=[NEWSCAST_CLIP_SPEC]))

    video = moving_scene(FRAMES, 64, 48)
    system.store_value(video, "disk0")
    system.db.insert("SimpleNewscast", title="60 Minutes",
                     whenBroadcast="1992-11-01", videoTrack=video)
    clip = newscast_clip(video_frames=FRAMES, audio_seconds=1.0)
    for track in clip.track_names:
        system.store_value(clip.value(track), "disk1")
    system.db.insert("Newscast", title="60 Minutes",
                     whenBroadcast="1992-11-01", clip=clip)
    return system


def run_simple_session(system):
    """§4.3 example 1: statements 1-6."""
    session = system.open_session("simple-app")
    my_news = session.select_one(
        "SimpleNewscast",
        Q.eq("title", "60 Minutes") & Q.eq("whenBroadcast", "1992-11-01"),
    )
    db_source = session.new_db_source((my_news, "videoTrack"))
    app_sink = session.new_video_window("320x240x8@30")
    stream = session.connect(db_source, app_sink)
    stream.start()
    session.run()
    return session, app_sink, stream


def run_composite_session(system):
    """§4.3 example 2: MultiSource/MultiSink with synchronized tracks."""
    session = system.open_session("composite-app")
    my_news = session.select_one(
        "Newscast",
        Q.eq("title", "60 Minutes") & Q.eq("whenBroadcast", "1992-11-01"),
    )
    db_source = session.new_db_source((my_news, "clip"))
    app_sink = session.new_multi_sink()
    # A 100 ms prebuffer absorbs the constant pipeline latency (device
    # read-ahead + channel transfer) so all tracks present on schedule.
    delay = 0.1
    app_sink.install(VideoWindow(system.simulator, name="win",
                                 keep_payloads=False,
                                 presentation_delay=delay), track="videoTrack")
    app_sink.install(Speaker(system.simulator, name="en", keep_payloads=False,
                             presentation_delay=delay), track="englishTrack")
    app_sink.install(Speaker(system.simulator, name="fr", keep_payloads=False,
                             presentation_delay=delay), track="frenchTrack")
    app_sink.install(SubtitleWindow(system.simulator, name="sub",
                                    presentation_delay=delay),
                     track="subtitleTrack")
    stream = session.connect(db_source, app_sink)
    stream.start()
    session.run()
    return session, app_sink, stream


def test_fig3_db_application_interaction(benchmark, exhibit):
    system = build_populated_system()
    session1, window, stream1 = run_simple_session(system)
    session2, multi_sink, stream2 = run_composite_session(system)

    win = multi_sink.components["win"]
    en = multi_sink.components["en"]
    skew = skew_between(win.log, en.log, samples=20)
    disk0 = system.placement.device("disk0")
    disk1 = system.placement.device("disk1")
    exhibit("fig3_db_application", "\n".join([
        "Fig. 3 — AV database system and applications",
        "",
        "Session 1 (SimpleNewscast, video only):",
        f"  frames presented       : {len(window.presented)}",
        f"  mean presentation lat. : {window.log.mean_latency() * 1000:.3f} ms",
        f"  bits over channel      : {stream1.bits_transferred:,}",
        f"  channel reservations   : 1 "
        f"(admitted on {session1.channel.name})",
        f"  disk0 bits streamed    : {disk0.total_bits_read:,}",
        "",
        "Session 2 (Newscast composite, 4 synchronized tracks):",
        f"  video frames presented : {win.elements_consumed}",
        f"  audio blocks presented : {en.elements_consumed}",
        f"  max |video-audio skew| : {max(abs(s) for s in skew) * 1000:.3f} ms",
        f"  bits over channel      : {stream2.bits_transferred:,}",
        f"  stream connections     : {len(stream2.connections)} (one per track)",
        f"  disk1 bits streamed    : {disk1.total_bits_read:,}",
    ]))
    assert len(window.presented) == FRAMES
    assert win.elements_consumed == FRAMES
    assert max(abs(s) for s in skew) < 0.005
    assert len(stream2.connections) == 4

    def run():
        fresh = build_populated_system()
        _, sink, _ = run_simple_session(fresh)
        return len(sink.presented)

    assert benchmark(run) == FRAMES


def test_fig3_composite_session_benchmark(benchmark):
    def run():
        system = build_populated_system()
        _, multi_sink, _ = run_composite_session(system)
        return multi_sink.components["win"].elements_consumed

    assert benchmark(run) == FRAMES
