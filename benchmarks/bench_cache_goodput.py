"""Exp. R4 — cache tier: flash-crowd goodput and coherence under churn.

The ``zipf-crowd`` scenario offers one fixed Zipf-skewed workload (2000
sessions, one viral asset drawing the bulk of them, a protected
interactive slice) to the same 4-node cluster twice: once bare and once
behind the two-level cache hierarchy (edge caches + per-node block
caches + hot-shard replication boost).  Since the offered load is drawn
from the seed before either run, the goodput ratio measures the cache
tier directly.  The ``churn`` scenario bumps a value's version and kills
an edge mid-crowd to prove the speedup never serves stale bytes.

Gates:

* cached goodput is at least ``GOODPUT_FACTOR`` x the cache-less
  baseline on the identical workload (same seed, same arrivals);
* zero QoS violations among admitted *interactive* sessions in the
  cached run — the fill traffic is BACKGROUND and preemptible, so the
  speedup cannot come out of the interactive slice;
* every replication boost is matched by an unboost (no placement ends
  above its declared R) and nothing is stranded;
* both eviction policies (lru, cost-aware) deliver byte-identical
  content (equal digests) with zero interactive violations;
* under a tight edge capacity (12 of 96 corpus blocks fit) the
  cost-aware policy must beat lru on hit ratio while still serving
  identical bytes — eviction pressure is where GDSF earns its keep;
* churn coherence: zero stale tags served across version bumps and an
  edge outage;
* the whole experiment is deterministic — a second run with the same
  seed must reproduce every number (and the summary lines) exactly.

Runable as a script for CI (``python benchmarks/bench_cache_goodput.py
--smoke``) or under pytest like the other benches.  ``--update-perf``
records the measured ratio under the ``cache_goodput`` key of
``BENCH_PERF.json`` (a sibling of the kernel ``trajectory`` — the
perf-smoke gate reads only the trajectory).
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import Dict, Tuple

from repro.cache import SCENARIOS, summary_line
from repro.obs import scoped

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
PERF_PATH = REPO_ROOT / "BENCH_PERF.json"

SEED = 0
GOODPUT_FACTOR = 3.0
POLICIES = ("lru", "cost-aware")
#: the policy comparison runs at an edge capacity far below the corpus
#: (12 blocks vs 96), so eviction pressure is real; smaller crowd keeps
#: the extra regime cheap.
TIGHT_CAPACITY_BYTES = 360_000
TIGHT_SESSIONS = 600


def run_all(seed: int) -> Tuple[Dict[str, Dict[str, object]],
                                Dict[str, str]]:
    """One full pass: bare baseline, both policies cached, churn."""
    results: Dict[str, Dict[str, object]] = {}
    summaries: Dict[str, str] = {}
    # Fresh observability scope per run: cache.* counters must not
    # bleed between regimes.
    with scoped():
        results["zipf@bare"] = SCENARIOS["zipf-crowd"](seed=seed,
                                                       cached=False)
    summaries["zipf@bare"] = summary_line("zipf@bare", results["zipf@bare"])
    for policy in POLICIES:
        key = f"zipf@{policy}"
        with scoped():
            results[key] = SCENARIOS["zipf-crowd"](seed=seed, cached=True,
                                                   policy=policy)
        summaries[key] = summary_line(key, results[key])
    for policy in POLICIES:
        key = f"zipf-tight@{policy}"
        with scoped():
            results[key] = SCENARIOS["zipf-crowd"](
                seed=seed, cached=True, policy=policy,
                sessions=TIGHT_SESSIONS,
                edge_capacity_bytes=TIGHT_CAPACITY_BYTES)
        summaries[key] = summary_line(key, results[key])
    with scoped():
        results["churn"] = SCENARIOS["churn"](seed=seed)
    summaries["churn"] = summary_line("churn", results["churn"])
    return results, summaries


def check(results: Dict[str, Dict[str, object]]) -> Tuple[float, list]:
    """Evaluate the gates; return (goodput ratio, list of failures)."""
    failures = []
    base = float(results["zipf@bare"]["goodput_mbps"])
    cached = float(results["zipf@lru"]["goodput_mbps"])
    ratio = cached / base if base > 0 else 0.0
    if ratio < GOODPUT_FACTOR:
        failures.append(
            f"caching won only {ratio:.2f}x goodput over the bare cluster "
            f"(gate >= {GOODPUT_FACTOR}x)")
    digests = set()
    for policy in POLICIES:
        run = results[f"zipf@{policy}"]
        if int(run["interactive_violations"]) != 0:
            failures.append(
                f"zipf@{policy}: {run['interactive_violations']} QoS "
                f"violations among admitted interactive sessions (gate: 0)")
        if int(run["boosted_at_end"]) != 0:
            failures.append(
                f"zipf@{policy}: {run['boosted_at_end']} placement(s) "
                f"still boosted after the crowd (leaked boost)")
        if int(run["replica_boosts"]) != int(run["replica_unboosts"]):
            failures.append(
                f"zipf@{policy}: {run['replica_boosts']} boosts vs "
                f"{run['replica_unboosts']} unboosts")
        digests.add(run["digest"])
    if len(digests) != 1:
        failures.append("eviction policies served different bytes: "
                        f"{sorted(digests)}")
    # Tight-capacity regime: eviction pressure is real (the edge holds
    # 12 blocks of a 96-block corpus), so the policies must diverge in
    # hit ratio while still agreeing byte-for-byte.
    tight_digests = {results[f"zipf-tight@{p}"]["digest"] for p in POLICIES}
    if len(tight_digests) != 1:
        failures.append("tight-capacity policies served different bytes: "
                        f"{sorted(tight_digests)}")
    tight_lru = float(results["zipf-tight@lru"]["hit_ratio"])
    tight_gdsf = float(results["zipf-tight@cost-aware"]["hit_ratio"])
    if tight_gdsf <= tight_lru:
        failures.append(
            f"cost-aware hit ratio {tight_gdsf} does not beat lru "
            f"{tight_lru} under tight capacity — the cost-aware policy "
            f"has stopped earning its keep")
    churn = results["churn"]
    if int(churn["stale_tags"]) != 0:
        failures.append(f"churn served {churn['stale_tags']} stale-tagged "
                        f"span(s) (gate: 0)")
    for fact in ("wave_agreement", "a_changed_after_bump", "b_stable"):
        if churn[fact] is not True:
            failures.append(f"churn coherence fact {fact} is {churn[fact]}")
    for key, facts in results.items():
        if int(facts.get("stranded_processes", 0)) != 0:
            failures.append(f"{key}: {facts['stranded_processes']} "
                            f"stranded processes after drain")
    return ratio, failures


def exhibit_text(results: Dict[str, Dict[str, object]],
                 ratio: float) -> str:
    churn = results["churn"]
    lines = [
        "Exp. R4 — cache tier: flash-crowd goodput and coherence",
        f"(seed {SEED}; fixed Zipf workload of "
        f"{results['zipf@bare']['sessions']} sessions, one viral asset)",
        "",
        f"  {'regime':<16} {'goodput (Mb/s)':>15} {'hit ratio':>10} "
        f"{'admitted':>9} {'interactive viol.':>18}",
    ]
    for key in ("zipf@bare", "zipf@lru", "zipf@cost-aware"):
        run = results[key]
        lines.append(
            f"  {key:<16} {run['goodput_mbps']:>15} "
            f"{run['hit_ratio']:>10} {run['sessions_admitted']:>9} "
            f"{run['interactive_violations']:>18}")
    lines += [
        "",
        f"  eviction under pressure ({TIGHT_CAPACITY_BYTES // 1000} KB "
        f"edges, {TIGHT_SESSIONS} sessions — 12 of 96 corpus blocks fit):",
    ]
    for policy in POLICIES:
        run = results[f"zipf-tight@{policy}"]
        lines.append(
            f"  {'tight@' + policy:<16} {run['goodput_mbps']:>15} "
            f"{run['hit_ratio']:>10} {run['sessions_admitted']:>9} "
            f"{run['interactive_violations']:>18}")
    cached = results["zipf@lru"]
    lines += [
        "",
        f"  caching win: {ratio:.2f}x goodput (gate: >= "
        f"{GOODPUT_FACTOR}x) with {cached['interactive_violations']} "
        f"interactive violations (gate: 0)",
        f"  hot handling: {cached['hot_episodes']} hot episodes, "
        f"{cached['replica_boosts']} boosts / "
        f"{cached['replica_unboosts']} unboosts, "
        f"{cached['boosted_at_end']} still boosted at end (gate: 0)",
        f"  policies serve identical bytes: digest "
        f"{str(cached['digest'])[:16]}... for both lru and cost-aware "
        f"(and again under tight capacity)",
        f"  tight capacity: cost-aware keeps hit ratio "
        f"{results['zipf-tight@cost-aware']['hit_ratio']} vs lru "
        f"{results['zipf-tight@lru']['hit_ratio']} — frequency x cost "
        f"beats pure recency once eviction pressure is real",
        f"  churn: {churn['stale_tags']} stale tags across a version bump "
        f"+ edge kill (gate: 0); invalidations={churn['invalidations']}, "
        f"edge_switches={churn['edge_switches']}",
        "",
        "gates: goodput ratio, zero interactive violations, boost "
        "restored, policy digest agreement, churn coherence, two runs "
        "byte-identical",
    ]
    return "\n".join(lines)


def update_perf_json(results: Dict[str, Dict[str, object]],
                     ratio: float) -> None:
    """Record the cache result as a sibling of the kernel trajectory."""
    doc = json.loads(PERF_PATH.read_text())
    doc["cache_goodput"] = {
        "seed": SEED,
        "gate_factor": GOODPUT_FACTOR,
        "goodput_mbps": {
            "bare": results["zipf@bare"]["goodput_mbps"],
            "lru": results["zipf@lru"]["goodput_mbps"],
            "cost-aware": results["zipf@cost-aware"]["goodput_mbps"],
        },
        "ratio_lru_vs_bare": round(ratio, 4),
        "hit_ratio": {
            "lru": results["zipf@lru"]["hit_ratio"],
            "cost-aware": results["zipf@cost-aware"]["hit_ratio"],
        },
        "tight_hit_ratio": {
            "capacity_bytes": TIGHT_CAPACITY_BYTES,
            "lru": results["zipf-tight@lru"]["hit_ratio"],
            "cost-aware": results["zipf-tight@cost-aware"]["hit_ratio"],
        },
        "interactive_violations": results["zipf@lru"][
            "interactive_violations"],
    }
    PERF_PATH.write_text(json.dumps(doc, indent=2) + "\n")


def test_cache_tier_wins_goodput_without_qos_cost(exhibit):
    first, first_lines = run_all(SEED)
    second, second_lines = run_all(SEED)
    ratio, failures = check(first)
    exhibit("cache_goodput", exhibit_text(first, ratio))
    assert first == second, "cache scenarios are not deterministic"
    assert first_lines == second_lines, (
        "cache summary lines are not deterministic across runs")
    assert not failures, "; ".join(failures)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the CI gates and exit nonzero on failure")
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--update-perf", action="store_true",
                        help="record the ratio in BENCH_PERF.json")
    args = parser.parse_args(argv)

    first, first_lines = run_all(args.seed)
    second, _ = run_all(args.seed)
    ratio, failures = check(first)
    if first != second:
        failures.append("cache scenarios are not deterministic")
    print(exhibit_text(first, ratio))
    print()
    for line in first_lines.values():
        print(line)
    if args.update_perf and not failures:
        update_perf_json(first, ratio)
        print(f"updated {PERF_PATH}")
    if failures:
        for failure in failures:
            print(f"cache-smoke FAILED: {failure}", file=sys.stderr)
        return 1
    if args.smoke:
        print("cache-smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
