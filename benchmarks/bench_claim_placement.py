"""Exp. C1 — the §3.3 data-placement claim.

"it may simply not be possible for the database to simultaneously produce
the two video values unless they reside on different devices ... the
database system would ... need to copy one video value to a temporary
area on a second device.  This could be so time-consuming as to destroy
any sense of interactivity."

Measures the mix start-up delay for same-device vs split placement across
clip lengths: split placement starts in milliseconds (interactive), the
copy fallback's delay grows linearly with clip size.
"""

from __future__ import annotations

from repro.editing import Editor
from repro.sim import Simulator
from repro.storage import MagneticDisk, PlacementManager
from repro.synth import moving_scene, noise_video

# Interactivity threshold used by the shape checks: a mix that starts
# within 100 ms feels interactive; seconds of copying does not.
INTERACTIVE_S = 0.1


def make_env(frames, split):
    sim = Simulator()
    manager = PlacementManager(sim)
    a = moving_scene(frames, 64, 48)
    b = noise_video(frames, 64, 48)
    rate = a.data_rate_bps()
    # The source device can stream 1.5 concurrent clips: one is fine,
    # two is not — the paper's situation.
    manager.add_device(MagneticDisk(sim, "src", bandwidth_bps=rate * 1.5))
    manager.add_device(MagneticDisk(sim, "spare", bandwidth_bps=rate * 4))
    manager.place(a, "src")
    manager.place(b, "spare" if split else "src")
    return sim, manager, a, b


def run_mix(frames, split):
    sim, manager, a, b = make_env(frames, split)
    editor = Editor(manager)
    proc = sim.spawn(editor.mix(a, b))
    outcome = sim.run_until_complete(proc)
    return outcome


def test_claim_placement_start_delay(benchmark, exhibit):
    lines = [
        "C1 — same-device vs split placement for interactive video mixing",
        "",
        f"{'clip frames':<13}{'placement':<13}{'copied':<8}"
        f"{'start delay (s)':>16}{'interactive?':>14}",
    ]
    measured = {}
    for frames in (15, 30, 60):
        for split in (False, True):
            outcome = run_mix(frames, split)
            label = "split" if split else "same-device"
            interactive = outcome.start_delay_seconds < INTERACTIVE_S
            measured[(frames, split)] = outcome
            lines.append(
                f"{frames:<13}{label:<13}{str(outcome.copied):<8}"
                f"{outcome.start_delay_seconds:>16.3f}"
                f"{str(interactive):>14}"
            )
    exhibit("claim_placement", "\n".join(lines))

    # Shape: split placement is interactive at every size; same-device
    # placement always copies, and its delay grows with clip length.
    for frames in (15, 30, 60):
        assert measured[(frames, True)].start_delay_seconds < INTERACTIVE_S
        assert measured[(frames, False)].copied
        assert measured[(frames, False)].start_delay_seconds > INTERACTIVE_S
    assert (measured[(60, False)].copy_seconds
            > measured[(15, False)].copy_seconds * 2)

    result = benchmark(lambda: run_mix(30, False))
    assert result.result.num_frames == 30


def test_claim_placement_split_benchmark(benchmark):
    outcome = benchmark(lambda: run_mix(30, True))
    assert not outcome.copied
