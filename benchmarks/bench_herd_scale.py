"""Herd-scale benchmark: clients simulated per wall-clock second.

Runs the same phased workload twice — once as one discrete DES process
per client (the reference), once as a vectorized herd population
through the coupler — and reports **clients simulated per second** for
each plus the speedup.  Before any speed claim, the equivalence probe
must pass: a fast simulation that disagrees with the kernel is a bug,
not a result.

Usage::

    python benchmarks/bench_herd_scale.py                # full run + table
    python benchmarks/bench_herd_scale.py --smoke        # CI gate (>= 50x)
    python benchmarks/bench_herd_scale.py --update       # record into
                                                         # BENCH_PERF.json

The full run drives the herd at 10^5 clients against a discrete
reference at 4x10^3 (running 10^5 discrete clients is exactly the cost
this mode exists to avoid); ``--update`` writes the ``herd_scale``
section of ``BENCH_PERF.json`` and merges ``clients_simulated_per_s``
into the current PR's trajectory row.  The smoke gate re-measures up to
3 times before failing so shared-CI noise dips don't flap the job.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.herd.equivalence import (  # noqa: E402
    equivalence_report,
    run_discrete,
    run_herd,
)
from repro.herd.population import HerdPhase, HerdPopulation  # noqa: E402

PERF_PATH = REPO_ROOT / "BENCH_PERF.json"
RESULTS_PATH = REPO_ROOT / "benchmarks" / "results" / "herd_scale.txt"

STREAM_BPS = 1_000_000.0
EPOCH_S = 0.05
SESSION_EPOCHS = 4

#: expected client counts per mode.  The discrete side is deliberately
#: small — its measured clients/s extrapolates linearly (every client
#: is O(log n) heap work), the herd side is the one being proven.
FULL = {"herd_clients": 100_000, "discrete_clients": 4_000}
SMOKE = {"herd_clients": 50_000, "discrete_clients": 1_000}

#: the acceptance gate: herd clients/s must beat discrete clients/s by
#: at least this factor (the real margin is orders beyond it).
SPEEDUP_GATE = 50.0
SMOKE_ATTEMPTS = 3

#: the equivalence probe's expected population size.
PROBE_CLIENTS = 240


def _phases(rate: float):
    """The surge mix: ramp / peak / cooldown (see repro.herd.scenarios)."""
    return (
        HerdPhase("ramp", 2.0, rate, viral_share=0.35,
                  interactive_share=0.2),
        HerdPhase("peak", 3.0, 4.0 * rate, viral_share=0.6,
                  interactive_share=0.25, background_share=0.1),
        HerdPhase("cool", 2.0, 0.8 * rate, viral_share=0.3),
    )


def _population(clients: int, seed: int = 0) -> HerdPopulation:
    # expected clients of _phases(1.0) = 2 + 12 + 1.6 = 15.6
    return HerdPopulation(_phases(clients / 15.6), seed=seed,
                          catalog_size=32, epoch_s=EPOCH_S)


def _capacity_bps(clients: int) -> float:
    # Keep contention comparable across sizes: one trunk stream slot
    # per 125 expected clients (the peak offers ~2.5x the trunk).
    return STREAM_BPS * max(4, clients // 125)


def measure(mode: str, clients: int, seed: int = 0) -> dict:
    """One timed run; wall time includes population compilation."""
    runner = run_herd if mode == "herd" else run_discrete
    t0 = time.perf_counter()
    population = _population(clients, seed)
    facts = runner(population, capacity_bps=_capacity_bps(clients),
                   stream_bps=STREAM_BPS, session_epochs=SESSION_EPOCHS)
    dt = time.perf_counter() - t0
    simulated = int(facts["clients"])
    return {
        "mode": mode,
        "clients": simulated,
        "wall_s": dt,
        "clients_per_s": simulated / dt,
        "admitted": facts["admitted_full"] + facts["admitted_degraded"],
        "shed": facts["shed"],
    }


def check_equivalence(seed: int = 0) -> dict:
    """The honesty gate: herd == discrete on a small same-seed run."""
    population = _population(PROBE_CLIENTS, seed)
    report = equivalence_report(population,
                                capacity_bps=_capacity_bps(PROBE_CLIENTS),
                                stream_bps=STREAM_BPS,
                                session_epochs=SESSION_EPOCHS)
    return report


def run_pair(sizes: dict, repeats: int = 3) -> dict:
    """Best-of-N clients/s for both modes plus the speedup."""
    herd = max((measure("herd", sizes["herd_clients"])
                for _ in range(repeats)), key=lambda m: m["clients_per_s"])
    discrete = max((measure("discrete", sizes["discrete_clients"])
                    for _ in range(repeats)),
                   key=lambda m: m["clients_per_s"])
    return {
        "herd": herd,
        "discrete": discrete,
        "speedup": herd["clients_per_s"] / discrete["clients_per_s"],
    }


def print_table(pair: dict, title: str) -> None:
    print(f"== {title}")
    for mode in ("herd", "discrete"):
        m = pair[mode]
        print(f"   {mode:<9} {m['clients']:>8,} clients in "
              f"{m['wall_s']:.3f}s = {m['clients_per_s']:>14,.0f} clients/s "
              f"(admitted {m['admitted']:,}, shed {m['shed']:,})")
    print(f"   speedup   {pair['speedup']:,.1f}x "
          f"(gate >= {SPEEDUP_GATE:.0f}x)")


def cmd_run(args) -> int:
    report = check_equivalence()
    verdict = "ok" if report["equivalent"] else "FAILED"
    print(f"equivalence probe ({report['clients']} clients): {verdict}")
    if not report["equivalent"]:
        for line in report["mismatches"]:
            print(f"   {line}", file=sys.stderr)
        return 1
    pair = run_pair(SMOKE if args.smoke_sizes else FULL)
    print_table(pair, "herd scale (clients simulated per second)")
    if args.json:
        Path(args.json).write_text(json.dumps(pair, indent=2))
        print(f"wrote {args.json}")
    return 0


def cmd_smoke(args) -> int:
    """CI gate: equivalence must hold and the speedup must clear the
    gate; re-measure before failing so shared-machine noise dips (which
    depress the herd run more than the discrete one, or vice versa)
    don't flap the job."""
    report = check_equivalence()
    if not report["equivalent"]:
        print("herd-scale smoke FAILED: herd diverges from the discrete "
              "kernel:", file=sys.stderr)
        for line in report["mismatches"]:
            print(f"   {line}", file=sys.stderr)
        return 1
    print(f"equivalence probe ({report['clients']} clients): ok")
    for attempt in range(1, SMOKE_ATTEMPTS + 1):
        pair = run_pair(SMOKE, repeats=2)
        print_table(pair, f"herd-scale smoke (attempt "
                          f"{attempt}/{SMOKE_ATTEMPTS})")
        if pair["speedup"] >= SPEEDUP_GATE:
            print("herd-scale smoke ok")
            return 0
        if attempt < SMOKE_ATTEMPTS:
            print("   below the gate — re-measuring to rule out "
                  "machine noise")
    print(f"herd-scale smoke FAILED: speedup below {SPEEDUP_GATE:.0f}x "
          f"across {SMOKE_ATTEMPTS} attempts", file=sys.stderr)
    return 1


def cmd_update(args) -> int:
    """Measure at full scale and record into BENCH_PERF.json."""
    report = check_equivalence()
    if not report["equivalent"]:
        print("refusing to record: herd diverges from the discrete kernel",
              file=sys.stderr)
        for line in report["mismatches"]:
            print(f"   {line}", file=sys.stderr)
        return 1
    print(f"equivalence probe ({report['clients']} clients): ok")
    pair = run_pair(FULL)
    print_table(pair, "herd scale (full)")

    doc = json.loads(PERF_PATH.read_text()) if PERF_PATH.exists() else {
        "schema": 1, "trajectory": []}
    doc["herd_scale"] = {
        "seed": 0,
        "gate_speedup": SPEEDUP_GATE,
        "equivalence_clients": report["clients"],
        "equivalent": report["equivalent"],
        "herd_clients": pair["herd"]["clients"],
        "herd_wall_s": round(pair["herd"]["wall_s"], 4),
        "discrete_clients": pair["discrete"]["clients"],
        "discrete_wall_s": round(pair["discrete"]["wall_s"], 4),
        "clients_simulated_per_s": round(pair["herd"]["clients_per_s"], 1),
        "discrete_clients_per_s": round(
            pair["discrete"]["clients_per_s"], 1),
        "speedup": round(pair["speedup"], 1),
    }
    # Surface the headline metric on this PR's trajectory row too.
    for entry in doc.get("trajectory", []):
        if entry.get("pr") == args.pr:
            entry["clients_simulated_per_s"] = round(
                pair["herd"]["clients_per_s"], 1)
            entry["herd_scale_speedup"] = round(pair["speedup"], 1)
    PERF_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {PERF_PATH}")

    lines = [
        "herd scale — clients simulated per wall-clock second",
        f"equivalence probe: {report['clients']} clients, "
        f"{'ok' if report['equivalent'] else 'FAILED'}",
        f"herd     {pair['herd']['clients']:>8,} clients  "
        f"{pair['herd']['clients_per_s']:>14,.0f}/s",
        f"discrete {pair['discrete']['clients']:>8,} clients  "
        f"{pair['discrete']['clients_per_s']:>14,.0f}/s",
        f"speedup  {pair['speedup']:,.1f}x (gate >= {SPEEDUP_GATE:.0f}x)",
    ]
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text("\n".join(lines) + "\n")
    print(f"wrote {RESULTS_PATH}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: equivalence + speedup floor")
    parser.add_argument("--smoke-sizes", action="store_true",
                        help="plain run with the smoke workload sizes")
    parser.add_argument("--update", action="store_true",
                        help="write BENCH_PERF.json herd_scale section")
    parser.add_argument("--json", default=None,
                        help="dump raw results to file")
    parser.add_argument("--pr", type=int, default=9)
    args = parser.parse_args(argv)
    if args.smoke:
        return cmd_smoke(args)
    if args.update:
        return cmd_update(args)
    return cmd_run(args)


if __name__ == "__main__":
    raise SystemExit(main())
