"""Exp. R3 — scale-out cluster: read scaling and failover QoS.

The ``read-storm`` scenario offers a fixed workload (16 unpaced streams
over 8 replicated values) to clusters of different sizes; since the
workload does not depend on the node count, the throughput ratio
measures scale-out directly.  The ``node-kill`` scenario kills one of
four nodes under 12 paced streams at R=2: in-flight reads fail over to
surviving replicas and background repair restores replication under its
bandwidth cap without starving the admitted streams.

Gates:

* aggregate read throughput at 4 nodes is at least ``SCALING_FACTOR`` x
  the 1-node baseline (same seed, same workload);
* the single-node kill costs zero QoS violations among the admitted
  paced streams, at least one mid-stream failover actually happened,
  repair restored full replication, and nothing was stranded;
* the whole experiment is deterministic — a second run with the same
  seed must reproduce every number (and the summary lines) exactly.

Runable as a script for CI (``python benchmarks/bench_cluster_scaling.py
--smoke``) or under pytest like the other benches.
"""

from __future__ import annotations

import sys
from typing import Dict, Tuple

from repro.cluster import SCENARIOS, summary_line
from repro.obs import scoped

SEED = 0
SCALING_FACTOR = 1.7
NODE_COUNTS = (1, 2, 4)


def run_all(seed: int) -> Tuple[Dict[str, Dict[str, object]],
                                Dict[str, str]]:
    """One full pass: read-storm at each size, node-kill, rebalance."""
    results: Dict[str, Dict[str, object]] = {}
    summaries: Dict[str, str] = {}
    for nodes in NODE_COUNTS:
        key = f"read-storm@{nodes}"
        # Fresh observability scope per run: cluster.* counters must not
        # bleed between runs.
        with scoped():
            facts = SCENARIOS["read-storm"](seed=seed, nodes=nodes)
        results[key] = facts
        summaries[key] = summary_line(key, facts)
    for name in ("node-kill", "rebalance"):
        with scoped():
            facts = SCENARIOS[name](seed=seed)
        results[name] = facts
        summaries[name] = summary_line(name, facts)
    return results, summaries


def check(results: Dict[str, Dict[str, object]]) -> Tuple[float, list]:
    """Evaluate the gates; return (scaling ratio, list of failures)."""
    failures = []
    base = float(results["read-storm@1"]["throughput_mbps"])
    peak = float(results["read-storm@4"]["throughput_mbps"])
    ratio = peak / base
    if ratio < SCALING_FACTOR:
        failures.append(
            f"read throughput scaled only {ratio:.2f}x from 1 to 4 nodes "
            f"(gate >= {SCALING_FACTOR}x)")
    for key in results:
        if key.startswith("read-storm"):
            storm = results[key]
            if storm["streams_completed"] != storm["streams"]:
                failures.append(f"{key}: only {storm['streams_completed']}"
                                f"/{storm['streams']} streams completed")
    kill = results["node-kill"]
    if int(kill["qos_violations"]) != 0:
        failures.append(
            f"node kill cost {kill['qos_violations']} QoS violations "
            f"among admitted streams (gate: zero)")
    if int(kill["failovers"]) < 1:
        failures.append("node kill caused no mid-stream failover; the "
                        "fault is not biting")
    if int(kill["under_replicated"]) != 0:
        failures.append(f"repair left {kill['under_replicated']} shards "
                        f"under-replicated")
    for key, facts in results.items():
        if int(facts.get("stranded_processes", 0)) != 0:
            failures.append(f"{key}: {facts['stranded_processes']} "
                            f"stranded processes after drain")
    return ratio, failures


def exhibit_text(results: Dict[str, Dict[str, object]],
                 ratio: float) -> str:
    kill = results["node-kill"]
    rebal = results["rebalance"]
    lines = [
        "Exp. R3 — scale-out cluster: read scaling and failover QoS",
        f"(seed {SEED}; fixed workload of "
        f"{results['read-storm@1']['streams']} streams, R=2)",
        "",
        f"  {'nodes':<8} {'throughput (Mb/s)':>18} {'last finish (s)':>16}",
    ]
    for nodes in NODE_COUNTS:
        storm = results[f"read-storm@{nodes}"]
        lines.append(f"  {nodes:<8} {storm['throughput_mbps']:>18} "
                     f"{storm['last_finish_s']:>16}")
    lines += [
        "",
        f"  scaling 1 -> 4 nodes: {ratio:.2f}x "
        f"(gate: >= {SCALING_FACTOR}x)",
        f"  node-kill: {kill['delivered_elements']} elements delivered by "
        f"{kill['streams']} paced streams; {kill['qos_violations']} QoS "
        f"violations (gate: 0), {kill['failovers']} failovers, "
        f"{kill['repairs']} repairs ({kill['repair_megabits']} Mb) under "
        f"the bandwidth cap, {kill['under_replicated']} under-replicated "
        f"after",
        f"  rebalance: {rebal['moved_shards']} shards moved to the joined "
        f"node; max replicas/node {rebal['max_replicas_before']} -> "
        f"{rebal['max_replicas_after']}; "
        f"{rebal['reader_qos_violations']} reader QoS violations",
        "",
        "gates: scaling ratio, zero kill-window QoS violations, >=1 "
        "failover, replication restored, two runs byte-identical",
    ]
    return "\n".join(lines)


def test_cluster_scales_and_survives_node_kill(exhibit):
    first, first_lines = run_all(SEED)
    second, second_lines = run_all(SEED)
    ratio, failures = check(first)
    exhibit("cluster_scaling", exhibit_text(first, ratio))
    assert first == second, "cluster scenarios are not deterministic"
    assert first_lines == second_lines, (
        "cluster summary lines are not deterministic across runs")
    assert not failures, "; ".join(failures)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the CI gates and exit nonzero on failure")
    parser.add_argument("--seed", type=int, default=SEED)
    args = parser.parse_args(argv)

    first, first_lines = run_all(args.seed)
    second, _ = run_all(args.seed)
    ratio, failures = check(first)
    if first != second:
        failures.append("cluster scenarios are not deterministic")
    print(exhibit_text(first, ratio))
    print()
    for line in first_lines.values():
        print(line)
    if failures:
        for failure in failures:
            print(f"cluster-smoke FAILED: {failure}", file=sys.stderr)
        return 1
    if args.smoke:
        print("cluster-smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
