"""Exp. F2 — Fig. 2: flow composition.

Top of the figure: three simple activities chained
(read -> decode -> display).  Bottom: read and decode grouped in a
composite `source` connected to display.  The bench verifies the two
configurations produce identical output with identical timing, and
measures the (intended: negligible) composition overhead.
"""

from __future__ import annotations

import time

import numpy as np

from repro.activities import ActivityGraph, CompositeActivity
from repro.activities.library import VideoDecoder, VideoReader, VideoWindow
from repro.activities.ports import Connection
from repro.codecs import JPEGCodec
from repro.sim import Simulator
from repro.synth import moving_scene

FRAMES = 30
W, H = 64, 48


def make_encoded():
    return JPEGCodec(80).encode_value(moving_scene(FRAMES, W, H))


def simple_chain(encoded):
    """Fig. 2 top: three simple activities."""
    sim = Simulator()
    graph = ActivityGraph(sim)
    codec = encoded.codec
    reader = graph.add(VideoReader(sim, name="read"))
    reader.bind(encoded)
    decoder = graph.add(VideoDecoder(sim, codec, W, H, 8, name="decode"))
    window = graph.add(VideoWindow(sim, name="display"))
    graph.connect(reader.port("video_out"), decoder.port("video_in"))
    graph.connect(decoder.port("video_out"), window.port("video_in"))
    return sim, graph, window


def composite_source(encoded):
    """Fig. 2 bottom: {read, decode} grouped; application sees one port."""
    sim = Simulator()
    graph = ActivityGraph(sim)
    codec = encoded.codec
    source = CompositeActivity(sim, name="source")
    reader = VideoReader(sim, name="read")
    reader.bind(encoded)
    decoder = VideoDecoder(sim, codec, W, H, 8, name="decode")
    source.install(reader)
    source.install(decoder)
    Connection(sim, reader.port("video_out"), decoder.port("video_in"))
    out = source.export(decoder.port("video_out"), "out")
    graph.add(source)
    window = graph.add(VideoWindow(sim, name="display"))
    graph.connect(out, window.port("video_in"))
    return sim, graph, window


def test_fig2_equivalence_and_overhead(benchmark, exhibit):
    encoded = make_encoded()
    sim1, graph1, window1 = simple_chain(encoded)
    start = time.perf_counter()
    graph1.run_to_completion()
    chain_wall = time.perf_counter() - start

    sim2, graph2, window2 = composite_source(encoded)
    start = time.perf_counter()
    graph2.run_to_completion()
    composite_wall = time.perf_counter() - start

    identical = all(
        np.array_equal(a, b)
        for a, b in zip(window1.presented, window2.presented)
    )
    sim3, graph3, _ = simple_chain(encoded)
    sim4, graph4, _ = composite_source(encoded)
    exhibit("fig2_flow_composition", "\n".join([
        "Fig. 2 — simple chain (top) vs composite source (bottom)",
        "",
        "top (three simple activities):",
        graph3.render_ascii(),
        "",
        "bottom (read/decode grouped in a composite):",
        graph4.render_ascii(),
        "",
        f"  frames presented (chain)     : {len(window1.presented)}",
        f"  frames presented (composite) : {len(window2.presented)}",
        f"  identical output frames      : {identical}",
        f"  virtual end time (chain)     : {sim1.now.seconds:.4f} s",
        f"  virtual end time (composite) : {sim2.now.seconds:.4f} s",
        f"  wall time chain              : {chain_wall * 1000:.1f} ms",
        f"  wall time composite          : {composite_wall * 1000:.1f} ms",
        f"  composition overhead         : "
        f"{(composite_wall / chain_wall - 1) * 100:+.1f}% wall, "
        f"{sim2.now.seconds - sim1.now.seconds:+.4f} s virtual",
    ]))
    assert identical
    assert sim1.now.seconds == sim2.now.seconds  # no virtual-time overhead

    def run():
        _, graph, window = composite_source(encoded)
        graph.run_to_completion()
        return len(window.presented)

    assert benchmark(run) == FRAMES


def test_fig2_simple_chain_benchmark(benchmark):
    encoded = make_encoded()

    def run():
        _, graph, window = simple_chain(encoded)
        graph.run_to_completion()
        return len(window.presented)

    assert benchmark(run) == FRAMES
