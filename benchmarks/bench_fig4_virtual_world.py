"""Exp. F4 — Fig. 4: alternative activity graphs for the virtual world.

Runs the walkthrough in both configurations — client-side rendering
(Fig. 4 top: the client has 3D hardware and pulls the video stream) and
database-side rendering (bottom: poses go up, rendered rasters come
down) — across stored-video qualities and view resolutions, and reports
network bytes per frame for each.  The shape to reproduce: compressed
video + fat client minimizes traffic; tiny views from bulky raw sources
favour database-side rendering (the crossover the paper's 'depending upon
the capabilities and resources' sentence implies).
"""

from __future__ import annotations

from repro.codecs import JPEGCodec, MPEGCodec
from repro.render import Rasterizer, client_side_rendering, database_side_rendering, walk_path
from repro.synth import moving_scene

STEPS = 20


def stored_variants():
    base = moving_scene(STEPS, 64, 48)
    return [
        ("raw 64x48", base),
        ("jpeg 64x48", JPEGCodec(75).encode_value(base)),
        ("mpeg 64x48", MPEGCodec(75).encode_value(base)),
    ]


def test_fig4_network_comparison(benchmark, exhibit):
    path = walk_path(STEPS)
    lines = [
        "Fig. 4 — client-side vs database-side rendering",
        "",
        f"{'stored video':<14}{'view':<10}{'client-side B/frame':>22}"
        f"{'db-side B/frame':>18}{'winner':>12}",
    ]
    shapes = []
    for label, video in stored_variants():
        for view_w, view_h in ((96, 72), (32, 24)):
            rasterizer = Rasterizer(view_w, view_h)
            fat = client_side_rendering(video, path, rasterizer=rasterizer)
            thin = database_side_rendering(video, path, rasterizer=rasterizer)
            winner = "client" if fat.network_bits < thin.network_bits else "database"
            shapes.append((label, (view_w, view_h), winner))
            lines.append(
                f"{label:<14}{f'{view_w}x{view_h}':<10}"
                f"{fat.network_bytes_per_frame:>22,.0f}"
                f"{thin.network_bytes_per_frame:>18,.0f}{winner:>12}"
            )
    exhibit("fig4_virtual_world", "\n".join(lines))

    # Shape checks: a fat client with MPEG video always wins; a thin
    # client wins when the source is raw and the view is small.
    results = dict(((label, view), winner) for label, view, winner in shapes)
    assert results[("mpeg 64x48", (96, 72))] == "client"
    assert results[("mpeg 64x48", (32, 24))] == "client"
    assert results[("raw 64x48", (32, 24))] == "database"

    video = stored_variants()[2][1]  # mpeg

    def run():
        result = client_side_rendering(video, path, rasterizer=Rasterizer(48, 36))
        return result.frames_presented

    assert benchmark(run) == STEPS


def test_fig4_database_side_benchmark(benchmark):
    video = MPEGCodec(75).encode_value(moving_scene(STEPS, 64, 48))
    path = walk_path(STEPS)

    def run():
        result = database_side_rendering(video, path, rasterizer=Rasterizer(48, 36))
        return result.frames_presented

    assert benchmark(run) == STEPS
