"""Ablation E — disk-head scheduling policy under concurrent streams.

"disk accesses are scheduled by the storage sub-system" (§3.3).  With N
concurrent sequential streams on one disk, FCFS zig-zags the head between
the streams' regions; C-SCAN sweeps.  Measures total seek distance and
mean request latency as streams scale.
"""

from __future__ import annotations

from repro.sim import Simulator, WaitEvent
from repro.storage.scheduler import DiskScheduler, Policy

REQUESTS_PER_STREAM = 20
BITS_PER_REQUEST = 200_000


def run_streams(policy, num_streams):
    """Each stream reads sequentially within its own disk region, keeping
    a read-ahead window of 4 outstanding requests (as buffered stream
    readers do), so the disk queue always holds a cross-stream mix."""
    sim = Simulator()
    disk = DiskScheduler(sim, policy=policy)
    disk.start()
    all_requests = []
    window = 4

    def stream(index):
        base = index * (disk.cylinders // num_streams)
        outstanding = []
        for i in range(REQUESTS_PER_STREAM):
            request = disk.submit(base + i, BITS_PER_REQUEST)
            outstanding.append(request)
            all_requests.append(request)
            if len(outstanding) >= window:
                yield WaitEvent(outstanding.pop(0).done)
        for request in outstanding:
            yield WaitEvent(request.done)

    procs = [sim.spawn(stream(i)) for i in range(num_streams)]
    for proc in procs:
        sim.run_until_complete(proc)
    disk.stop()
    sim.run()
    return disk, all_requests


def test_ablation_disk_scheduling(benchmark, exhibit):
    lines = [
        "Ablation E — FCFS vs C-SCAN under concurrent sequential streams",
        f"    ({REQUESTS_PER_STREAM} requests/stream, "
        f"{BITS_PER_REQUEST // 1000} kb each)",
        "",
        f"{'streams':<9}{'policy':<9}{'total seek (cyl)':>18}"
        f"{'mean wait (ms)':>16}",
    ]
    seeks = {}
    for num_streams in (2, 4, 8):
        for policy in (Policy.FCFS, Policy.CSCAN):
            disk, requests = run_streams(policy, num_streams)
            seeks[(num_streams, policy)] = disk.total_seek_distance
            lines.append(
                f"{num_streams:<9}{policy.value:<9}"
                f"{disk.total_seek_distance:>18,}"
                f"{disk.mean_wait(requests) * 1000:>16.2f}"
            )
    lines += [
        "",
        "shape: C-SCAN's seek total stays near one sweep regardless of",
        "stream count; FCFS seeks grow with every inter-stream switch.",
    ]
    exhibit("ablation_scheduler", "\n".join(lines))

    for n in (2, 4, 8):
        assert seeks[(n, Policy.CSCAN)] < seeks[(n, Policy.FCFS)]
    # FCFS degrades with stream count; C-SCAN stays near-flat.
    assert seeks[(8, Policy.FCFS)] > seeks[(2, Policy.FCFS)]
    assert seeks[(8, Policy.CSCAN)] < seeks[(8, Policy.FCFS)] / 2

    benchmark(lambda: run_streams(Policy.CSCAN, 4)[0].total_seek_distance)


def test_ablation_fcfs_baseline_benchmark(benchmark):
    benchmark(lambda: run_streams(Policy.FCFS, 4)[0].total_seek_distance)
