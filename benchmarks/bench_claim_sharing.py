"""Exp. C6 — the §3.1/§3.3 device-sharing claim.

"certain devices are very expensive (e.g., digital video effects
processors) and it is more cost-effective if they can be shared by
different clients. ... it may not be possible to allow concurrent use of
special-purpose hardware ... client requests can tie up resources ... for
significant periods of time."

N clients contend for a pool of shared mixer devices; measures mean and
max waiting time as the pool grows — the cost/latency trade-off behind
database-managed device allocation.
"""

from __future__ import annotations

import pytest

from repro.avdb import AVDatabaseSystem
from repro.sim import Delay

CLIENTS = 8
HOLD_SECONDS = 2.0  # each client ties the device up for 2 s


def run_contention(device_count):
    system = AVDatabaseSystem()
    pool = system.resources.add_pool("video-mixer", device_count)
    sim = system.simulator
    waits = []

    def client(index):
        yield Delay(index * 0.01)  # slight stagger: deterministic ordering
        requested = sim.now.seconds
        lease = yield pool.acquire()
        waits.append(sim.now.seconds - requested)
        yield Delay(HOLD_SECONDS)
        lease.release()

    for i in range(CLIENTS):
        sim.spawn(client(i))
    sim.run()
    return waits, pool


def test_claim_sharing_wait_vs_pool_size(benchmark, exhibit):
    lines = [
        f"C6 — {CLIENTS} clients x {HOLD_SECONDS:.0f} s holds, varying pool size",
        "",
        f"{'devices':<9}{'mean wait (s)':>14}{'max wait (s)':>14}"
        f"{'queued clients':>16}",
    ]
    results = {}
    for devices in (1, 2, 4, 8):
        waits, pool = run_contention(devices)
        results[devices] = waits
        lines.append(
            f"{devices:<9}{sum(waits) / len(waits):>14.2f}"
            f"{max(waits):>14.2f}{pool.wait_count:>16}"
        )
    lines += [
        "",
        "shape: waiting shrinks roughly linearly with pool size and",
        "vanishes when every client gets a device — quantifying the",
        "sharing-vs-cost trade-off the database mediates.",
    ]
    exhibit("claim_sharing", "\n".join(lines))

    mean = {d: sum(w) / len(w) for d, w in results.items()}
    assert mean[1] > mean[2] > mean[4]
    assert mean[8] == pytest.approx(0.0)
    assert max(results[1]) == pytest.approx((CLIENTS - 1) * HOLD_SECONDS, rel=0.05)

    benchmark(lambda: run_contention(2)[0])


def test_claim_sharing_fail_fast_semantics(benchmark, exhibit):
    """The §4.3 alternative: statement-fails instead of queueing."""
    from repro.errors import DeviceBusyError
    system = AVDatabaseSystem()
    pool = system.resources.add_pool("dve", 2)
    granted, refused = 0, 0
    leases = []
    for _ in range(5):
        try:
            leases.append(pool.allocate())
            granted += 1
        except DeviceBusyError:
            refused += 1
    exhibit("claim_sharing_failfast", "\n".join([
        "C6b — fail-fast allocation (the §4.3 'statement would fail' path)",
        "",
        f"  pool size          : 2",
        f"  allocation attempts: 5",
        f"  granted            : {granted}",
        f"  refused            : {refused}",
    ]))
    assert granted == 2 and refused == 3
    for lease in leases:
        lease.release()

    def run():
        fresh = AVDatabaseSystem()
        fresh_pool = fresh.resources.add_pool("dve", 2)
        lease = fresh_pool.allocate()
        lease.release()
        return fresh_pool.available

    assert benchmark(run) == 2
