"""Benchmark harness helpers.

Every bench regenerates one paper exhibit (table/figure) or measures one
prose claim (see DESIGN.md section 4).  Since the paper reports no
numbers, each bench prints the regenerated exhibit and saves it under
``benchmarks/results/`` so EXPERIMENTS.md can cite the measured values.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def exhibit():
    """Report one exhibit: print it and persist it to results/."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} =====")
        print(text)

    return _report
