"""Annotation-query benchmark: index-backed vs sequential-scan execution.

Loads a seeded synthetic corpus (the full run is 10^6 annotations
across 2x10^3 values — the ROADMAP gate) into the typed annotation
store, then times the same temporal-query battery through both
execution paths.  Before any speed claim, two honesty gates must pass:

* **equivalence** — every query's index-path rows must be byte-identical
  (same rows, same order, same rendering) to its scan-path rows;
* **concurrency** — queries interleaved with seeded wait-die writer
  transactions stay correct: a younger writer hitting an in-flight
  scan's locks dies (aborts, retriable) instead of corrupting the
  B-tree, and the index still agrees with the scan afterwards.

Usage::

    python benchmarks/bench_annotation_query.py           # full run + table
    python benchmarks/bench_annotation_query.py --smoke   # CI gate (>= 50x)
    python benchmarks/bench_annotation_query.py --update  # record into
                                                          # BENCH_PERF.json

``--update`` writes the ``annotation_query`` section of
``BENCH_PERF.json``, merges the headline numbers into the PR 10
trajectory row, and renders ``benchmarks/results/annotation_query.txt``.
The smoke gate re-measures up to 3 times before failing so shared-CI
noise dips don't flap the job (the pattern from ``bench_herd_scale``).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.annotations import (  # noqa: E402
    AQ,
    AnnotationJoin,
    AnnotationStore,
    CorpusSpec,
    load_corpus,
    run,
    run_join,
)
from repro.errors import LockTimeoutError  # noqa: E402
from repro.obs import scoped  # noqa: E402

PERF_PATH = REPO_ROOT / "BENCH_PERF.json"
RESULTS_PATH = REPO_ROOT / "benchmarks" / "results" / "annotation_query.txt"

FULL = CorpusSpec(seed=0, values=2000, annotations=1_000_000,
                  duration_s=600.0)
SMOKE = CorpusSpec(seed=0, values=400, annotations=120_000,
                   duration_s=600.0)

#: the acceptance gate: the index-backed battery must beat the scan
#: battery by at least this factor (the real margin is far beyond it).
SPEEDUP_GATE = 50.0
SMOKE_ATTEMPTS = 3

#: "value-00000" carries the corpus's viral share — the hot, deeply
#: annotated value a real workload would hammer.
HOT = "value-00000"


def battery(spec: CorpusSpec):
    """The timed queries: all five operators plus filtered variants.

    Every timed query is *selective* — pinned to a track with a
    temporal window — because those are the queries the planner routes
    to the index.  The broad unpinned shape (where the planner rightly
    picks the scan) is equivalence-checked separately in
    :func:`check_global`, untimed.
    """
    return [
        AQ.on(HOT, "audio").during(100.0, 130.0).named("hot-during"),
        AQ.on(HOT, "audio").overlaps(200.0, 201.0).named("hot-overlaps"),
        AQ.on(HOT, "audio").before(50.0).named("hot-before"),
        AQ.on(HOT, "audio").after(550.0).named("hot-after"),
        AQ.on(HOT, "audio").meets(300.0, 330.0).named("hot-meets"),
        AQ.on("value-00100", "video").during(0.0, spec.duration_s)
          .named("cold-track-all"),
        AQ.on(HOT, "audio").of_type("word").where(label="word-003")
          .during(0.0, 300.0).named("hot-filtered"),
    ]


def check_global(store: AnnotationStore) -> bool:
    """The scan-shaped query, both paths, row-for-row (untimed)."""
    query = AQ.of_type("scene").during(290.0, 310.0).named("global-scene")
    return (run(store, query, mode="index").rows
            == run(store, query, mode="scan").rows)


def build_store(spec: CorpusSpec) -> tuple:
    t0 = time.perf_counter()
    store = AnnotationStore()
    facts = load_corpus(store, spec)
    return store, facts, time.perf_counter() - t0


def _rows_digest(results) -> str:
    folded = hashlib.sha256()
    for result in results:
        for ann in result.rows:
            folded.update(ann.to_row().encode())
            folded.update(b"\n")
    return folded.hexdigest()


def run_battery(store: AnnotationStore, spec: CorpusSpec, mode: str) -> dict:
    queries = battery(spec)
    t0 = time.perf_counter()
    results = [run(store, query, mode=mode) for query in queries]
    dt = time.perf_counter() - t0
    return {
        "mode": mode,
        "wall_s": dt,
        "queries": len(queries),
        "queries_per_s": len(queries) / dt,
        "rows": sum(len(r.rows) for r in results),
        "digest": _rows_digest(results),
    }


def measure(store: AnnotationStore, spec: CorpusSpec,
            index_repeats: int = 3) -> dict:
    """Time both paths; equivalence is asserted, not assumed.

    The index battery takes best-of-N (it is fast enough to jitter);
    the scan battery runs once (it is the slow, stable reference).
    """
    index = min((run_battery(store, spec, "index")
                 for _ in range(index_repeats)),
                key=lambda m: m["wall_s"])
    scan = run_battery(store, spec, "scan")
    return {
        "index": index,
        "scan": scan,
        "identical": index["digest"] == scan["digest"]
        and index["rows"] == scan["rows"],
        "speedup": scan["wall_s"] / index["wall_s"],
    }


# -- correctness under concurrent wait-die writers ------------------------
def check_concurrency(store: AnnotationStore, spec: CorpusSpec,
                      seed: int = 0, writers: int = 40) -> dict:
    """Seeded writers interleaved with queries, plus the wait-die probe."""
    rng = random.Random(f"annotation-bench:{seed}")
    probe = AQ.on(HOT, "audio").during(100.0, 130.0)
    commits = 0
    added = []
    agree = True
    for i in range(writers):
        start = rng.uniform(0.0, spec.duration_s - 1.0)
        added.append(store.annotate(HOT, "audio", "word", start, start + 0.5,
                                    {"label": f"bench-{i:03d}"}))
        commits += 1
        if len(added) > 3 and rng.random() < 0.3:
            store.remove(added.pop(rng.randrange(len(added))))
            commits += 1
        if i % 10 == 9:
            agree = agree and (run(store, probe, mode="index").rows
                               == run(store, probe, mode="scan").rows)
    store.track_index(HOT, "audio").check_invariants()

    # The wait-die probe: an older reader's in-flight scan holds SHARED
    # locks (sentinel + visited postings); a younger writer must die.
    reader_tx = store.db.begin()
    scan = store.scan_track(HOT, "audio", tx=reader_tx)
    consumed = [next(scan) for _ in range(5)]
    writer_tx = store.db.begin()
    died = False
    try:
        store.annotate(HOT, "audio", "word", 0.25, 0.75,
                       {"label": "too-young"}, tx=writer_tx)
    except LockTimeoutError as error:
        died = not error.should_retry
        writer_tx.abort()
    rest = list(scan)  # the aborted writer must not have broken the scan
    reader_tx.commit()
    scan_ok = len(consumed) + len(rest) == store.track_stats(HOT,
                                                             "audio").count
    store.track_index(HOT, "audio").check_invariants()
    # After the reader releases its locks the (new, still younger than
    # nothing) writer retries and goes through.
    store.annotate(HOT, "audio", "word", 0.25, 0.75, {"label": "retried"})
    agree = agree and (run(store, probe, mode="index").rows
                       == run(store, probe, mode="scan").rows)
    return {
        "writer_commits": commits + 1,
        "waitdie_abort": died,
        "scan_survived": scan_ok,
        "agree_after_writes": agree,
        "ok": died and scan_ok and agree,
    }


def check_join(store: AnnotationStore) -> bool:
    """One track join, both paths, row-for-row."""
    join = AnnotationJoin(
        AQ.on(HOT, "audio").of_type("word").during(100.0, 120.0),
        "during", AQ.on(HOT, "audio").of_type("turn"))
    return (run_join(store, join, mode="index").rows
            == run_join(store, join, mode="scan").rows)


def print_table(pair: dict, build_s: float, facts: dict,
                title: str) -> None:
    print(f"== {title}")
    print(f"   corpus    {facts['annotations']:>10,} annotations, "
          f"{facts['values']:,} values, {facts['tracks']:,} tracks, "
          f"built in {build_s:.2f}s")
    for mode in ("index", "scan"):
        m = pair[mode]
        print(f"   {mode:<9} {m['queries']} queries in {m['wall_s']:.4f}s "
              f"= {m['queries_per_s']:>10,.1f} queries/s "
              f"({m['rows']:,} rows)")
    print(f"   identical {pair['identical']}   "
          f"speedup {pair['speedup']:,.1f}x (gate >= {SPEEDUP_GATE:.0f}x)")


def _prepare(spec: CorpusSpec):
    store, facts, build_s = build_store(spec)
    return store, facts, build_s


def cmd_run(args) -> int:
    spec = SMOKE if args.smoke_sizes else FULL
    with scoped(tracing=False):
        store, facts, build_s = _prepare(spec)
        pair = measure(store, spec)
        print_table(pair, build_s, facts,
                    "annotation query (index vs sequential scan)")
        concurrency = check_concurrency(store, spec)
        join_ok = check_join(store)
        global_ok = check_global(store)
    print(f"   concurrency {concurrency}")
    print(f"   join_identical {join_ok}   global_identical {global_ok}")
    ok = (pair["identical"] and concurrency["ok"] and join_ok
          and global_ok)
    if args.json:
        Path(args.json).write_text(json.dumps(
            {"pair": pair, "concurrency": concurrency}, indent=2))
        print(f"wrote {args.json}")
    return 0 if ok else 1


def cmd_smoke(args) -> int:
    """CI gate: equivalence + concurrency must hold and the speedup must
    clear the gate; re-measure before failing so shared-machine noise
    dips don't flap the job."""
    with scoped(tracing=False):
        store, facts, build_s = _prepare(SMOKE)
        concurrency = check_concurrency(store, SMOKE)
        join_ok = check_join(store)
        global_ok = check_global(store)
        if not (concurrency["ok"] and join_ok and global_ok):
            print(f"annotation-query smoke FAILED: correctness "
                  f"{concurrency}, join_identical={join_ok}, "
                  f"global_identical={global_ok}", file=sys.stderr)
            return 1
        print(f"concurrency probe: ok ({concurrency['writer_commits']} "
              f"writer commits, wait-die abort observed)")
        for attempt in range(1, SMOKE_ATTEMPTS + 1):
            pair = measure(store, SMOKE, index_repeats=2)
            print_table(pair, build_s, facts,
                        f"annotation-query smoke (attempt "
                        f"{attempt}/{SMOKE_ATTEMPTS})")
            if not pair["identical"]:
                print("annotation-query smoke FAILED: index and scan "
                      "rows diverge", file=sys.stderr)
                return 1
            if pair["speedup"] >= SPEEDUP_GATE:
                print("annotation-query smoke ok")
                return 0
            if attempt < SMOKE_ATTEMPTS:
                print("   below the gate — re-measuring to rule out "
                      "machine noise")
    print(f"annotation-query smoke FAILED: speedup below "
          f"{SPEEDUP_GATE:.0f}x across {SMOKE_ATTEMPTS} attempts",
          file=sys.stderr)
    return 1


def cmd_update(args) -> int:
    """Measure at full scale and record into BENCH_PERF.json."""
    with scoped(tracing=False):
        store, facts, build_s = _prepare(FULL)
        pair = measure(store, FULL)
        print_table(pair, build_s, facts, "annotation query (full)")
        concurrency = check_concurrency(store, FULL)
        join_ok = check_join(store)
        global_ok = check_global(store)
    if not (pair["identical"] and concurrency["ok"] and join_ok
            and global_ok):
        print("refusing to record: correctness gates failed",
              file=sys.stderr)
        return 1

    doc = json.loads(PERF_PATH.read_text()) if PERF_PATH.exists() else {
        "schema": 1, "trajectory": []}
    doc["annotation_query"] = {
        "seed": FULL.seed,
        "gate_speedup": SPEEDUP_GATE,
        "annotations": facts["annotations"],
        "values": facts["values"],
        "tracks": facts["tracks"],
        "build_s": round(build_s, 2),
        "battery_queries": pair["index"]["queries"],
        "battery_rows": pair["index"]["rows"],
        "index_wall_s": round(pair["index"]["wall_s"], 5),
        "scan_wall_s": round(pair["scan"]["wall_s"], 3),
        "index_queries_per_s": round(pair["index"]["queries_per_s"], 1),
        "scan_queries_per_s": round(pair["scan"]["queries_per_s"], 2),
        "identical_rows": pair["identical"],
        "waitdie_abort": concurrency["waitdie_abort"],
        "writer_commits": concurrency["writer_commits"],
        "speedup": round(pair["speedup"], 1),
    }
    rows = doc.setdefault("trajectory", [])
    row = next((e for e in rows if e.get("pr") == args.pr), None)
    if row is None:
        row = {"pr": args.pr,
               "label": f"PR {args.pr} annotation store + temporal "
                        f"query engine"}
        rows.append(row)
    row["annotation_query_speedup"] = round(pair["speedup"], 1)
    row["annotation_index_queries_per_s"] = round(
        pair["index"]["queries_per_s"], 1)
    PERF_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {PERF_PATH}")

    lines = [
        "annotation query — index-backed vs sequential-scan execution",
        f"corpus: {facts['annotations']:,} annotations / "
        f"{facts['values']:,} values / {facts['tracks']:,} tracks "
        f"(built in {build_s:.2f}s)",
        f"index  {pair['index']['queries']} queries  "
        f"{pair['index']['wall_s']:.4f}s  "
        f"{pair['index']['queries_per_s']:>10,.1f}/s",
        f"scan   {pair['scan']['queries']} queries  "
        f"{pair['scan']['wall_s']:.3f}s  "
        f"{pair['scan']['queries_per_s']:>10,.2f}/s",
        f"speedup {pair['speedup']:,.1f}x (gate >= {SPEEDUP_GATE:.0f}x), "
        f"identical rows: {pair['identical']}",
        f"concurrency: {concurrency['writer_commits']} writer commits, "
        f"wait-die abort: {concurrency['waitdie_abort']}, "
        f"agree after writes: {concurrency['agree_after_writes']}",
    ]
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text("\n".join(lines) + "\n")
    print(f"wrote {RESULTS_PATH}")
    return 0


# -- pytest entry point (correctness only; timing gates stay in CI) -------
def test_annotation_query_smoke() -> None:
    spec = CorpusSpec(seed=0, values=60, annotations=12_000,
                      duration_s=600.0)
    with scoped(tracing=False):
        store, _, _ = _prepare(spec)
        for query in battery(spec):
            assert (run(store, query, mode="index").rows
                    == run(store, query, mode="scan").rows), query.describe()
        concurrency = check_concurrency(store, spec, writers=12)
        assert concurrency["ok"], concurrency
        assert check_join(store)
        assert check_global(store)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: equivalence + speedup floor")
    parser.add_argument("--smoke-sizes", action="store_true",
                        help="plain run with the smoke corpus size")
    parser.add_argument("--update", action="store_true",
                        help="write BENCH_PERF.json annotation_query section")
    parser.add_argument("--json", default=None,
                        help="dump raw results to file")
    parser.add_argument("--pr", type=int, default=10)
    args = parser.parse_args(argv)
    if args.smoke:
        return cmd_smoke(args)
    if args.update:
        return cmd_update(args)
    return cmd_run(args)


if __name__ == "__main__":
    raise SystemExit(main())
