"""Exp. R2 — goodput under 10x overload, with and without admission.

Sixty seeded Poisson clients offer ten times the trunk's capacity
(scenario ``surge``).  Without admission control nobody is refused:
every stream statistically multiplexes the trunk, effective rates
collapse to ``capacity / active``, deadlines slip and almost no element
arrives on time — congestion collapse.  With the admission controller
the same offered load is arbitrated: full-rate admission while capacity
lasts, bounded queueing with deadlines, watermark shedding of background
work, and preemption of background streams by interactive ones.

Goodput counts only bits delivered on the operative (possibly
renegotiated) schedule by streams that ran to completion — late
elements, abandoned streams and preempted streams are wasted work.

Gates:

* controlled goodput must be at least ``GOODPUT_FACTOR`` x the
  uncontrolled baseline's, and the baseline must really collapse
  (no baseline stream meets its contract end to end);
* zero QoS violations among admitted interactive streams — in both the
  surge and the priority-mix scenario (where interactive admission works
  by preempting background streams);
* the device-outage breaker walks open -> half-open -> closed against
  the injected scheduler outage, strands nothing, and fails fast while
  open;
* the whole experiment is deterministic — a second run with the same
  seed must reproduce every number (and the summary lines) exactly.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.admission import SCENARIOS, summary_line
from repro.obs import scoped

SEED = 7
GOODPUT_FACTOR = 2.0


def run_all(seed: int) -> Tuple[Dict[str, Dict[bool, Dict[str, object]]],
                                Dict[str, Dict[bool, str]]]:
    results: Dict[str, Dict[bool, Dict[str, object]]] = {}
    summaries: Dict[str, Dict[bool, str]] = {}
    for name in sorted(SCENARIOS):
        results[name] = {}
        summaries[name] = {}
        for admission in (True, False):
            # Fresh observability scope per run: admission.* counters
            # must not bleed between scenarios or regimes.
            with scoped():
                facts = SCENARIOS[name](seed=seed, admission=admission)
            results[name][admission] = facts
            summaries[name][admission] = summary_line(name, facts)
    return results, summaries


def test_admission_beats_overload_collapse(exhibit):
    first, first_lines = run_all(SEED)
    second, second_lines = run_all(SEED)

    surge = first["surge"]
    controlled, baseline = surge[True], surge[False]
    goodput_ratio = (float(controlled["goodput_bps"])
                     / max(float(baseline["goodput_bps"]), 1.0))
    mix = first["priority-mix"]
    outage = first["device-outage"]

    lines = [
        "Exp. R2 — 10x overload: admission control vs. uncontrolled baseline",
        f"(seed {SEED}; {controlled['clients']} Poisson clients, "
        f"{int(controlled['capacity_bps']) // 1_000_000} Mb/s trunk)",
        "",
        f"  {'surge':<22} {'admission':>12} {'no admission':>14}",
        f"  {'admitted full':<22} {controlled['admitted_full']:>12} "
        f"{baseline['admitted_full']:>14}",
        f"  {'degraded':<22} {controlled['admitted_degraded']:>12} "
        f"{baseline['admitted_degraded']:>14}",
        f"  {'shed / timed out':<22} "
        f"{str(controlled['shed']) + ' / ' + str(controlled['timeouts']):>12} "
        f"{str(baseline['shed']) + ' / ' + str(baseline['timeouts']):>14}",
        f"  {'streams meeting QoS':<22} {controlled['qos_streams']:>12} "
        f"{baseline['qos_streams']:>14}",
        f"  {'interactive violations':<22} "
        f"{controlled['interactive_violations']:>12} "
        f"{baseline['interactive_violations']:>14}",
        f"  {'goodput (Mb/s)':<22} "
        f"{float(controlled['goodput_bps']) / 1e6:>12.2f} "
        f"{float(baseline['goodput_bps']) / 1e6:>14.2f}",
        "",
        f"  goodput ratio: {goodput_ratio:.1f}x "
        f"(gate: >= {GOODPUT_FACTOR:.0f}x)",
        f"  priority-mix: {mix[True]['background_preempted']} background "
        f"streams preempted; interactive admitted "
        f"{mix[True]['interactive_admitted']} with admission vs "
        f"{mix[False]['interactive_admitted']} without "
        f"({mix[False]['interactive_timeouts']} timed out)",
        f"  device-outage breaker: {outage[True]['breaker_path']} "
        f"({outage[True]['fast_failed_frames']} fast-failed, "
        f"{outage[True]['stranded_requests']} stranded)",
        "",
        "gates: goodput ratio, zero admitted-interactive violations, "
        "breaker closes again, two runs byte-identical",
    ]
    exhibit("overload", "\n".join(lines))

    assert first == second, "overload scenarios are not deterministic across runs"
    assert first_lines == second_lines, (
        "overload summary lines are not deterministic across runs"
    )

    # The baseline must genuinely collapse, or the comparison is vacuous.
    assert int(baseline["qos_streams"]) == 0, (
        "uncontrolled baseline still met QoS contracts; the overload is "
        "not biting"
    )
    assert goodput_ratio >= GOODPUT_FACTOR, (
        f"admission control delivered only {goodput_ratio:.2f}x the "
        f"uncontrolled goodput (gate {GOODPUT_FACTOR:.0f}x)"
    )

    # Admitted interactive streams are never degraded or late.
    assert int(controlled["interactive_admitted"]) > 0, (
        "no interactive stream was admitted under surge; the "
        "zero-violations gate is vacuous"
    )
    assert int(controlled["interactive_violations"]) == 0
    assert int(mix[True]["interactive_admitted"]) == 2
    assert int(mix[True]["interactive_violations"]) == 0
    assert int(mix[True]["background_preempted"]) >= 1, (
        "priority-mix admitted interactive work without preempting "
        "background streams on a full trunk"
    )

    # The breaker must open under the outage, probe, and close again —
    # with nothing stranded behind it.
    path = str(outage[True]["breaker_path"])
    assert path.startswith("open") and path.endswith("closed")
    assert "half-open" in path
    assert int(outage[True]["fast_failed_frames"]) > 0
    for facts in (outage[True], outage[False]):
        assert int(facts["stranded_requests"]) == 0
    for facts in (controlled, baseline):
        assert int(facts["stranded_processes"]) == 0
        assert int(facts["tx_gave_up"]) == 0
