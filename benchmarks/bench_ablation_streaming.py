"""Ablations over the streaming design choices (DESIGN.md §6).

Four knobs the architecture fixes, each swept to show why the chosen
value is right:

* **device read-ahead factor** — readers reserve ``readahead x`` the
  value's data rate; 1x leaves no headroom and latency accumulates;
* **stream buffer capacity** — bounded buffers create backpressure;
  tiny buffers stall producers without changing output;
* **MPEG GOP length** — compression ratio vs. random-access decode cost;
* **sink prebuffer (presentation delay)** — what absorbs constant
  pipeline latency.
"""

from __future__ import annotations

import pytest

from repro.activities import ActivityGraph
from repro.activities.library import VideoReader, VideoWindow
from repro.avdb import AVDatabaseSystem
from repro.codecs import MPEGCodec
from repro.sim import Simulator
from repro.storage import MagneticDisk
from repro.synth import moving_scene

FRAMES = 30


def playback_latency(readahead, presentation_delay=0.0):
    system = AVDatabaseSystem()
    system.readahead = readahead
    system.add_storage(MagneticDisk(system.simulator, "disk0"))
    video = moving_scene(FRAMES, 64, 48)
    system.store_value(video, "disk0")
    session = system.open_session()
    source = session.new_db_source(video)
    window = session.new_video_window(name="w")
    window.presentation_delay = presentation_delay
    stream = session.connect(source, window)
    stream.start()
    session.run()
    return window.log


def test_ablation_readahead(benchmark, exhibit):
    lines = [
        "Ablation A — device read-ahead factor vs presentation latency",
        "",
        f"{'readahead':<12}{'mean latency (ms)':>19}{'max latency (ms)':>18}"
        f"{'jitter (ms)':>13}",
    ]
    stats = {}
    for factor in (1.05, 1.5, 2.0, 4.0):
        log = playback_latency(factor)
        stats[factor] = log
        lines.append(
            f"{factor:<12}{log.mean_latency() * 1000:>19.2f}"
            f"{log.max_latency() * 1000:>18.2f}{log.jitter() * 1000:>13.2f}"
        )
    lines += [
        "",
        "shape: with read-ahead the pipeline latency is a small constant;",
        "at ~1x the device can never get ahead and latency stays at the",
        "per-element maximum.  2x (the default) is already in the flat",
        "regime — more buys little.",
    ]
    exhibit("ablation_readahead", "\n".join(lines))
    assert stats[2.0].mean_latency() < stats[1.05].mean_latency()
    assert stats[2.0].jitter() < 0.01  # constant latency: sustainable

    benchmark(lambda: playback_latency(2.0).mean_latency())


def buffer_pressure(capacity):
    """Fast free-run source into a paced window through a tiny buffer."""
    sim = Simulator()
    graph = ActivityGraph(sim)
    video = moving_scene(FRAMES, 64, 48)
    reader = graph.add(VideoReader(sim))
    reader.bind(video)
    reader.paced = False  # producer runs as fast as the buffer lets it
    window = graph.add(VideoWindow(sim, keep_payloads=False))
    connection = graph.connect(reader.port("video_out"),
                               window.port("video_in"), capacity=capacity)
    graph.run_to_completion()
    return connection.buffer, window


def test_ablation_buffer_capacity(benchmark, exhibit):
    lines = [
        "Ablation B — buffer capacity vs producer stalls (backpressure)",
        "",
        f"{'capacity':<10}{'producer stalls':>17}{'high watermark':>16}"
        f"{'frames out':>12}",
    ]
    results = {}
    for capacity in (1, 2, 8, 64):
        buffer, window = buffer_pressure(capacity)
        results[capacity] = buffer
        lines.append(
            f"{capacity:<10}{buffer.producer_stalls:>17}"
            f"{buffer.high_watermark:>16}{window.elements_consumed:>12}"
        )
    lines += [
        "",
        "shape: output is identical at every capacity (bounded buffers",
        "never drop); small buffers just stall the producer more — the",
        "§3.3 'system resources (buffers...) are limited' behaviour.",
    ]
    exhibit("ablation_buffer", "\n".join(lines))
    assert results[1].producer_stalls > results[64].producer_stalls
    assert all(buffer.high_watermark <= cap
               for cap, buffer in results.items())

    benchmark(lambda: buffer_pressure(8)[0].total_put)


def test_ablation_mpeg_gop(benchmark, exhibit):
    """GOP length: compression vs random-access cost."""
    import time
    video = moving_scene(60, 64, 48)
    lines = [
        "Ablation C — MPEG GOP length: compression vs random access",
        "",
        f"{'GOP':<6}{'compression ratio':>19}{'random-access decodes/s':>26}",
    ]
    data = {}
    for gop in (1, 5, 15, 30):
        codec = MPEGCodec(75, gop=gop)
        encoded = codec.encode_value(video)
        # Random access cost: decode the frame just before each keyframe
        # (the worst case: longest delta chain).
        worst = [min(k + gop - 1, 59) for k in range(0, 60, gop)][:4]
        start = time.perf_counter()
        for index in worst * 3:
            encoded.frame(index)
        elapsed = time.perf_counter() - start
        rate = (len(worst) * 3) / elapsed
        data[gop] = (encoded.compression_ratio(), rate)
        lines.append(f"{gop:<6}{data[gop][0]:>19.1f}{data[gop][1]:>26,.0f}")
    lines += [
        "",
        "shape: longer GOPs compress better but random access pays a",
        "longer delta-chain decode — the classic interframe trade-off.",
    ]
    exhibit("ablation_mpeg_gop", "\n".join(lines))
    assert data[30][0] > data[1][0]  # longer GOP compresses better
    assert data[1][1] > data[30][1]  # but random access is cheaper at GOP 1

    benchmark(lambda: MPEGCodec(75, gop=10).encode_value(
        moving_scene(10, 32, 24)).data_size_bits())


def test_ablation_prebuffer(benchmark, exhibit):
    """Sink presentation delay: absorbing constant pipeline latency."""
    lines = [
        "Ablation D — sink prebuffer vs presentation punctuality",
        "",
        f"{'prebuffer (ms)':<16}{'mean lateness vs schedule (ms)':>32}",
    ]
    results = {}
    for delay in (0.0, 0.05, 0.1):
        log = playback_latency(2.0, presentation_delay=delay)
        # Lateness vs the *shifted* schedule (ideal + prebuffer).
        lateness = log.mean_latency() - delay
        results[delay] = lateness
        lines.append(f"{delay * 1000:<16.0f}{lateness * 1000:>32.2f}")
    lines += [
        "",
        "shape: once the prebuffer exceeds the constant pipeline latency,",
        "every element presents exactly on its shifted schedule (0 ms).",
    ]
    exhibit("ablation_prebuffer", "\n".join(lines))
    assert results[0.1] == pytest.approx(0.0, abs=1e-6)
    assert results[0.0] > results[0.1]

    benchmark(lambda: playback_latency(2.0, presentation_delay=0.1).mean_latency())
