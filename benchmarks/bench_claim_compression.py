"""Exp. C2 — the §4 footnote compression claim.

"In some cases, by exchanging compressed AV data, transfer durations can
be reduced ... This is not possible in general since ... the data may
involve a 'live' source in which case it is impossible to compress the
entire value prior to exchange."

Measures bulk-transfer time of one clip, raw vs each codec, over a fixed
2 Mb/s channel; then shows the live-source case, where the stream is
bounded below by real time no matter the codec.
"""

from __future__ import annotations

from repro.activities import Location
from repro.activities.library import VideoDecoder
from repro.avdb import AVDatabaseSystem
from repro.codecs import DVICodec, JPEGCodec, MPEGCodec, RLECodec
from repro.storage import MagneticDisk
from repro.synth import moving_scene

FRAMES = 20
CHANNEL_BPS = 2_000_000.0


def bulk_transfer_seconds(value):
    """Ship the whole value over the channel as fast as it will go."""
    system = AVDatabaseSystem()
    system.readahead = 100.0  # bulk read, not paced at playback rate
    system.add_storage(MagneticDisk(system.simulator, "disk0"))
    system.store_value(value, "disk0")
    session = system.open_session(channel_bps=CHANNEL_BPS)
    source = session.new_db_source(value, deliver="stored")
    source.paced = False
    window = session.new_video_window(name="w")
    window.paced = False
    if value.media_type.compressed:
        decoder = session.new_activity(VideoDecoder(
            system.simulator, value.codec, value.width, value.height,
            value.depth, location=Location.APPLICATION))
        session.connect(source, decoder.port("video_in"),
                        bandwidth_bps=CHANNEL_BPS).start()
        session.connect(decoder.port("video_out"), window).start()
    else:
        session.connect(source, window, bandwidth_bps=CHANNEL_BPS).start()
    end = session.run()
    assert len(window.presented) == value.num_frames
    return end.seconds


def live_transfer_seconds(value):
    """A live source cannot run ahead of real time: paced production."""
    system = AVDatabaseSystem()
    system.add_storage(MagneticDisk(system.simulator, "disk0"))
    session = system.open_session(channel_bps=CHANNEL_BPS)
    source = system.make_source(value, deliver="stored")  # unplaced = live feed
    session._activities.append(source)
    window = session.new_video_window(name="w")
    window.paced = False
    if value.media_type.compressed:
        decoder = session.new_activity(VideoDecoder(
            system.simulator, value.codec, value.width, value.height,
            value.depth, location=Location.APPLICATION))
        session.connect(source, decoder.port("video_in"),
                        bandwidth_bps=CHANNEL_BPS).start()
        session.connect(decoder.port("video_out"), window).start()
    else:
        session.connect(source, window, bandwidth_bps=CHANNEL_BPS).start()
    end = session.run()
    return end.seconds


def variants():
    raw = moving_scene(FRAMES, 64, 48)
    return [
        ("raw", raw),
        ("rle", RLECodec().encode_value(raw)),
        ("dvi", DVICodec().encode_value(raw)),
        ("jpeg", JPEGCodec(75).encode_value(raw)),
        ("mpeg", MPEGCodec(75).encode_value(raw)),
    ]


def test_claim_compression_transfer_durations(benchmark, exhibit):
    raw = variants()[0][1]
    live_duration = raw.duration.seconds
    lines = [
        "C2 — transfer duration, stored vs live, 2 Mb/s channel",
        "",
        f"{'codec':<8}{'stored bits':>14}{'bulk transfer (s)':>20}"
        f"{'live transfer (s)':>20}",
    ]
    bulk = {}
    live = {}
    for name, value in variants():
        bulk[name] = bulk_transfer_seconds(value)
        live[name] = live_transfer_seconds(value)
        lines.append(
            f"{name:<8}{value.data_size_bits():>14,}{bulk[name]:>20.3f}"
            f"{live[name]:>20.3f}"
        )
    lines += [
        "",
        f"clip real-time duration: {live_duration:.3f} s",
        "shape: compressed bulk transfers beat raw; live transfers are",
        "bounded below by the clip duration for every representation.",
    ]
    exhibit("claim_compression", "\n".join(lines))

    assert bulk["mpeg"] < bulk["raw"] / 3
    assert bulk["jpeg"] < bulk["raw"] / 2
    for name in ("raw", "jpeg", "mpeg"):
        assert live[name] >= live_duration * 0.9  # cannot precompress time

    mpeg_value = variants()[4][1]
    benchmark(lambda: bulk_transfer_seconds(mpeg_value))


def test_claim_compression_raw_baseline_benchmark(benchmark):
    raw = moving_scene(FRAMES, 64, 48)
    benchmark(lambda: bulk_transfer_seconds(raw))
