"""Exp. C3 — the §3.3 synchronization claim.

"because of unpredictable system latencies, AV values tend to jitter and
require regular resynchronization. ... Such a composite would maintain
the synchronization of its component activities."

Plays the Newscast composite with random-walk latency jitter injected
into each track's source, sweeping the resynchronization interval.
Without resync, drift accumulates and inter-track skew grows with clip
length; with regular resync, skew stays bounded.
"""

from __future__ import annotations

from repro.activities import ActivityGraph, MultiSink, MultiSource
from repro.activities.library import (
    AudioReader,
    Speaker,
    SubtitleWindow,
    TextReader,
    VideoReader,
    VideoWindow,
)
from repro.sim import Simulator
from repro.streams.sync import RandomWalkJitter
from repro.synth import newscast_clip

VIDEO_FRAMES = 90  # a 3-second clip: long enough for drift to bite
JITTER_STEP = 0.004
JITTER_BIAS = 2.5


def run_playback(resync_interval):
    sim = Simulator()
    clip = newscast_clip(video_frames=VIDEO_FRAMES, audio_seconds=3.0)
    source = MultiSource(sim, name="dbSource", resync_interval=resync_interval)
    sink = MultiSink(sim, name="appSink")
    for i, track in enumerate(clip.track_names):
        value = clip.value(track)
        jitter = RandomWalkJitter(step=JITTER_STEP, bias=JITTER_BIAS, seed=10 + i)
        if track == "videoTrack":
            reader = VideoReader(sim, name=f"r.{track}", jitter=jitter)
            consumer = VideoWindow(sim, name=f"p.{track}", keep_payloads=False)
        elif track == "subtitleTrack":
            reader = TextReader(sim, name=f"r.{track}", jitter=jitter)
            consumer = SubtitleWindow(sim, name=f"p.{track}")
        else:
            reader = AudioReader(sim, name=f"r.{track}", jitter=jitter)
            consumer = Speaker(sim, name=f"p.{track}", keep_payloads=False)
        reader.bind(value)
        source.install(reader, track=track)
        sink.install(consumer, track=track)
    graph = ActivityGraph(sim)
    graph.add(source)
    graph.add(sink)
    graph.connect_composites(source, sink)
    graph.run_to_completion()
    return source.max_skew()


def test_claim_sync_resync_bounds_skew(benchmark, exhibit):
    intervals = [None, 30, 10, 5]
    skews = {interval: run_playback(interval) for interval in intervals}
    lines = [
        "C3 — inter-track skew vs resynchronization interval",
        f"    ({VIDEO_FRAMES}-frame clip, random-walk jitter "
        f"step={JITTER_STEP*1000:.0f} ms)",
        "",
        f"{'resync every':<16}{'max inter-track skew (ms)':>28}",
    ]
    for interval in intervals:
        label = "never" if interval is None else f"{interval} elements"
        lines.append(f"{label:<16}{skews[interval] * 1000:>28.2f}")
    exhibit("claim_sync", "\n".join(lines))

    # Shape: no resync drifts worst; tighter intervals bound skew harder.
    assert skews[None] > skews[30] > skews[5]
    assert skews[5] < skews[None] / 3

    benchmark(lambda: run_playback(10))


def test_claim_sync_drift_grows_with_length(benchmark, exhibit):
    """Without resync, longer streams drift further — why *regular*
    resynchronization (not one-off alignment) is required."""

    def run(frames):
        sim = Simulator()
        clip = newscast_clip(video_frames=frames,
                             audio_seconds=frames / 30.0)
        source = MultiSource(sim, name="s", resync_interval=None)
        sink = MultiSink(sim, name="k")
        for i, track in enumerate(("videoTrack", "englishTrack")):
            value = clip.value(track)
            jitter = RandomWalkJitter(step=JITTER_STEP, bias=JITTER_BIAS,
                                      seed=20 + i)
            if track == "videoTrack":
                reader = VideoReader(sim, name=f"r{i}", jitter=jitter)
                consumer = VideoWindow(sim, name=f"p{i}", keep_payloads=False)
            else:
                reader = AudioReader(sim, name=f"r{i}", jitter=jitter)
                consumer = Speaker(sim, name=f"p{i}", keep_payloads=False)
            reader.bind(value)
            source.install(reader, track=track)
            sink.install(consumer, track=track)
        graph = ActivityGraph(sim)
        graph.add(source)
        graph.add(sink)
        graph.connect_composites(source, sink)
        graph.run_to_completion()
        return source.max_skew()

    lengths = (30, 90, 180)
    skews = {n: run(n) for n in lengths}
    lines = [
        "C3b — unsynchronized drift vs stream length",
        "",
        f"{'frames':<10}{'max skew (ms)':>16}",
    ]
    for n in lengths:
        lines.append(f"{n:<10}{skews[n] * 1000:>16.2f}")
    exhibit("claim_sync_drift", "\n".join(lines))
    assert skews[180] > skews[30]

    benchmark(lambda: run(60))
