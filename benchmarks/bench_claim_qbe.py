"""Exp. C7 — the §2 REDI claim: features avoid touching the originals.

"Image structures and features are extracted from images and stored in a
relational database, while the original images are kept in a different
image store.  The query interface (Query-by-Pictorial-Example) first
tries to answer a query using the extracted information to avoid
retrieval and processing of the originals."

Compares query-by-example over the feature index against brute-force
similarity over the original media, for growing collection sizes: the
feature path answers in (near-)constant per-item time and never touches a
frame; the brute-force path decodes every stored clip.
"""

from __future__ import annotations

import time

import numpy as np
from repro.db import AttributeSpec, ClassDef, Database
from repro.retrieval import SimilarityRetrieval
from repro.synth import moving_scene
from repro.values import VideoValue


def make_clip(i):
    """A feature-diverse collection: brightness/texture vary per clip."""
    from repro.synth import flat_video, noise_video
    kind = i % 3
    if kind == 0:
        return flat_video(12, 48, 36, level=(17 * i) % 256)
    if kind == 1:
        return noise_video(12, 48, 36, seed=i)
    return moving_scene(12, 48, 36, seed=i)


def make_stored_clip(i):
    """Clips are stored compressed: processing the originals means
    decoding them — exactly the cost REDI's feature split avoids."""
    from repro.codecs import MPEGCodec
    return MPEGCodec(75, gop=6).encode_value(make_clip(i))


def build_collection(count):
    db = Database()
    db.define_class(ClassDef("Footage", attributes=[
        AttributeSpec("title", str),
        AttributeSpec("video", VideoValue),
    ]))
    retrieval = SimilarityRetrieval(db, sample_every=3)
    refs = []
    for i in range(count):
        video = make_stored_clip(i)
        ref = db.insert("Footage", title=f"clip-{i}", video=video)
        retrieval.ingest(ref, "video")
        refs.append(ref)
    return db, retrieval, refs


def brute_force_rank(db, refs, example_frame):
    """What QBE avoids: touch every original's frames directly."""
    scores = []
    for ref in refs:
        video = db.get(ref).video
        best = min(
            float(np.abs(video.frame(i).astype(int)
                         - example_frame.astype(int)).mean())
            for i in range(0, video.num_frames, 3)
        )
        scores.append((best, ref))
    scores.sort(key=lambda pair: pair[0])
    return [ref for _, ref in scores]


def test_claim_qbe_feature_index_avoids_originals(benchmark, exhibit):
    # The example is a frame of collection clip 3 (a flat clip whose
    # brightness level is unique in the collection).
    example = make_clip(3).frame(0)
    lines = [
        "C7 — QBE via feature index vs brute-force over originals",
        "",
        f"{'clips':<8}{'feature query (ms)':>20}{'brute force (ms)':>19}"
        f"{'speedup':>9}",
    ]
    agreement_checked = False
    timings = {}
    def timed(callable_):
        start = time.perf_counter()
        result = callable_()
        return time.perf_counter() - start, result

    for count in (10, 40, 160):
        db, retrieval, refs = build_collection(count)
        # Best of three: robust against scheduler noise on a busy host.
        feature_runs = [
            timed(lambda: retrieval.query_by_example(example, limit=count))
            for _ in range(3)
        ]
        feature_s, via_features = min(feature_runs, key=lambda r: r[0])
        brute_runs = [
            timed(lambda: brute_force_rank(db, refs, example))
            for _ in range(3)
        ]
        brute_s, via_brute = min(brute_runs, key=lambda r: r[0])
        timings[count] = (feature_s, brute_s)
        lines.append(
            f"{count:<8}{feature_s * 1000:>20.2f}{brute_s * 1000:>19.2f}"
            f"{brute_s / feature_s:>8.0f}x"
        )
        if not agreement_checked:
            # Clip features are averages over sampled frames, so the
            # rankings need not agree exactly — but the brute-force best
            # match (a pixel-identical frame) must sit in the feature
            # ranking's top 3.
            top_refs = [m.ref for m in via_features[:3]]
            assert via_brute[0] in top_refs
            agreement_checked = True
    lines += [
        "",
        "shape: the feature path is orders of magnitude cheaper and its",
        "advantage grows with collection size, while agreeing with the",
        "brute-force ranking on the top result — REDI's design, verified.",
    ]
    exhibit("claim_qbe", "\n".join(lines))
    for count, (feature_s, brute_s) in timings.items():
        assert feature_s < brute_s / 10

    db, retrieval, _ = build_collection(40)
    benchmark(lambda: retrieval.query_by_example(example, limit=5))


def test_claim_qbe_ingest_benchmark(benchmark):
    db = Database()
    db.define_class(ClassDef("Footage", attributes=[
        AttributeSpec("video", VideoValue),
    ]))
    video = moving_scene(12, 48, 36, seed=0)
    counter = iter(range(10**9))

    def ingest_one():
        retrieval = SimilarityRetrieval(db, sample_every=3)
        ref = db.insert("Footage", video=video)
        retrieval.ingest(ref, "video")
        return next(counter)

    benchmark(ingest_one)
