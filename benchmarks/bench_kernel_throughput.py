"""End-to-end hot-path throughput benchmark: kernel, dataplane, codecs.

Measures the three layers every scenario funnels through:

* **events/sec** — raw DES kernel dispatch over a mixed command workload
  (delays, event ping-pong, timeouts that are beaten by their target —
  the stale-timer pattern the lazy heap compaction exists for);
* **elements/sec** — the stream dataplane: produce, transform
  (``with_payload``), serialize on a channel reservation, buffer
  hand-off, consume;
* **frames/sec** — codec kernels: RLE + DCT (JPEG) + interframe (MPEG)
  encode plus an MPEG sequential decode over coherent synthetic video.

Throughputs are also *normalized* by a pure-Python calibration loop so
numbers recorded on one machine can gate another (the ``--smoke`` CI
mode): a 10% drop in normalized throughput vs the committed
``BENCH_PERF.json`` fails the job.

Usage::

    python benchmarks/bench_kernel_throughput.py                 # run + table
    python benchmarks/bench_kernel_throughput.py --json out.json # + raw dump
    python benchmarks/bench_kernel_throughput.py --smoke         # CI gate
    python benchmarks/bench_kernel_throughput.py --update \
        [--baseline-json baseline.json]   # (re)write BENCH_PERF.json entry

``BENCH_PERF.json`` at the repo root is the performance trajectory file:
one entry per PR that touched performance, each holding the machine
calibration score and the raw + normalized throughput of every metric,
with the pre-optimization baseline of this PR kept alongside for the
record.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.avtime import WorldTime  # noqa: E402
from repro.codecs.dct import JPEGCodec  # noqa: E402
from repro.codecs.interframe import MPEGCodec  # noqa: E402
from repro.codecs.rle import RLECodec  # noqa: E402
from repro.net.channel import Channel  # noqa: E402
from repro.sim import Delay, Simulator, Timeout, WaitEvent  # noqa: E402
from repro.streams.buffer import StreamBuffer  # noqa: E402
from repro.streams.element import END_OF_STREAM, StreamElement  # noqa: E402
from repro.synth import moving_scene  # noqa: E402
from repro.values.mediatype import standard_type  # noqa: E402

PERF_PATH = REPO_ROOT / "BENCH_PERF.json"
RESULTS_PATH = REPO_ROOT / "benchmarks" / "results" / "kernel_throughput.txt"

#: full-run workload sizes.
FULL = {"procs": 200, "iters": 120, "elements": 20_000, "frames": 48,
        "frame_w": 96, "frame_h": 64}
#: CI smoke sizes (same shape, ~6x smaller).
SMOKE = {"procs": 60, "iters": 50, "elements": 4_000, "frames": 16,
         "frame_w": 96, "frame_h": 64}

SMOKE_TOLERANCE = 0.10  # >10% normalized regression fails the gate
SMOKE_ATTEMPTS = 3  # re-measure before failing: noise dips don't persist


# ---------------------------------------------------------------------------
# calibration
# ---------------------------------------------------------------------------

def calibration_score(rounds: int = 5) -> float:
    """Machine-speed score: iterations/sec of a fixed pure-Python loop.

    Used to normalize throughput numbers recorded on different hardware;
    the ratio measured/calibration is (approximately) machine-free.
    """
    n = 200_000
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        acc = 0
        for i in range(n):
            acc += i & 7
        dt = time.perf_counter() - t0
        best = min(best, dt)
    return n / best


# ---------------------------------------------------------------------------
# workloads
# ---------------------------------------------------------------------------

def kernel_workload(procs: int, iters: int) -> float:
    """events/sec over a mixed kernel command workload."""
    sim = Simulator()

    def delayer():
        for _ in range(iters):
            yield Delay(0.001)

    def beaten_timeout():
        # The waited-on process finishes well before the deadline, so
        # every iteration strands a stale timer entry in the heap.
        for _ in range(iters):
            inner = sim.spawn(delayer_once(), name="inner")
            yield Timeout(inner, 10.0)

    def delayer_once():
        yield Delay(0.0005)

    def pinger(ev_box):
        for _ in range(iters):
            ev = sim.event()
            ev_box.append(ev)
            yield WaitEvent(ev)

    def ponger(ev_box):
        for _ in range(iters):
            while not ev_box:
                yield Delay(0.0001)
            ev_box.pop().trigger(None)
            yield Delay(0.0002)

    third = max(1, procs // 3)
    for i in range(third):
        sim.spawn(delayer(), name=f"delay-{i}")
    for i in range(third):
        sim.spawn(beaten_timeout(), name=f"timeout-{i}")
    for i in range(third):
        box: list = []
        sim.spawn(pinger(box), name=f"ping-{i}")
        sim.spawn(ponger(box), name=f"pong-{i}")

    t0 = time.perf_counter()
    sim.run()
    dt = time.perf_counter() - t0
    events = sim.obs.metrics.get("sim.events_dispatched").value
    return events / dt


def stream_workload(elements: int) -> float:
    """elements/sec through transform + reservation + bounded buffer."""
    sim = Simulator()
    channel = Channel(sim, capacity_bps=1e9, latency_s=0.0, name="bench")
    reservation = channel.reserve(1e9, label="bench")
    buffer = StreamBuffer(sim, capacity=64, name="bench")
    raw = standard_type("video/raw")
    payload = b"\x00" * 1000

    def producer():
        for i in range(elements):
            element = StreamElement(payload, i, WorldTime(i * 1e-4), raw, 8_000)
            element = element.with_payload(payload)  # transformer hop
            yield from reservation.serialize(element.size_bits)
            yield from buffer.put(element)
        yield from buffer.put(END_OF_STREAM)

    def consumer():
        count = 0
        while True:
            element = yield from buffer.get()
            if element is END_OF_STREAM:
                return count
            count += 1

    sim.spawn(producer(), name="producer")
    proc = sim.spawn(consumer(), name="consumer")
    t0 = time.perf_counter()
    got = sim.run_until_complete(proc)
    dt = time.perf_counter() - t0
    assert got == elements, f"consumer saw {got} of {elements} elements"
    assert channel.total_bits == elements * 8_000
    return elements / dt


def codec_workload(frames: int, width: int, height: int) -> float:
    """frames/sec across RLE + JPEG + MPEG encode and an MPEG decode."""
    video = moving_scene(frames, width, height)
    frame_list = [video.frame(i) for i in range(frames)]
    rle, jpeg, mpeg = RLECodec(), JPEGCodec(quality=75), MPEGCodec(quality=75, gop=8)

    t0 = time.perf_counter()
    rle_chunks = rle.encode_frames(frame_list)
    jpeg.encode_frames(frame_list)
    mpeg_value = mpeg.encode_value(video)
    mpeg.decode_value(mpeg_value)
    for i in range(frames):
        rle.decode_frame_at(rle_chunks, i, video.width, video.height, video.depth)
    dt = time.perf_counter() - t0
    processed = frames * 5  # 3 encodes + 2 decodes
    return processed / dt


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------

METRICS = ("kernel_events_per_s", "stream_elements_per_s", "codec_frames_per_s")


def run_suite(sizes: dict, repeats: int = 3) -> dict:
    """Best-of-N throughput for each layer (raw, not normalized)."""
    out = {}
    runs = {
        "kernel_events_per_s": lambda: kernel_workload(sizes["procs"], sizes["iters"]),
        "stream_elements_per_s": lambda: stream_workload(sizes["elements"]),
        "codec_frames_per_s": lambda: codec_workload(
            sizes["frames"], sizes["frame_w"], sizes["frame_h"]),
    }
    for name, fn in runs.items():
        out[name] = max(fn() for _ in range(repeats))
    return out


def normalized(results: dict, calibration: float) -> dict:
    return {k: v / calibration for k, v in results.items()}


def geomean(values) -> float:
    values = list(values)
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def print_table(results: dict, calibration: float, title: str) -> None:
    print(f"== {title}")
    print(f"   calibration: {calibration:,.0f} loop-iters/s")
    for name in METRICS:
        print(f"   {name:<24} {results[name]:>14,.0f}   "
              f"(normalized {results[name] / calibration:.4f})")


# ---------------------------------------------------------------------------
# modes
# ---------------------------------------------------------------------------

def cmd_run(args) -> int:
    calibration = calibration_score()
    results = run_suite(SMOKE if args.smoke_sizes else FULL)
    print_table(results, calibration, "kernel/stream/codec throughput")
    if args.json:
        Path(args.json).write_text(json.dumps(
            {"calibration": calibration, "results": results}, indent=2))
        print(f"wrote {args.json}")
    return 0


def cmd_smoke(args) -> int:
    """CI gate: normalized throughput must stay within tolerance of the
    last committed trajectory entry's smoke numbers.

    Shared CI machines see transient contention bursts that depress the
    workloads far more than the calibration loop, so a failing attempt
    is re-measured (fresh calibration included) before the gate fails: a
    real regression persists across attempts, a noise dip does not.
    """
    if not PERF_PATH.exists():
        print(f"missing {PERF_PATH}; run --update first", file=sys.stderr)
        return 2
    doc = json.loads(PERF_PATH.read_text())
    entry = doc["trajectory"][-1]
    committed = entry["smoke_normalized"]
    failures = []
    for attempt in range(1, SMOKE_ATTEMPTS + 1):
        calibration = calibration_score()
        results = run_suite(SMOKE, repeats=3)
        print_table(results, calibration,
                    f"perf smoke (CI gate, attempt {attempt}/{SMOKE_ATTEMPTS})")
        failures = []
        for name in METRICS:
            measured = results[name] / calibration
            floor = committed[name] * (1.0 - SMOKE_TOLERANCE)
            status = "ok" if measured >= floor else "REGRESSION"
            print(f"   {name:<24} normalized {measured:.4f} vs committed "
                  f"{committed[name]:.4f} (floor {floor:.4f}) {status}")
            if measured < floor:
                failures.append(name)
        if not failures:
            print("perf-smoke ok")
            return 0
        if attempt < SMOKE_ATTEMPTS:
            print(f"   regression in {', '.join(failures)} — re-measuring "
                  f"to rule out machine noise")
    print(f"perf-smoke FAILED: >{SMOKE_TOLERANCE:.0%} regression in "
          f"{', '.join(failures)} across {SMOKE_ATTEMPTS} attempts",
          file=sys.stderr)
    return 1


def cmd_update(args) -> int:
    """Measure and (re)write the trajectory entry + results file."""
    calibration = calibration_score()
    full = run_suite(FULL)
    # Commit the per-metric *median* of several smoke runs: a single
    # lucky sample would set the CI gate's floor above typical
    # performance and make the gate flap.
    smoke_runs = [run_suite(SMOKE) for _ in range(3)]
    smoke = {k: sorted(r[k] for r in smoke_runs)[1] for k in METRICS}
    print_table(full, calibration, "full workload")
    print_table(smoke, calibration, "smoke workload (median of 3)")

    baseline = None
    if args.baseline_json:
        baseline_doc = json.loads(Path(args.baseline_json).read_text())
        baseline = baseline_doc["results"]
        baseline_cal = baseline_doc["calibration"]

    entry = {
        "pr": args.pr,
        "label": args.label,
        "calibration": calibration,
        "full": full,
        "full_normalized": normalized(full, calibration),
        "smoke": smoke,
        "smoke_normalized": normalized(smoke, calibration),
    }
    if baseline is not None:
        speedups = {k: full[k] / baseline[k] for k in METRICS}
        entry["baseline_full"] = baseline
        entry["baseline_calibration"] = baseline_cal
        entry["speedup"] = speedups
        entry["aggregate_speedup"] = geomean(speedups.values())

    if PERF_PATH.exists():
        doc = json.loads(PERF_PATH.read_text())
    else:
        doc = {"schema": 1, "note": "performance trajectory; one entry per "
                                    "perf-relevant PR (append, don't rewrite)",
               "trajectory": []}
    doc["trajectory"] = [e for e in doc["trajectory"] if e.get("pr") != args.pr]
    doc["trajectory"].append(entry)
    PERF_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {PERF_PATH}")

    lines = [f"kernel/stream/codec throughput — {args.label}",
             f"calibration: {calibration:,.0f} loop-iters/s", ""]
    for name in METRICS:
        line = f"{name:<24} {full[name]:>14,.0f}/s"
        if baseline is not None:
            line += (f"   baseline {baseline[name]:>14,.0f}/s"
                     f"   speedup {full[name] / baseline[name]:.2f}x")
        lines.append(line)
    if baseline is not None:
        lines.append(f"aggregate speedup (geomean): "
                     f"{entry['aggregate_speedup']:.2f}x")
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text("\n".join(lines) + "\n")
    print(f"wrote {RESULTS_PATH}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate vs committed BENCH_PERF.json")
    parser.add_argument("--smoke-sizes", action="store_true",
                        help="plain run with the smoke workload sizes")
    parser.add_argument("--update", action="store_true",
                        help="write BENCH_PERF.json + results file")
    parser.add_argument("--baseline-json", default=None,
                        help="pre-optimization --json dump to record as baseline")
    parser.add_argument("--json", default=None, help="dump raw results to file")
    parser.add_argument("--pr", type=int, default=9)
    parser.add_argument("--label", default="PR 9 vectorized herd simulation")
    args = parser.parse_args(argv)
    if args.smoke:
        return cmd_smoke(args)
    if args.update:
        return cmd_update(args)
    return cmd_run(args)


if __name__ == "__main__":
    raise SystemExit(main())
