"""Exp. T1 — Table 1: the video activity catalog.

Regenerates the table from the live classes and measures each activity's
element throughput in free-run mode (the DESIGN.md ablation: no rate
pacing, pure processing).  The paper's table has no numbers; the measured
column documents the relative costs of the eight activity kinds on this
substrate.
"""

from __future__ import annotations

import time

import pytest

from repro.activities import ActivityGraph
from repro.activities.library import (
    ActivityCatalog,
    VideoDecoder,
    VideoDigitizer,
    VideoEncoder,
    VideoMixer,
    VideoReader,
    VideoTee,
    VideoWindow,
    VideoWriter,
)
from repro.codecs import JPEGCodec
from repro.sim import Simulator
from repro.synth import analog_master, moving_scene

FRAMES = 60
W, H = 64, 48


def free_run(graph):
    for activity in graph.activities.values():
        activity.paced = False
        if hasattr(activity, "components"):
            for component in activity.components.values():
                component.paced = False
    graph.run_to_completion()


def build_pipeline(kind: str):
    """One measurable pipeline per Table 1 row; returns (graph, count_fn)."""
    sim = Simulator()
    graph = ActivityGraph(sim)
    video = moving_scene(FRAMES, W, H)
    codec = JPEGCodec(75)

    if kind == "video digitizer":
        digitizer = graph.add(VideoDigitizer(sim))
        digitizer.bind(analog_master(FRAMES, W, H))
        sink = graph.add(VideoWriter(sim, rate=30.0))
        graph.connect(digitizer.port("video_out"), sink.port("video_in"))
        return graph, lambda: digitizer.elements_produced
    if kind == "video reader":
        reader = graph.add(VideoReader(sim))
        reader.bind(video)
        sink = graph.add(VideoWriter(sim, rate=30.0))
        graph.connect(reader.port("video_out"), sink.port("video_in"))
        return graph, lambda: reader.elements_produced
    if kind == "video encoder":
        reader = graph.add(VideoReader(sim))
        reader.bind(video)
        encoder = graph.add(VideoEncoder(sim, codec))
        sink = graph.add(VideoWriter(sim, rate=30.0, codec=codec, geometry=(W, H, 8)))
        graph.connect(reader.port("video_out"), encoder.port("video_in"))
        graph.connect(encoder.port("video_out"), sink.port("video_in"))
        return graph, lambda: encoder.elements_processed
    if kind == "video decoder":
        encoded = codec.encode_value(video)
        reader = graph.add(VideoReader(sim))
        reader.bind(encoded)
        decoder = graph.add(VideoDecoder(sim, codec, W, H, 8))
        sink = graph.add(VideoWriter(sim, rate=30.0))
        graph.connect(reader.port("video_out"), decoder.port("video_in"))
        graph.connect(decoder.port("video_out"), sink.port("video_in"))
        return graph, lambda: decoder.elements_processed
    if kind == "video mixer":
        r1 = graph.add(VideoReader(sim, name="r1"))
        r1.bind(video)
        r2 = graph.add(VideoReader(sim, name="r2"))
        r2.bind(moving_scene(FRAMES, W, H, seed=7))
        mixer = graph.add(VideoMixer(sim))
        sink = graph.add(VideoWriter(sim, rate=30.0))
        graph.connect(r1.port("video_out"), mixer.port("video_in_0"))
        graph.connect(r2.port("video_out"), mixer.port("video_in_1"))
        graph.connect(mixer.port("video_out"), sink.port("video_in"))
        return graph, lambda: mixer.elements_processed
    if kind == "video tee":
        reader = graph.add(VideoReader(sim))
        reader.bind(video)
        tee = graph.add(VideoTee(sim))
        s1 = graph.add(VideoWriter(sim, rate=30.0, name="w1"))
        s2 = graph.add(VideoWriter(sim, rate=30.0, name="w2"))
        graph.connect(reader.port("video_out"), tee.port("video_in"))
        graph.connect(tee.port("video_out_0"), s1.port("video_in"))
        graph.connect(tee.port("video_out_1"), s2.port("video_in"))
        return graph, lambda: tee.elements_processed
    if kind == "video window":
        reader = graph.add(VideoReader(sim))
        reader.bind(video)
        window = graph.add(VideoWindow(sim, keep_payloads=False))
        graph.connect(reader.port("video_out"), window.port("video_in"))
        return graph, lambda: window.elements_consumed
    if kind == "video writer":
        reader = graph.add(VideoReader(sim))
        reader.bind(video)
        writer = graph.add(VideoWriter(sim, rate=30.0))
        graph.connect(reader.port("video_out"), writer.port("video_in"))
        return graph, lambda: writer.elements_consumed
    raise ValueError(kind)


KINDS = [row.activity for row in ActivityCatalog.rows()]


@pytest.mark.parametrize("kind", KINDS)
def test_table1_activity_throughput(benchmark, kind):
    def run():
        graph, count = build_pipeline(kind)
        free_run(graph)
        return count()

    processed = benchmark(run)
    assert processed == FRAMES


def test_table1_reproduction(benchmark, exhibit):
    """Reprint Table 1 with a measured wall-clock throughput column."""
    rows = []
    for row in ActivityCatalog.rows():
        graph, count = build_pipeline(row.activity)
        start = time.perf_counter()
        free_run(graph)
        elapsed = time.perf_counter() - start
        rows.append((row, count() / elapsed))
    header = (f"{'activity':<17}{'kind':<13}{'input type':<18}"
              f"{'output type':<18}{'frames/s (measured)':>20}")
    lines = [header, "-" * len(header)]
    for row, fps in rows:
        lines.append(
            f"{row.activity:<17}{row.kind:<13}{row.input_type:<18}"
            f"{row.output_type:<18}{fps:>20,.0f}"
        )
    exhibit("table1_activities", "\n".join(lines))

    graph_builder = lambda: build_pipeline("video reader")
    def run():
        graph, count = graph_builder()
        free_run(graph)
        return count()
    benchmark(run)
