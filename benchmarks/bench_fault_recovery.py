"""Exp. R1 — failure recovery under a seeded fault plan.

Continuous media turn failures into visible QoS loss: frames that never
reach the window, elements dropped on the wire, workers that die
mid-presentation.  This bench runs every fault scenario twice under the
*identical* seeded fault schedule — once with its recovery policy
(retry with backoff, link retransmission, supervision, graceful session
degradation) and once without — and compares delivered vs. negotiated
QoS.

Gates:

* recovery must win back at least 50% of the QoS the faults destroyed:
  ``(qos_rec - qos_norec) / (1 - qos_norec) >= 0.5``;
* the whole experiment is deterministic — a second run with the same
  seed must reproduce every number exactly.
"""

from __future__ import annotations

from typing import Dict

from repro.faults import SCENARIOS
from repro.obs import scoped

SEED = 7
RECOVERY_FLOOR = 0.5


def run_all(seed: int) -> Dict[str, Dict[bool, Dict[str, object]]]:
    results: Dict[str, Dict[bool, Dict[str, object]]] = {}
    for name in sorted(SCENARIOS):
        results[name] = {}
        for recover in (True, False):
            # Fresh observability scope per run: counters must not bleed
            # between scenarios or between the two regimes.
            with scoped():
                results[name][recover] = SCENARIOS[name](seed=seed,
                                                         recover=recover)
    return results


def qos_recovered(with_rec: float, without: float) -> float:
    """Fraction of the fault-destroyed QoS that recovery won back."""
    destroyed = 1.0 - without
    if destroyed <= 0:
        return 1.0  # nothing destroyed; nothing to recover
    return (with_rec - without) / destroyed


def test_fault_recovery_wins_back_qos(exhibit):
    first = run_all(SEED)
    second = run_all(SEED)

    lines = [
        "Exp. R1 — delivered vs. negotiated QoS under a seeded fault plan",
        f"(seed {SEED}; identical fault schedule with and without recovery)",
        "",
        f"  {'scenario':<18} {'no recovery':>12} {'recovery':>10} "
        f"{'recovered':>10}  injected",
    ]
    recovered_by_scenario = {}
    for name, runs in first.items():
        with_rec = float(runs[True]["delivered_qos"])
        without = float(runs[False]["delivered_qos"])
        fraction = qos_recovered(with_rec, without)
        recovered_by_scenario[name] = fraction
        lines.append(
            f"  {name:<18} {without:>12.3f} {with_rec:>10.3f} "
            f"{fraction:>9.0%}  {runs[True]['faults_injected']}"
        )
    lines += [
        "",
        "  disk-outage deadline misses: "
        f"{first['disk-outage'][True]['deadline_misses']} (recovery, late but "
        f"delivered) vs {first['disk-outage'][False]['deadline_misses']} "
        "(no recovery, frames lost outright)",
        "",
        f"gates: recovered >= {RECOVERY_FLOOR:.0%} of destroyed QoS per "
        "scenario; two runs byte-identical",
    ]
    exhibit("fault_recovery", "\n".join(lines))

    assert first == second, "fault scenarios are not deterministic across runs"
    for name, fraction in recovered_by_scenario.items():
        without = float(first[name][False]["delivered_qos"])
        assert without < 1.0, (
            f"{name}: the no-recovery baseline lost no QoS — the fault plan "
            "is not biting and the recovery comparison is vacuous"
        )
        assert fraction >= RECOVERY_FLOOR, (
            f"{name}: recovery won back only {fraction:.0%} of the destroyed "
            f"QoS (floor {RECOVERY_FLOOR:.0%})"
        )
