"""Exp. C5 — the §4.1 quality-factor / scalable-video claim.

"Using a scalable representation, a video value encoded at one quality
can be viewed at a lower quality by ignoring some of the encoded data."
and: given a quality factor, the system determines "a data representation
..., the appropriate encoding parameters, and storage and processing
requirements."

Sweeps requested quality factors against one stored high-quality value,
measuring bits served and delivered geometry/rate; and sweeps the
negotiator's representation choice against bandwidth budgets.
"""

from __future__ import annotations

import pytest

from repro.codecs import JPEGCodec
from repro.quality import Negotiator, VideoQuality, parse_quality, scale_video_quality
from repro.synth import moving_scene

STORED_FRAMES = 60
STORED = VideoQuality(128, 96, 8, 30.0)


def serve_at(requested):
    """Serve the stored clip at a requested quality by dropping data."""
    value = moving_scene(STORED_FRAMES, STORED.width, STORED.height)
    plan = scale_video_quality(STORED, requested)
    frames = value.frames_array[::plan.frame_keep_every,
                                ::plan.spatial_divisor,
                                ::plan.spatial_divisor]
    return plan, frames


def test_claim_quality_scalable_service(benchmark, exhibit):
    requests = ["128x96x8@30", "64x48x8@30", "64x48x8@15", "32x24x8@10",
                "256x192x8@60"]
    full_bits = STORED.width * STORED.height * 8 * STORED_FRAMES
    lines = [
        f"C5 — scalable service of one stored clip ({STORED}, "
        f"{STORED_FRAMES} frames)",
        "",
        f"{'requested':<16}{'delivered':<16}{'bits served':>14}"
        f"{'% of stored':>13}",
    ]
    served_bits = {}
    for request in requests:
        plan, frames = serve_at(parse_quality(request))
        bits = frames.size * 8
        served_bits[request] = bits
        lines.append(
            f"{request:<16}{str(plan.delivered):<16}{bits:>14,}"
            f"{bits / full_bits * 100:>12.1f}%"
        )
    lines += [
        "",
        "shape: lower requests serve proportionally fewer bits; a request",
        "above the stored quality serves the stored data unchanged",
        "(upscaling adds no information).",
    ]
    exhibit("claim_quality_scalable", "\n".join(lines))

    assert served_bits["128x96x8@30"] == full_bits
    assert served_bits["256x192x8@60"] == full_bits  # no upscaling
    assert served_bits["64x48x8@30"] == pytest.approx(full_bits / 4, rel=0.1)
    assert served_bits["64x48x8@15"] == pytest.approx(full_bits / 8, rel=0.1)
    assert served_bits["32x24x8@10"] < full_bits / 40

    benchmark(lambda: serve_at(parse_quality("64x48x8@15"))[1].sum())


def test_claim_quality_negotiation_sweep(benchmark, exhibit):
    """The negotiator's representation choice under bandwidth budgets."""
    quality = VideoQuality(320, 240, 8, 30.0)
    raw_bps = quality.raw_bps
    budgets = [None, raw_bps, raw_bps / 4, raw_bps / 10]
    negotiator = Negotiator(prefer_compressed=False)
    lines = [
        f"C5b — representation negotiation for {quality} "
        f"(raw = {raw_bps / 1e6:.1f} Mb/s)",
        "",
        f"{'bandwidth budget':<20}{'representation':<16}"
        f"{'stream (Mb/s)':>14}{'decode cost':>13}",
    ]
    chosen = {}
    for budget in budgets:
        plan = negotiator.plan(quality, bandwidth_budget_bps=budget)
        label = "unlimited" if budget is None else f"{budget / 1e6:.1f} Mb/s"
        chosen[budget] = plan
        lines.append(
            f"{label:<20}{plan.representation.codec_name:<16}"
            f"{plan.bandwidth_bps / 1e6:>14.2f}{plan.decode_cost:>13.1f}"
        )
    exhibit("claim_quality_negotiation", "\n".join(lines))

    assert chosen[None].representation.codec_name == "raw"
    assert chosen[raw_bps / 4].representation.codec_name != "raw"
    assert chosen[raw_bps / 10].bandwidth_bps <= raw_bps / 10

    benchmark(lambda: negotiator.plan(quality, bandwidth_budget_bps=raw_bps / 4))


def test_claim_quality_jpeg_knob(benchmark, exhibit):
    """The codec-level quality knob: rate/distortion really trades off."""
    import numpy as np
    video = moving_scene(10, 64, 48)
    lines = [
        "C5c — JPEG-codec quality knob (rate vs distortion)",
        "",
        f"{'quality':<10}{'bits/frame':>12}{'mean abs error':>16}",
    ]
    points = []
    for q in (10, 30, 50, 75, 95):
        codec = JPEGCodec(q)
        encoded = codec.encode_value(video)
        decoded = codec.decode_value(encoded)
        error = float(np.abs(decoded.astype(int)
                             - video.frames_array.astype(int)).mean())
        bits = encoded.data_size_bits() / encoded.num_frames
        points.append((q, bits, error))
        lines.append(f"{q:<10}{bits:>12,.0f}{error:>16.2f}")
    exhibit("claim_quality_jpeg_knob", "\n".join(lines))

    bits_series = [p[1] for p in points]
    error_series = [p[2] for p in points]
    assert bits_series == sorted(bits_series)
    assert error_series == sorted(error_series, reverse=True)

    benchmark(lambda: JPEGCodec(75).encode_value(video).data_size_bits())
