"""Exp. F1 — Fig. 1: the Newscast.clip timeline diagram.

Regenerates the figure (ASCII timeline of the 4-track composite) and
plays the composite back through a synchronized MultiSource/MultiSink
pair, measuring inter-track presentation skew — the property temporal
composition exists to guarantee.
"""

from __future__ import annotations

import pytest

from repro.activities import ActivityGraph, MultiSink, MultiSource
from repro.activities.library import (
    AudioReader,
    Speaker,
    SubtitleWindow,
    TextReader,
    VideoReader,
    VideoWindow,
)
from repro.sim import Simulator
from repro.streams.clock import skew_between
from repro.synth import fig1_timeline, newscast_clip

VIDEO_FRAMES = 30
AUDIO_SECONDS = 1.0


def build_playback(clip):
    sim = Simulator()
    graph = ActivityGraph(sim)
    source = MultiSource(sim, name="dbSource")
    sink = MultiSink(sim, name="appSink")
    sinks = {}
    for track in clip.track_names:
        value = clip.value(track)
        if track == "videoTrack":
            reader = VideoReader(sim, name=f"read.{track}")
            consumer = VideoWindow(sim, name=f"play.{track}", keep_payloads=False)
        elif track == "subtitleTrack":
            reader = TextReader(sim, name=f"read.{track}")
            consumer = SubtitleWindow(sim, name=f"play.{track}")
        else:
            reader = AudioReader(sim, name=f"read.{track}")
            consumer = Speaker(sim, name=f"play.{track}", keep_payloads=False)
        reader.bind(value)
        source.install(reader, track=track)
        sink.install(consumer, track=track)
        sinks[track] = consumer
    graph.add(source)
    graph.add(sink)
    graph.connect_composites(source, sink)
    return sim, graph, sinks


def test_fig1_timeline_reproduction(benchmark, exhibit):
    # The figure's exact shape: video on [t0, t1), other tracks [t1, t2).
    diagram = fig1_timeline(t0=0.0, t1=1.0, t2=3.0)
    clip = newscast_clip(video_frames=VIDEO_FRAMES, audio_seconds=AUDIO_SECONDS)

    def run():
        sim, graph, sinks = build_playback(clip)
        graph.run_to_completion()
        return sinks

    sinks = benchmark(run)
    video_log = sinks["videoTrack"].log
    english_log = sinks["englishTrack"].log
    skew = skew_between(video_log, english_log, samples=20)
    lines = [
        "Fig. 1 — Timeline diagram for a Newscast.clip value",
        "",
        diagram.render_ascii(width=50),
        "",
        "Playback of the composite (all tracks from t0):",
        f"  video frames presented : {len(video_log)}",
        f"  audio blocks presented : {len(english_log)}",
        f"  max |video-audio skew| : {max(abs(s) for s in skew) * 1000:.3f} ms",
        f"  mean video latency     : {video_log.mean_latency() * 1000:.3f} ms",
    ]
    exhibit("fig1_timeline", "\n".join(lines))
    assert len(video_log) == VIDEO_FRAMES
    assert max(abs(s) for s in skew) < 0.005  # jitter-free: sub-frame sync


def test_fig1_delayed_video_placement(benchmark, exhibit):
    """The figure's asymmetric placement: video occupies a different span.

    A video track translated to start 0.5 s late begins presentation 0.5 s
    after the audio — timeline placement drives the schedule.
    """
    clip = newscast_clip(video_frames=VIDEO_FRAMES, audio_seconds=AUDIO_SECONDS,
                         video_delay_s=0.5)

    def run():
        sim, graph, sinks = build_playback(clip)
        graph.run_to_completion()
        return sim, sinks

    sim, sinks = benchmark(run)
    video_log = sinks["videoTrack"].log
    audio_log = sinks["englishTrack"].log
    video_first = video_log.records[0].actual.seconds
    audio_first = audio_log.records[0].actual.seconds
    exhibit("fig1_delayed_video", "\n".join([
        "Timeline with videoTrack translated +0.5 s (Fig. 1 asymmetric shape):",
        f"  first audio presentation : {audio_first:.3f} s",
        f"  first video presentation : {video_first:.3f} s",
        f"  measured offset          : {video_first - audio_first:.3f} s (expected 0.5)",
    ]))
    assert video_first - audio_first == pytest.approx(0.5, abs=1e-6)
