"""Fail the lint job on ``__all__`` drift in the public API surface.

The repo's export convention: every package ``__init__.py`` under
``src/repro`` (plus any leaf module that opts in by defining one) keeps
an explicit ``__all__``.  Ruff's PLE0604/PLE0605 catch *malformed*
``__all__``; this checker catches the drift ruff has no rule for:

1. a package ``__init__.py`` with no ``__all__`` at all,
2. an ``__all__`` entry naming nothing bound at module top level
   (stale after a rename or a dropped import),
3. a public name a package ``__init__.py`` imports from its *own*
   subtree but leaves out of ``__all__`` — such imports exist solely
   to re-export, so the omission is drift (helper imports from the
   stdlib or sibling packages are exempt),
4. duplicate ``__all__`` entries.

Pure stdlib (``ast``), so it runs in the lint job before any install.

Usage::

    python tools/check_exports.py [src-root]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Modules intentionally without ``__all__``: entry points, not APIs.
EXEMPT = {"__main__.py"}


def literal_all(tree: ast.Module):
    """The module's ``__all__`` (list of str) or None if not defined."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets
                       if isinstance(t, ast.Name)]
            if "__all__" in targets:
                value = node.value
                if not isinstance(value, (ast.List, ast.Tuple)):
                    return "not-literal"
                names = []
                for elt in value.elts:
                    if (not isinstance(elt, ast.Constant)
                            or not isinstance(elt.value, str)):
                        return "not-literal"
                    names.append(elt.value)
                return names
    return None


def top_level_bindings(tree: ast.Module) -> set:
    """Every name bound at module top level."""
    bound = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    bound.update(e.id for e in target.elts
                                 if isinstance(e, ast.Name))
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
    return bound


def own_subtree_imports(tree: ast.Module, dotted: str) -> set:
    """Names imported from modules under the package's own path."""
    names = set()
    for node in tree.body:
        if not isinstance(node, ast.ImportFrom) or node.names[0].name == "*":
            continue
        if node.level > 0 or (node.module or "").startswith(dotted + "."):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def check_module(path: Path, dotted: str) -> list:
    require_all = path.name == "__init__.py"
    tree = ast.parse(path.read_text(), filename=str(path))
    exported = literal_all(tree)
    problems = []
    if exported is None:
        if require_all:
            problems.append("package __init__ defines no __all__")
        return problems
    if exported == "not-literal":
        return ["__all__ is not a literal list of strings"]
    bound = top_level_bindings(tree)
    for name in exported:
        if name not in bound:
            problems.append(f"__all__ names {name!r}, "
                            f"which is not bound in the module")
    seen = set()
    for name in exported:
        if name in seen:
            problems.append(f"__all__ lists {name!r} twice")
        seen.add(name)
    if require_all:
        reexports = own_subtree_imports(tree, dotted)
        for name in sorted(reexports - set(exported)):
            if not name.startswith("_"):
                problems.append(f"{name!r} is imported from the package's "
                                f"own subtree but missing from __all__")
    return problems


def main(argv) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path("src/repro")
    failures = 0
    checked = 0
    for path in sorted(root.rglob("*.py")):
        if path.name in EXEMPT:
            continue
        relative = path.relative_to(root.parent)
        dotted = ".".join(relative.with_suffix("").parts)
        if dotted.endswith(".__init__"):
            dotted = dotted[: -len(".__init__")]
        problems = check_module(path, dotted)
        checked += 1
        for problem in problems:
            failures += 1
            print(f"{path}: {problem}", file=sys.stderr)
    if failures:
        print(f"check_exports: {failures} problem(s) across "
              f"{checked} modules", file=sys.stderr)
        return 1
    print(f"check_exports: {checked} modules clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
