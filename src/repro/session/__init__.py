"""The asynchronous, stream-based client interface (paper §3.3, §4.3).

"The client interface should be based on notions of multiple tasks,
stream redirection, and asynchronous notification rather than on a simple
issue-request / receive-reply protocol."

:class:`Session` is one client's handle on an
:class:`~repro.avdb.AVDatabaseSystem`: it issues queries (returning
references), creates activities on either side of the database/
application boundary, connects them (allocating network bandwidth), binds
stored values, and starts streams that then run concurrently with the
client's own work.  :class:`Stream` is the handle returned by connection
requests; :class:`Notification` records asynchronously delivered events.
"""

from repro.session.session import Notification, Session, Stream

__all__ = ["Session", "Stream", "Notification"]
