"""Client sessions: the §4.3 pseudo-code as an executable API.

The paper's first example::

    1 dbSource = new activity VideoSource for SimpleNewscast.videoTrack
    2 appSink = new activity VideoWindow quality 320x240x8 @ 30
    3 videostream = new connection from dbSource.out to appSink.in
    4 myNews = select SimpleNewscast where (title = "60 Minutes" and ...)
    5 bind myNews.videoTrack to dbSource
    6 start videostream

maps to::

    db_source = session.new_db_video_source()                  # 1
    app_sink = session.new_video_window("320x240x8@30")        # 2
    stream = session.connect(db_source, app_sink)              # 3
    my_news = session.select_one("SimpleNewscast",
                                 Q.eq("title", "60 Minutes") & ...)  # 4
    session.bind((my_news, "videoTrack"), db_source)           # 5
    stream.start()                                             # 6

Statements 1-3 really allocate resources — shared devices at activity
creation, network bandwidth at connection time — and really fail when
resources are insufficient, as the paper specifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple, Union

from repro.activities import (
    ActivityState,
    CompositeActivity,
    Location,
    MediaActivity,
    MultiSink,
)
from repro.activities.library import Speaker, SubtitleWindow, VideoWindow
from repro.activities.ports import Connection, Direction, Port
from repro.admission.controller import Priority, QoSContract
from repro.avtime import WorldTime
from repro.db.objects import DBObject, OID
from repro.db.query import Predicate
from repro.errors import AdmissionError, SessionError
from repro.net.channel import Channel
from repro.quality.factors import AudioQuality, VideoQuality, parse_quality
from repro.streams.sync import JitterModel
from repro.temporal.composite import TemporalComposite
from repro.values.base import MediaValue

#: Buckets for delivered/negotiated QoS ratios (1.0 = contract honoured).
QOS_RATIO_BUCKETS = (0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0, 1.05, 1.2)


@dataclass(frozen=True, slots=True)
class Notification:
    """One asynchronously delivered activity event."""

    activity: str
    event: str
    payload: Any
    at: WorldTime


class Stream:
    """Handle for a started (or startable) stream: the §4.3 objects
    ``videostream`` / ``compositestream``."""

    def __init__(self, session: "Session", connections: List[Connection],
                 activities: List[MediaActivity]) -> None:
        self.session = session
        self.connections = connections
        self.activities = activities
        self.started = False

    def start(self) -> None:
        """Start every endpoint activity; the transfer then proceeds in
        parallel with the client (asynchronous interface)."""
        if self.started:
            raise SessionError("stream already started")
        self.started = True
        self.session._m_streams_started.inc()
        for activity in self.activities:
            if activity.state is not ActivityState.RUNNING:
                activity.start()

    def stop(self) -> None:
        """'At any point the application may stop the transfer.'"""
        for activity in self.activities:
            if activity.state is ActivityState.RUNNING:
                activity.stop()

    @property
    def bits_transferred(self) -> int:
        return sum(c.bits_sent for c in self.connections)

    def finished(self) -> bool:
        return all(a.finished for a in self.activities)


class Recording:
    """Handle on an in-progress capture into the database."""

    def __init__(self, session: "Session", stream: Stream, writer) -> None:
        self.session = session
        self.stream = stream
        self.writer = writer

    def start(self) -> None:
        self.stream.start()

    def stop(self) -> None:
        self.stream.stop()

    def finished(self) -> bool:
        return self.stream.finished()

    def store(self, class_name: str, attribute: str,
              device: Optional[str] = None, **attributes: Any):
        """Persist the captured value and catalog it as a new object."""
        if not self.finished():
            raise SessionError("recording still in progress; run the "
                               "simulation to completion (or stop it) first")
        value = self.writer.result()
        self.session.system.store_value(value, device)
        oid = self.session.system.db.insert(
            class_name, **{attribute: value}, **attributes
        )
        return oid, value


class Session:
    """One client application's connection to the AV database."""

    def __init__(self, system, name: str, channel: Channel) -> None:
        self.system = system
        self.name = name
        self.channel = channel
        self.notifications: List[Notification] = []
        self._activities: List[MediaActivity] = []
        self._leases: List = []
        self._streams: List[Stream] = []
        self.closed = False
        #: streams admitted at reduced bandwidth via ``connect(degrade=True)``.
        self.degraded_streams = 0
        self.obs = system.simulator.obs
        metrics = self.obs.metrics
        self._m_streams_started = metrics.counter("session.streams_started")
        self._m_degraded_sessions = metrics.counter("faults.degraded_sessions")
        self._m_notifications = metrics.counter("session.notifications")
        self._m_qos_ratio = metrics.histogram("session.qos_ratio",
                                              QOS_RATIO_BUCKETS)
        metrics.counter("session.opened").inc()

    # -- queries (issue-request / receive-reply is fine for these) --------
    def select(self, class_name: str, predicate: Optional[Union[Predicate, str]] = None) -> List[OID]:
        """Returns *references*, never the AV values themselves (§3.1).

        ``predicate`` may be a :class:`Predicate` or a textual
        where-expression, e.g. ``'title = "60 Minutes"'``.
        """
        self._require_open()
        if isinstance(predicate, str):
            from repro.db.parser import parse_predicate
            predicate = parse_predicate(predicate)
        return self.system.db.select(class_name, predicate)

    def query(self, text: str) -> List[OID]:
        """Full textual query: ``select <Class> where <expr>``."""
        self._require_open()
        return self.system.db.query(text)

    def select_one(self, class_name: str, predicate: Optional[Predicate] = None) -> OID:
        self._require_open()
        return self.system.db.select_one(class_name, predicate)

    def fetch(self, oid: OID) -> DBObject:
        self._require_open()
        return self.system.db.get(oid)

    # -- activity creation (statements 1-2) -------------------------------
    def new_activity(self, activity: MediaActivity,
                     device_kind: Optional[str] = None) -> MediaActivity:
        """Register a client-created activity with the system.

        ``device_kind`` names a shared-device pool the activity needs
        (e.g. a database-side mixer); allocation is fail-fast.
        """
        self._require_open()
        if device_kind is not None:
            self._leases.append(self.system.resources.allocate(device_kind))
        self.system.graph.add(activity)
        self._activities.append(activity)
        return activity

    def new_video_window(self, quality: Union[str, VideoQuality, None] = None,
                         name: Optional[str] = None) -> VideoWindow:
        """Statement 2: ``new activity VideoWindow quality 320x240x8@30``."""
        if isinstance(quality, str):
            quality = parse_quality(quality)
        window = VideoWindow(self.system.simulator, quality=quality,
                             name=name or f"{self.name}.window",
                             location=Location.APPLICATION)
        return self.new_activity(window)

    def new_speaker(self, quality: Union[str, AudioQuality, None] = None,
                    name: Optional[str] = None) -> Speaker:
        """An application-located audio sink, optionally quality-factored."""
        if isinstance(quality, str):
            quality = parse_quality(quality)
        speaker = Speaker(self.system.simulator, quality=quality,
                          name=name or f"{self.name}.speaker",
                          location=Location.APPLICATION)
        return self.new_activity(speaker)

    def new_subtitle_window(self, name: Optional[str] = None) -> SubtitleWindow:
        window = SubtitleWindow(self.system.simulator,
                                name=name or f"{self.name}.subtitles",
                                location=Location.APPLICATION)
        return self.new_activity(window)

    def new_multi_sink(self, name: Optional[str] = None) -> MultiSink:
        sink = MultiSink(self.system.simulator,
                         name=name or f"{self.name}.multisink",
                         location=Location.APPLICATION)
        return self.new_activity(sink)

    def new_db_source(self, value_or_ref, deliver: str = "stored",
                      jitter: Optional[JitterModel] = None,
                      name: Optional[str] = None) -> MediaActivity:
        """Statement 1 + 5 combined: a database-located source bound to a
        stored value (or ``(oid, attribute)`` reference)."""
        self._require_open()
        value = self._resolve_value(value_or_ref)
        if isinstance(value, TemporalComposite):
            source = self.system.make_multisource(value, deliver=deliver, name=name)
        else:
            source = self.system.make_source(value, deliver=deliver,
                                             name=name, jitter=jitter)
        self._activities.append(source)
        return source

    def _resolve_value(self, value_or_ref):
        if isinstance(value_or_ref, (MediaValue, TemporalComposite)):
            return value_or_ref
        if isinstance(value_or_ref, tuple) and len(value_or_ref) == 2:
            ref, attribute = value_or_ref
            obj = self.fetch(ref) if isinstance(ref, OID) else ref
            path = attribute.split(".")
            value = obj
            for part in path:
                value = getattr(value, part)
            return value
        raise SessionError(
            f"cannot resolve {value_or_ref!r} to a media value "
            f"(pass a value, or (oid, 'attr') / (oid, 'tcomp.track'))"
        )

    # -- binding (statement 5, when done after creation) --------------------
    def bind(self, value_or_ref, activity: MediaActivity) -> None:
        self._require_open()
        activity.bind(self._resolve_value(value_or_ref))

    # -- connections (statement 3) -----------------------------------------
    def connect(self, source: Union[MediaActivity, Port],
                sink: Union[MediaActivity, Port],
                capacity: int = 8,
                bandwidth_bps: Optional[float] = None,
                degrade: bool = False,
                min_degraded_fraction: float = 0.25,
                priority: Optional[Priority] = None) -> Stream:
        """``new connection from <source>.out to <sink>.in``.

        Crossing the database/application boundary takes a bandwidth
        reservation on the session's channel — "this statement would fail
        if insufficient network bandwidth were available".

        With ``degrade=True`` an insufficient-bandwidth failure is
        renegotiated downward instead: the stream is admitted at the
        channel's remaining capacity, as long as that is at least
        ``min_degraded_fraction`` of the requested rate.  The element
        flow then runs slower than the nominal presentation rate —
        graceful QoS degradation rather than outright refusal.

        When the system has an admission controller in front of this
        session's channel (``system.enable_admission``), the reservation
        routes through it instead: ``priority`` selects the QoS class
        (default :attr:`~repro.admission.Priority.STANDARD`), degradation
        follows the same ``min_degraded_fraction`` floor, and background
        requests can be shed under overload.
        """
        self._require_open()
        graph = self.system.graph
        if isinstance(source, CompositeActivity) and isinstance(sink, CompositeActivity):
            channel = self.channel if self._crosses_boundary(source, sink) else None
            connections = graph.connect_composites(
                source, sink, capacity=capacity, channel=channel
            )
            stream = Stream(self, connections, [source, sink])
            self._streams.append(stream)
            return stream
        source_port = self._single_port(source, Direction.OUT)
        sink_port = self._single_port(sink, Direction.IN)
        reservation = None
        if self._crosses_boundary(source_port.resolve().owner, sink_port.resolve().owner):
            bps = bandwidth_bps or graph._port_bandwidth(source_port)
            reservation = self._reserve_bandwidth(bps, degrade,
                                                  min_degraded_fraction,
                                                  priority)
        try:
            connection = graph.connect(source_port, sink_port, capacity, reservation)
        except BaseException:
            # Statement 3 failed after admission succeeded: give the
            # bandwidth back rather than stranding it on the channel.
            if reservation is not None:
                reservation.release()
            raise
        owners = [source if isinstance(source, MediaActivity) else source_port.owner,
                  sink if isinstance(sink, MediaActivity) else sink_port.owner]
        stream = Stream(self, [connection], owners)
        self._streams.append(stream)
        return stream

    def _reserve_bandwidth(self, bps: float, degrade: bool,
                           min_fraction: float,
                           priority: Optional[Priority]):
        """Take the connection's channel reservation, via the admission
        controller when one fronts this session's channel."""
        admission = getattr(self.system, "admission", None)
        if admission is not None and admission.channel is self.channel:
            contract = QoSContract(
                bps,
                Priority.STANDARD if priority is None else priority,
                min_fraction if degrade else 1.0,
            )
            reservation = admission.try_admit(contract,
                                              label=f"{self.name}-stream")
            if reservation.bps + 1e-9 < bps:
                self._note_degraded(reservation.bps / bps)
            return reservation
        try:
            return self.channel.reserve(bps, label=f"{self.name}-stream")
        except AdmissionError:
            if not degrade:
                raise
            return self._degraded_reservation(bps, min_fraction)

    def _degraded_reservation(self, bps: float, min_fraction: float):
        """Renegotiate a failed reservation down to the leftover capacity."""
        available = self.channel.available_bps
        if available < bps * min_fraction or available <= 0:
            # Even the degraded contract cannot be honoured; the original
            # admission failure stands.
            raise AdmissionError(
                f"channel {self.channel.name!r}: {available:g} b/s left, below "
                f"the degraded floor of {bps * min_fraction:g} b/s "
                f"({min_fraction:.0%} of the requested {bps:g} b/s)"
            )
        reservation = self.channel.reserve(available,
                                           label=f"{self.name}-stream-degraded")
        self._note_degraded(available / bps)
        return reservation

    def _note_degraded(self, fraction: float) -> None:
        if self.degraded_streams == 0:
            self._m_degraded_sessions.inc()
        self.degraded_streams += 1
        if self.obs.decisions.enabled:
            self.obs.decisions.emit("session-degraded", self.name,
                                    actor="session",
                                    fraction=round(fraction, 4))
        self.obs.metrics.gauge(
            f"session.{self.name}.degraded_fraction"
        ).set(fraction)

    @staticmethod
    def _crosses_boundary(a: MediaActivity, b: MediaActivity) -> bool:
        return a.location is not b.location

    @staticmethod
    def _single_port(endpoint: Union[MediaActivity, Port],
                     direction: Direction) -> Port:
        if isinstance(endpoint, Port):
            return endpoint
        ports = [p for p in endpoint.ports.values() if p.direction is direction]
        if len(ports) != 1:
            raise SessionError(
                f"activity {endpoint.name!r} has {len(ports)} {direction.value} "
                f"ports; pass the port explicitly"
            )
        return ports[0]

    # -- recording / ingest -------------------------------------------------
    def record(self, source: MediaActivity, codec=None,
               geometry: Optional[Tuple[int, int, int]] = None,
               rate: float = 30.0, name: Optional[str] = None) -> "Recording":
        """Record a video stream into the database (Scenario I capture).

        Wires ``source`` (a raw-video producer — typically a
        :class:`~repro.activities.live.LiveCamera`, a digitizer or any
        raw out-port activity) through an optional encoder into a
        database-located writer.  Returns a :class:`Recording`; after the
        stream finishes, ``recording.store(...)`` persists the captured
        value and inserts a catalog object.
        """
        from repro.activities.library import VideoEncoder, VideoWriter
        label = name or f"{self.name}.recording"
        writer = VideoWriter(self.system.simulator, name=f"{label}.write",
                             location=Location.DATABASE, rate=rate,
                             codec=codec, geometry=geometry)
        self.system.graph.add(writer)
        self._activities.append(writer)
        activities = [source, writer]
        if codec is not None:
            encoder = VideoEncoder(self.system.simulator, codec,
                                   name=f"{label}.encode",
                                   location=Location.DATABASE)
            self.system.graph.add(encoder)
            self._activities.append(encoder)
            up = self.connect(source, encoder.port("video_in"))
            down = self.connect(encoder.port("video_out"), writer)
            connections = up.connections + down.connections
            activities.insert(1, encoder)
        else:
            stream = self.connect(source, writer)
            connections = stream.connections
        recording = Recording(self, Stream(self, connections, activities), writer)
        return recording

    # -- asynchronous notification ---------------------------------------
    def notify_on(self, activity: MediaActivity, event_name: str) -> None:
        """Subscribe: events arrive in ``session.notifications``."""
        self._require_open()

        def _handler(act, name, payload):
            self._m_notifications.inc()
            self.notifications.append(
                Notification(act.name, name, payload, self.system.simulator.now)
            )

        activity.catch(event_name, _handler)

    def notifications_for(self, activity: MediaActivity) -> List[Notification]:
        return [n for n in self.notifications if n.activity == activity.name]

    # -- running ---------------------------------------------------------
    def run(self, until: Optional[WorldTime] = None) -> WorldTime:
        """Drive the simulation (the 'client event loop')."""
        return self.system.simulator.run(until)

    def _record_qos(self) -> None:
        """Compare delivered presentation rates with the negotiated QoS.

        For every sink that carries a quality contract with a frame/sample
        rate, the delivered rate is read from its presentation log and
        published as a ratio (1.0 = contract met exactly).
        """
        for activity in self._activities:
            quality = getattr(activity, "quality", None)
            log = getattr(activity, "log", None)
            rate = getattr(quality, "rate", None)
            if not rate or log is None or len(log) < 2:
                continue
            span_s = (log.records[-1].actual - log.records[0].actual).seconds
            if span_s <= 0:
                continue
            delivered = (len(log) - 1) / span_s
            ratio = delivered / rate
            self._m_qos_ratio.observe(ratio)
            self.obs.metrics.gauge(
                f"session.{self.name}.qos_ratio"
            ).set(ratio)

    def close(self) -> None:
        """Stop this session's running activities and free its resources."""
        if self.closed:
            return
        self._record_qos()
        for activity in self._activities:
            if activity.state is ActivityState.RUNNING:
                activity.stop()
        for lease in self._leases:
            if not lease.released:
                lease.release()
        # Give back the channel bandwidth this session's streams reserved.
        for stream in self._streams:
            for connection in stream.connections:
                if connection.reservation is not None:
                    connection.reservation.release()
        # Give back device-bandwidth reservations and retire this
        # session's activities from the system graph, so a long-lived
        # system survives session churn without accreting state (the
        # churn test opens and closes 100 sessions and checks the system
        # ends exactly as it started).
        graph = self.system.graph
        for activity in self._activities:
            for leaf in graph._flatten(activity):
                io_stream = getattr(leaf, "io_stream", None)
                if io_stream is not None and not getattr(io_stream, "released", True):
                    io_stream.release()
            if graph.activities.get(activity.name) is activity:
                graph.remove(activity)
        self.closed = True

    def _require_open(self) -> None:
        if self.closed:
            raise SessionError(f"session {self.name!r} is closed")

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"Session({self.name!r}, {state}, {len(self._activities)} activities)"
