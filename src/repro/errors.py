"""Exception hierarchy shared by all subsystems.

Every error raised by the library derives from :class:`AVDBError`, so
applications can catch one base class at the database/application boundary.
The sub-hierarchies mirror the paper's subsystem split: data model errors,
activity (flow composition) errors, resource errors, storage errors and
database errors.
"""

from __future__ import annotations


class AVDBError(Exception):
    """Base class for all errors raised by this library."""


class DataModelError(AVDBError):
    """Violation of the AV data model (values, types, quality factors)."""


class MediaTypeError(DataModelError):
    """Operation applied to an incompatible media data type."""


class QualityError(DataModelError):
    """Malformed or unsatisfiable quality factor."""


class TemporalError(DataModelError):
    """Invalid temporal coordinate, interval or composition."""


class ActivityError(AVDBError):
    """Violation of the activity model (flow composition)."""


class PortError(ActivityError):
    """Unknown port, port direction mismatch or port type mismatch."""


class ConnectionError_(ActivityError):
    """Illegal connection between activity ports."""


class ActivityStateError(ActivityError):
    """Operation invalid for the activity's current state."""


class GraphError(ActivityError):
    """Structural error in an activity graph (cycles, dangling ports)."""


class ResourceError(AVDBError):
    """Resource pre-allocation failed (paper section 3.3, scheduling)."""


class AdmissionError(ResourceError):
    """Admission control rejected a stream (bandwidth or device)."""


class DeviceBusyError(ResourceError):
    """A non-shareable device is already allocated to another client."""


class AdmissionTimeoutError(AdmissionError):
    """A queued admission request expired before capacity freed up."""


class PreemptedError(AdmissionError):
    """A granted reservation was revoked to admit higher-priority work."""


class FaultError(AVDBError):
    """An injected fault surfaced to the affected component (recoverable).

    Faults are *expected* failures: the kernel records a process killed by
    a :class:`FaultError` (or :class:`Interrupted`) as a fault, not a
    programming failure, so ``Simulator.run()`` does not re-raise it.
    Recovery policies (:mod:`repro.faults.recovery`) retry on this class.
    """


class DeviceFaultError(FaultError):
    """An injected storage-device fault (outage) hit a transfer."""


class ChannelFaultError(FaultError):
    """An injected network fault dropped a transmission (mode='error')."""


class CircuitOpenError(AdmissionError, FaultError):
    """A circuit breaker rejected a call without attempting it.

    Raised while the breaker is open (the guarded component faulted
    repeatedly) so callers fail fast instead of queue-piling behind a
    dead resource.  Inherits :class:`FaultError` so retry policies treat
    it as transient: backed-off retries line up with the breaker's
    half-open probe window instead of hammering the fault.
    """


class StorageError(AVDBError):
    """Error in the simulated storage subsystem."""


class SchedulerStoppedError(StorageError, FaultError):
    """A disk request failed because the scheduler stopped.

    Raised both for requests pending at ``DiskScheduler.stop()`` time and
    for submissions against a stopped scheduler.  Inherits
    :class:`FaultError` so retry policies treat it as recoverable (the
    scheduler may be restarted, e.g. after an injected outage).
    """


class PlacementError(StorageError):
    """Data placement constraint violated (paper section 3.3)."""


class ClusterError(StorageError):
    """Error in the scale-out storage cluster tier."""


class NodeDownError(ClusterError, FaultError):
    """No live replica of a shard could serve a request.

    Inherits :class:`FaultError` so retry policies treat it as
    transient: a killed node may be restored, or background repair may
    re-create the replica on a surviving node, before the backoff
    schedule is exhausted.
    """


class OutOfSpaceError(StorageError):
    """Device has no free extent large enough for an allocation."""


class CacheError(StorageError):
    """Misuse of the cache tier (:mod:`repro.cache`)."""


class DatabaseError(AVDBError):
    """Error in the object database substrate."""


class SchemaError(DatabaseError):
    """Class definition or attribute access violates the schema."""


class QueryError(DatabaseError):
    """Malformed query or predicate."""


class TransactionError(DatabaseError):
    """Transaction used after commit/abort, or commit failed."""


class LockTimeoutError(TransactionError):
    """Lock request could not be granted (conflict or deadlock victim)."""


class ObjectNotFoundError(DatabaseError):
    """No object with the requested OID exists."""


class AnnotationError(DatabaseError):
    """Invalid annotation, annotation type, or temporal query."""


class VersionError(DatabaseError):
    """Invalid version-graph operation."""


class CodecError(AVDBError):
    """Encoding or decoding failure."""


class SimulationError(AVDBError):
    """Misuse of the discrete-event simulation kernel."""


class Interrupted(SimulationError):
    """Thrown into a process by ``Process.interrupt()``.

    Like :class:`FaultError`, an uncaught ``Interrupted`` marks the
    process as faulted rather than failed, so the kill does not abort the
    whole simulation run.
    """


class DeadlineExceeded(SimulationError):
    """A ``Timeout`` command expired before its event/process completed."""


class SessionError(AVDBError):
    """Client session misuse (e.g. using a closed session)."""


class WatchError(AVDBError):
    """Misuse of the supervision layer (:mod:`repro.watch`)."""


class InvariantBreachError(WatchError):
    """A continuously-checked system invariant was violated.

    Deliberately *not* a :class:`FaultError`: injected faults are
    expected and measured, but an invariant breach means the system's
    own bookkeeping went wrong, so it fails the run fast (the kernel
    records it as a failure and re-raises it from ``run()``).
    """


class SLOViolationError(WatchError):
    """A hard SLO failed (only raised when the watchdog is told to)."""


class RenderError(AVDBError):
    """Error in the 3D rendering substrate."""
