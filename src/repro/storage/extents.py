"""Extent allocation on a storage device.

AV values are large and sequential; devices hand out contiguous byte
extents via first-fit with coalescing free.  The allocator underlies the
storage-minimization requirement ("techniques to minimize storage space on
the physical level", §2) and makes :class:`OutOfSpaceError` a real,
testable failure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List

from repro.errors import OutOfSpaceError, StorageError

_extent_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Extent:
    """A contiguous byte range on one device."""

    device_name: str
    offset: int
    length: int
    id: int

    @property
    def end(self) -> int:
        return self.offset + self.length


class ExtentAllocator:
    """First-fit allocator with free-range coalescing."""

    def __init__(self, device_name: str, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise StorageError(f"device capacity must be positive, got {capacity_bytes}")
        self.device_name = device_name
        self.capacity_bytes = capacity_bytes
        # Sorted list of (offset, length) free ranges.
        self._free: List[tuple[int, int]] = [(0, capacity_bytes)]
        self._allocated: dict[int, Extent] = {}

    @property
    def free_bytes(self) -> int:
        return sum(length for _, length in self._free)

    @property
    def used_bytes(self) -> int:
        return self.capacity_bytes - self.free_bytes

    @property
    def largest_free_extent(self) -> int:
        return max((length for _, length in self._free), default=0)

    def allocate(self, nbytes: int) -> Extent:
        """First-fit allocation of ``nbytes`` contiguous bytes."""
        if nbytes <= 0:
            raise StorageError(f"allocation size must be positive, got {nbytes}")
        for i, (offset, length) in enumerate(self._free):
            if length >= nbytes:
                extent = Extent(self.device_name, offset, nbytes, next(_extent_ids))
                remaining = length - nbytes
                if remaining:
                    self._free[i] = (offset + nbytes, remaining)
                else:
                    del self._free[i]
                self._allocated[extent.id] = extent
                return extent
        raise OutOfSpaceError(
            f"device {self.device_name!r}: no free extent of {nbytes} bytes "
            f"(largest free: {self.largest_free_extent}, total free: {self.free_bytes})"
        )

    def free(self, extent: Extent) -> None:
        """Return an extent to the free list, coalescing neighbours."""
        if extent.id not in self._allocated:
            raise StorageError(
                f"extent {extent.id} is not allocated on {self.device_name!r}"
            )
        del self._allocated[extent.id]
        ranges = self._free + [(extent.offset, extent.length)]
        ranges.sort()
        merged: List[tuple[int, int]] = []
        for offset, length in ranges:
            if merged and merged[-1][0] + merged[-1][1] == offset:
                merged[-1] = (merged[-1][0], merged[-1][1] + length)
            else:
                merged.append((offset, length))
        self._free = merged

    def allocated_extents(self) -> List[Extent]:
        return sorted(self._allocated.values(), key=lambda e: e.offset)
