"""Storage substrate: simulated devices, extents and placement.

The paper's §3.3 "data placement" characteristic: "it may simply not be
possible for the database to simultaneously produce the two video values
unless they reside on different devices ... The alternative then is to
make visible to the client some aspect of the physical storage structure."

* :class:`Device` and its models (magnetic disk, writable CD, the
  LaserVision jukebox) — finite capacity, finite streaming bandwidth with
  admission control, seek/swap latencies;
* :class:`ExtentAllocator` — first-fit extent allocation on a device;
* :class:`PlacementManager` — which device holds which value, the
  client-visible placement interface, and the copy-to-second-device
  fallback whose cost benchmark C1 measures.
"""

from repro.storage.devices import (
    Device,
    DeviceReservation,
    JukeboxDevice,
    MagneticDisk,
    WritableCD,
)
from repro.storage.extents import Extent, ExtentAllocator
from repro.storage.placement import Placement, PlacementManager
from repro.storage.scheduler import DiskScheduler, Policy
from repro.storage.striping import StripedReservation, StripeSet, StripingManager

__all__ = [
    "DiskScheduler",
    "Policy",
    "StripingManager",
    "StripeSet",
    "StripedReservation",
    "Device",
    "DeviceReservation",
    "MagneticDisk",
    "WritableCD",
    "JukeboxDevice",
    "Extent",
    "ExtentAllocator",
    "Placement",
    "PlacementManager",
]
