"""Simulated storage devices.

Each device model combines:

* a byte capacity with extent allocation;
* a streaming bandwidth with admission control — a device can only
  sustain concurrent real-time streams up to its transfer rate, which is
  what makes the paper's same-device video-mixing example fail;
* access latencies: per-open seek for disks, disc-swap for the jukebox.

Three models cover the paper's storage discussion: magnetic disk, writable
CD ("improvements in storage media such as high-capacity magnetic disks
and writable CDs") and the analog LaserVision jukebox ("an analog
videodisc jukebox provides a video storage capacity difficult to achieve
using magnetic disks").
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, Optional

from repro.errors import AdmissionError, StorageError
from repro.sim import Delay, Simulator
from repro.storage.extents import Extent, ExtentAllocator

_reservation_ids = itertools.count(1)


class DeviceReservation:
    """A streaming-bandwidth slice of one device, held by one stream.

    Satisfies the ``io_stream`` protocol of the reader/writer activities:
    ``read(bits)`` / ``write(bits)`` are DES subroutines charging transfer
    time at the reserved rate.  The first access after ``open()`` pays the
    device's positioning latency.
    """

    def __init__(self, device: "Device", bps: float, label: str) -> None:
        self.device = device
        self.bps = bps
        self.label = label
        self.id = next(_reservation_ids)
        self.bits_read = 0
        self.bits_written = 0
        self.released = False
        self._positioned = False

    def open(self) -> Generator:
        """Position the device (seek / disc swap) before streaming."""
        latency = self.device.position_latency_s()
        if latency > 0:
            yield Delay(latency)
        self._positioned = True

    def _transfer(self, bits: int) -> Generator:
        if self.released:
            raise StorageError(f"reservation {self.label!r} was released")
        if not self._positioned:
            yield from self.open()
        duration = bits / self.bps
        faults = self.device.faults
        if faults is not None:
            # Injected outage/slowdown windows (see repro.faults.injector):
            # an outage blocks the transfer until the window ends (or
            # raises, per the plan's mode); a slowdown stretches it.
            wait_s, duration = faults.adjust(
                self.device.simulator.now.seconds, duration, self.device.name
            )
            if wait_s > 0:
                yield Delay(wait_s)
        if duration > 0:
            yield Delay(duration)

    def read(self, bits: int) -> Generator:
        yield from self._transfer(bits)
        self.bits_read += bits
        self.device.total_bits_read += bits
        self.device._m_bits_read.inc(bits)

    def write(self, bits: int) -> Generator:
        yield from self._transfer(bits)
        self.bits_written += bits
        self.device.total_bits_written += bits
        self.device._m_bits_written.inc(bits)

    def release(self) -> None:
        if not self.released:
            self.released = True
            self.device._release(self)

    def __repr__(self) -> str:
        return f"DeviceReservation({self.label!r}, {self.bps:g} b/s on {self.device.name!r})"


class Device:
    """A storage device: capacity, streaming bandwidth, latency model."""

    kind = "device"
    #: fault-injection hook: a :class:`repro.faults.injector.DeviceFaults`
    #: (outage/slowdown windows) armed by a FaultInjector, or None.
    faults = None

    def __init__(self, simulator: Simulator, name: str, capacity_bytes: int,
                 bandwidth_bps: float, seek_s: float = 0.0) -> None:
        if bandwidth_bps <= 0:
            raise StorageError(f"device bandwidth must be positive, got {bandwidth_bps}")
        self.simulator = simulator
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.seek_s = seek_s
        self.allocator = ExtentAllocator(name, capacity_bytes)
        self._reservations: Dict[int, DeviceReservation] = {}
        self.total_bits_read = 0
        self.total_bits_written = 0
        self.admission_failures = 0
        metrics = simulator.obs.metrics
        self._m_bits_read = metrics.counter(f"storage.device.{name}.bits_read")
        self._m_bits_written = metrics.counter(f"storage.device.{name}.bits_written")
        self._m_utilization = metrics.gauge(f"storage.device.{name}.utilization")
        self._m_admission_failures = metrics.counter("storage.admission_failures")

    # -- admission control (streaming) -----------------------------------
    @property
    def reserved_bps(self) -> float:
        return sum(r.bps for r in self._reservations.values())

    @property
    def available_bps(self) -> float:
        return self.bandwidth_bps - self.reserved_bps

    def can_admit(self, bps: float) -> bool:
        return bps <= self.available_bps + 1e-9

    def reserve(self, bps: float, label: str = "stream") -> DeviceReservation:
        """Admit a real-time stream; fails when the device is saturated."""
        if bps <= 0:
            raise AdmissionError(f"cannot reserve non-positive bandwidth {bps}")
        if not self.can_admit(bps):
            self.admission_failures += 1
            self._m_admission_failures.inc()
            raise AdmissionError(
                f"device {self.name!r}: cannot admit stream at {bps:g} b/s "
                f"({self.available_bps:g} of {self.bandwidth_bps:g} b/s available)"
            )
        reservation = DeviceReservation(self, bps, label)
        self._reservations[reservation.id] = reservation
        self._m_utilization.set(self.reserved_bps / self.bandwidth_bps)
        return reservation

    def _release(self, reservation: DeviceReservation) -> None:
        self._reservations.pop(reservation.id, None)
        self._m_utilization.set(self.reserved_bps / self.bandwidth_bps)

    def position_latency_s(self) -> float:
        """Latency to position before a stream starts (seek, swap...)."""
        return self.seek_s

    # -- allocation facade -------------------------------------------------
    def allocate(self, nbytes: int) -> Extent:
        return self.allocator.allocate(nbytes)

    def free(self, extent: Extent) -> None:
        self.allocator.free(extent)

    @property
    def free_bytes(self) -> int:
        return self.allocator.free_bytes

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, "
            f"{self.reserved_bps:g}/{self.bandwidth_bps:g} b/s reserved, "
            f"{self.allocator.used_bytes}/{self.allocator.capacity_bytes} bytes used)"
        )


class MagneticDisk(Device):
    """A 1993-era high-capacity magnetic disk.

    Defaults: 2 GB, 48 Mb/s sustained transfer, 15 ms average seek —
    enough for a couple of compressed video streams but nowhere near two
    concurrent uncompressed ones, which is the point of benchmark C1.
    """

    kind = "magnetic-disk"

    def __init__(self, simulator: Simulator, name: str = "disk",
                 capacity_bytes: int = 2_000_000_000,
                 bandwidth_bps: float = 48_000_000.0,
                 seek_s: float = 0.015) -> None:
        super().__init__(simulator, name, capacity_bytes, bandwidth_bps, seek_s)


class WritableCD(Device):
    """A writable CD: big for the time, slow to stream (~1.2 Mb/s x N)."""

    kind = "writable-cd"

    def __init__(self, simulator: Simulator, name: str = "cd",
                 capacity_bytes: int = 650_000_000,
                 bandwidth_bps: float = 4_800_000.0,
                 seek_s: float = 0.2) -> None:
        super().__init__(simulator, name, capacity_bytes, bandwidth_bps, seek_s)


class JukeboxDevice(Device):
    """An analog LaserVision videodisc jukebox.

    Huge capacity; one stream at a time; positioning may require a disc
    swap (seconds, not milliseconds).  Reads deliver *analog* video that
    must pass through a digitizer activity.
    """

    kind = "videodisc-jukebox"

    def __init__(self, simulator: Simulator, name: str = "jukebox",
                 discs: int = 100, capacity_per_disc: int = 10_000_000_000,
                 bandwidth_bps: float = 270_000_000.0,
                 swap_s: float = 8.0, seek_s: float = 0.5) -> None:
        super().__init__(simulator, name, discs * capacity_per_disc,
                         bandwidth_bps, seek_s)
        self.discs = discs
        self.capacity_per_disc = capacity_per_disc
        self.swap_s = swap_s
        self._loaded_disc: Optional[int] = None
        self.swap_count = 0

    _pending_swap_s: float = 0.0

    def load_disc(self, disc: int) -> float:
        """Select a disc; the swap cost is paid at the next stream open."""
        if not 0 <= disc < self.discs:
            raise StorageError(f"jukebox has discs 0..{self.discs - 1}, got {disc}")
        if self._loaded_disc == disc:
            return 0.0
        self._loaded_disc = disc
        self.swap_count += 1
        self._pending_swap_s = self.swap_s
        return self.swap_s

    @property
    def loaded_disc(self) -> Optional[int]:
        return self._loaded_disc

    def reserve(self, bps: float, label: str = "stream") -> DeviceReservation:
        """Admit at most one concurrent analog stream."""
        # Analog playback: exactly one stream at a time, regardless of rate.
        if self._reservations:
            self.admission_failures += 1
            self._m_admission_failures.inc()
            raise AdmissionError(
                f"jukebox {self.name!r} is playing; analog devices serve one stream"
            )
        return super().reserve(bps, label)

    def position_latency_s(self) -> float:
        # Positioning pays the seek plus any pending disc swap; an unloaded
        # jukebox must always swap a disc in first.
        swap = self._pending_swap_s if self._loaded_disc is not None else self.swap_s
        self._pending_swap_s = 0.0
        return self.seek_s + swap
