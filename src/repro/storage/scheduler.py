"""Disk-head scheduling for concurrent stream requests.

"disk accesses are scheduled by the storage sub-system" (§3.3) — with
several concurrent AV streams reading from one disk, the order the head
services requests in determines total seek overhead.  This module models
the head position explicitly and implements the two classic policies:

* **FCFS** — requests served in arrival order; the head zig-zags;
* **C-SCAN** — the elevator: service in ascending position order, then
  sweep back; seek totals drop sharply under concurrent sequential
  streams.

``DiskScheduler`` runs as a DES server process: clients submit
:class:`DiskRequest` objects and wait on per-request events; the bench
``bench_ablation_scheduler.py`` measures the policy gap.

Shutdown semantics: ``stop()`` *fails* every queued request (each
``done`` event fires with the request carrying a
:class:`~repro.errors.SchedulerStoppedError`) so no waiter is ever
stranded; ``stop(drain=True)`` / ``drain()`` instead serves the backlog
before the server exits.  A stopped scheduler can be restarted with
``start()`` — which is how the fault injector models a disk outage.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from heapq import heappop, heappush
from typing import Deque, Generator, List, Optional, Tuple

from repro.errors import SchedulerStoppedError, StorageError
from repro.obs.metrics import DEPTH_BUCKETS
from repro.sim import Delay, SimEvent, Simulator, WaitEvent


class Policy(Enum):
    FCFS = "fcfs"
    CSCAN = "c-scan"


@dataclass
class DiskRequest:
    """One transfer request against the disk."""

    position: int       # logical track/cylinder of the extent
    bits: int           # transfer size
    done: SimEvent = field(repr=False, default=None)
    submitted_at: float = 0.0
    #: virtual completion time; ``None`` until the transfer finishes (a
    #: request really can complete at virtual time 0.0, so the sentinel
    #: must not be a magic float).
    completed_at: Optional[float] = None
    #: virtual time by which the transfer must complete (None = best-effort);
    #: a completion past the deadline counts as a ``storage.deadline_misses``.
    deadline: Optional[float] = None
    #: why the request failed (e.g. the scheduler stopped); the ``done``
    #: event still fires, with the request itself as payload.
    error: Optional[BaseException] = None

    @property
    def completed(self) -> bool:
        return self.completed_at is not None

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def wait_seconds(self) -> float:
        if self.completed_at is None:
            raise StorageError("request has not completed")
        return self.completed_at - self.submitted_at

    @property
    def missed_deadline(self) -> bool:
        return (self.deadline is not None and self.completed_at is not None
                and self.completed_at > self.deadline + 1e-12)


class DiskScheduler:
    """A single-head disk served under a pluggable scheduling policy.

    Parameters
    ----------
    cylinders:
        Number of head positions; seek time is proportional to distance.
    seek_per_cylinder_s:
        Seconds to move the head one cylinder.
    transfer_bps:
        Media transfer rate once positioned.
    """

    def __init__(self, simulator: Simulator, policy: Policy = Policy.CSCAN,
                 cylinders: int = 1000, seek_per_cylinder_s: float = 0.00002,
                 transfer_bps: float = 48_000_000.0) -> None:
        if cylinders < 1:
            raise StorageError(f"cylinder count must be >= 1, got {cylinders}")
        if transfer_bps <= 0:
            raise StorageError(f"transfer rate must be positive, got {transfer_bps}")
        self.simulator = simulator
        self.policy = policy
        self.cylinders = cylinders
        self.seek_per_cylinder_s = seek_per_cylinder_s
        self.transfer_bps = transfer_bps
        self.head_position = 0
        #: FCFS backlog (arrival order).  Under C-SCAN the backlog lives
        #: in the two heaps below instead and this deque stays empty.
        self._queue: Deque[DiskRequest] = deque()
        # C-SCAN: requests at or ahead of the head vs. behind it, each a
        # min-heap keyed (position, seq) — seq is the arrival number, so
        # equal positions serve in arrival order, matching the old O(n)
        # scan's first-minimum choice.  The head only descends when the
        # ahead heap empties (sweep back), at which point the heaps swap;
        # insert-time classification therefore never goes stale.
        self._ahead: List[Tuple[int, int, DiskRequest]] = []
        self._behind: List[Tuple[int, int, DiskRequest]] = []
        self._arrivals = 0
        self._wake: Optional[SimEvent] = None
        self._running = False
        self._stopped = False   # started once, then stopped (rejects submits)
        self._drain = False
        #: fault-injection knob: service times are multiplied by this
        #: factor (1.0 = healthy; >1 = injected slowdown).
        self.service_scale = 1.0
        self.total_seek_distance = 0
        self.requests_served = 0
        self.requests_failed = 0
        self.deadline_misses = 0
        #: 1 while a picked request is being seeked/transferred.  Load
        #: scorers add this to ``queue_depth``: a disk one second into a
        #: long transfer is busy even though nothing is *queued*.
        self.in_service = 0
        metrics = simulator.obs.metrics
        self._m_requests = metrics.counter("storage.disk_requests")
        self._m_seeks = metrics.counter("storage.seek_cylinders")
        self._m_wait_s = metrics.histogram("storage.disk_wait_s")
        self._m_queue_depth = metrics.histogram("storage.disk_queue_depth",
                                                buckets=DEPTH_BUCKETS)
        self._m_misses = metrics.counter("storage.deadline_misses")
        self._m_failed = metrics.counter("storage.disk_requests_failed")

    @property
    def running(self) -> bool:
        return self._running

    # -- client API ----------------------------------------------------------
    def submit(self, position: int, bits: int,
               deadline: Optional[float] = None) -> DiskRequest:
        """Queue a request; wait on ``request.done`` for completion."""
        if not 0 <= position < self.cylinders:
            raise StorageError(
                f"position {position} outside [0, {self.cylinders})"
            )
        if bits < 0:
            raise StorageError(f"transfer size must be >= 0, got {bits}")
        if self._stopped:
            raise SchedulerStoppedError(
                f"disk scheduler ({self.policy.value}) is stopped"
            )
        request = DiskRequest(position, bits, self.simulator.event("disk-done"),
                              submitted_at=self.simulator.now.seconds,
                              deadline=deadline)
        if self.policy is Policy.FCFS:
            self._queue.append(request)
        else:
            self._arrivals += 1
            entry = (position, self._arrivals, request)
            if position >= self.head_position:
                heappush(self._ahead, entry)
            else:
                heappush(self._behind, entry)
        self._m_requests.inc()
        self._m_queue_depth.observe(self.queue_depth)
        if self._wake is not None and not self._wake.triggered:
            self._wake.trigger()
        return request

    @property
    def queue_depth(self) -> int:
        """Requests queued but not yet picked for service."""
        return len(self._queue) + len(self._ahead) + len(self._behind)

    def read(self, position: int, bits: int,
             deadline: Optional[float] = None) -> Generator:
        """DES subroutine: submit and wait; raises if the request failed."""
        request = self.submit(position, bits, deadline)
        yield WaitEvent(request.done)
        if request.error is not None:
            raise request.error
        return request

    # -- the server process ------------------------------------------------
    def start(self) -> None:
        """Start (or restart after ``stop()``) the server process."""
        if self._running:
            raise StorageError("disk scheduler already started")
        self._running = True
        self._stopped = False
        self._drain = False
        self.simulator.spawn(self._serve(), name=f"disk-{self.policy.value}")

    def stop(self, drain: bool = False) -> None:
        """Stop the server.

        With ``drain=False`` (default) every queued request fails
        immediately: its ``done`` event fires with the request carrying a
        :class:`~repro.errors.SchedulerStoppedError`, so waiters always
        wake instead of deadlocking.  With ``drain=True`` the backlog is
        served first, then the server exits.  An in-flight transfer
        always completes either way.
        """
        if not self._running:
            return
        self._running = False
        self._stopped = True
        self._drain = drain
        if not drain:
            self._fail_pending(SchedulerStoppedError(
                f"disk scheduler ({self.policy.value}) stopped with "
                f"{self.queue_depth} requests queued"
            ))
        if self._wake is not None and not self._wake.triggered:
            self._wake.trigger()

    def drain(self) -> None:
        """Stop after serving the current backlog (``stop(drain=True)``)."""
        self.stop(drain=True)

    def _fail_pending(self, error: BaseException) -> None:
        # Fail in arrival order regardless of policy, so waiters wake in
        # the same deterministic order the FIFO implementation used.
        pending = list(self._queue)
        self._queue.clear()
        if self._ahead or self._behind:
            heaped = self._ahead + self._behind
            self._ahead.clear()
            self._behind.clear()
            heaped.sort(key=lambda e: e[1])
            pending.extend(e[2] for e in heaped)
        for request in pending:
            request.error = error
            self.requests_failed += 1
            self._m_failed.inc()
            request.done.trigger(request)

    def _pick(self) -> DiskRequest:
        if self.policy is Policy.FCFS:
            return self._queue.popleft()
        # C-SCAN: nearest request at or ahead of the head (ascending);
        # when none remain ahead, sweep back to the lowest — i.e. the
        # heaps swap roles.  O(log n) per pick instead of an O(n) scan.
        if not self._ahead:
            self._ahead, self._behind = self._behind, self._ahead
        return heappop(self._ahead)[2]

    def _serve(self) -> Generator:
        while True:
            if not self.queue_depth:
                if not self._running:
                    return
                self._wake = self.simulator.event("disk-wake")
                yield WaitEvent(self._wake)
                self._wake = None
                continue
            # Stopped without drain: stop() already failed the backlog;
            # anything left here arrived in the same tick — fail it too.
            if not self._running and not self._drain:
                self._fail_pending(SchedulerStoppedError(
                    f"disk scheduler ({self.policy.value}) stopped"
                ))
                return
            request = self._pick()
            self.in_service = 1
            distance = abs(request.position - self.head_position)
            self.total_seek_distance += distance
            self._m_seeks.inc(distance)
            self.head_position = request.position
            tracer = self.simulator.obs.tracer
            span = tracer.begin(
                "disk.service", "storage", track=f"disk-{self.policy.value}",
                position=request.position, bits=request.bits,
            ) if tracer.enabled else None
            service = (distance * self.seek_per_cylinder_s
                       + request.bits / self.transfer_bps) * self.service_scale
            if service > 0:
                yield Delay(service)
            request.completed_at = self.simulator.now.seconds
            self.requests_served += 1
            self._m_wait_s.observe(request.wait_seconds)
            if request.missed_deadline:
                self.deadline_misses += 1
                self._m_misses.inc()
            if span is not None:
                span.end(seek_cylinders=distance)
            self.in_service = 0
            request.done.trigger(request)

    def mean_wait(self, requests: List[DiskRequest]) -> float:
        waits = [r.wait_seconds for r in requests if r.completed]
        if not waits:
            raise StorageError("no completed requests to average")
        return sum(waits) / len(waits)
