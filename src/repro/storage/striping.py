"""Striped placement: one value across several devices.

The §3.3 placement discussion makes device bandwidth the binding
constraint on concurrent streams.  Striping is the classic storage answer
the other direction: a value whose data rate exceeds any single device's
remaining bandwidth can still stream in real time if its blocks are
spread round-robin across devices — each device serves a fraction of the
rate, reads proceed in parallel.

:class:`StripeSet` holds the per-device extents and reservations;
``reserve()`` performs admission on every member device (each must accept
its share) and returns a reservation satisfying the readers' ``io_stream``
protocol whose effective bandwidth is the sum of the shares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Sequence

from repro.errors import AdmissionError, PlacementError
from repro.sim import Delay
from repro.storage.devices import DeviceReservation
from repro.storage.extents import Extent
from repro.storage.placement import PlacementManager
from repro.values.base import MediaValue


@dataclass(frozen=True)
class StripeSet:
    """Where a striped value lives: one extent per member device."""

    value_id: int
    device_names: tuple
    extents: tuple
    nbytes: int

    @property
    def stripe_count(self) -> int:
        return len(self.device_names)


class StripedReservation:
    """Aggregate bandwidth reservation over a stripe set.

    Satisfies the reader ``io_stream`` protocol: ``read(bits)`` takes the
    time of the slowest member's share (members transfer their stripes in
    parallel); accounting is charged per member device.
    """

    def __init__(self, members: List[DeviceReservation]) -> None:
        if not members:
            raise PlacementError("a striped reservation needs >= 1 member")
        self.members = members
        self.bits_read = 0
        self.released = False

    @property
    def bps(self) -> float:
        return sum(m.bps for m in self.members)

    def open(self) -> Generator:
        # Every member positions in parallel: pay the slowest seek once.
        latency = max(m.device.position_latency_s() for m in self.members)
        for member in self.members:
            member._positioned = True
        if latency > 0:
            yield Delay(latency)

    def read(self, bits: int) -> Generator:
        """Parallel stripe read: wall time is bits over the summed rate."""
        if self.released:
            raise PlacementError("striped reservation was released")
        if not all(m._positioned for m in self.members):
            yield from self.open()
        # Shares proportional to member rates; parallel transfer means the
        # wall time is the common bits/total_bps.
        duration = bits / self.bps if self.bps else 0.0
        if duration > 0:
            yield Delay(duration)
        for member in self.members:
            share = int(bits * member.bps / self.bps)
            member.bits_read += share
            member.device.total_bits_read += share
        self.bits_read += bits

    def release(self) -> None:
        if not self.released:
            self.released = True
            for member in self.members:
                member.release()


class StripingManager:
    """Striped placement over an existing :class:`PlacementManager` pool."""

    def __init__(self, placement: PlacementManager) -> None:
        self.placement = placement
        self._stripes: Dict[int, StripeSet] = {}

    def place_striped(self, value: MediaValue,
                      device_names: Sequence[str]) -> StripeSet:
        """Spread a value's bytes evenly across the named devices."""
        if len(device_names) < 2:
            raise PlacementError("striping needs >= 2 devices")
        if len(set(device_names)) != len(device_names):
            raise PlacementError("stripe devices must be distinct")
        if id(value) in self._stripes or self.placement.is_placed(value):
            raise PlacementError("value is already placed")
        nbytes = PlacementManager._value_bytes(value)
        share = max(1, (nbytes + len(device_names) - 1) // len(device_names))
        extents: List[Extent] = []
        allocated: List[tuple] = []
        try:
            for name in device_names:
                device = self.placement.device(name)
                extent = device.allocate(share)
                extents.append(extent)
                allocated.append((device, extent))
        except Exception:
            for device, extent in allocated:
                device.free(extent)
            raise
        stripe = StripeSet(id(value), tuple(device_names), tuple(extents), nbytes)
        self._stripes[id(value)] = stripe
        return stripe

    def is_striped(self, value: MediaValue) -> bool:
        return id(value) in self._stripes

    def stripe_of(self, value: MediaValue) -> StripeSet:
        try:
            return self._stripes[id(value)]
        except KeyError:
            raise PlacementError("value is not striped") from None

    def can_stream(self, value: MediaValue) -> bool:
        """Could the stripe members jointly sustain the value's rate?"""
        stripe = self.stripe_of(value)
        share = value.data_rate_bps() / stripe.stripe_count
        return all(
            self.placement.device(name).can_admit(share)
            for name in stripe.device_names
        )

    def reserve(self, value: MediaValue,
                readahead: float = 2.0) -> StripedReservation:
        """Admit the stream on every member device (all or nothing)."""
        stripe = self.stripe_of(value)
        share = value.data_rate_bps() * readahead / stripe.stripe_count
        members: List[DeviceReservation] = []
        try:
            for name in stripe.device_names:
                device = self.placement.device(name)
                grant = min(share, device.available_bps)
                floor = value.data_rate_bps() / stripe.stripe_count
                if grant + 1e-9 < floor:
                    raise AdmissionError(
                        f"stripe member {name!r} cannot sustain its "
                        f"{floor:g} b/s share ({device.available_bps:g} available)"
                    )
                members.append(device.reserve(grant, label="stripe"))
        except Exception:
            for member in members:
                member.release()
            raise
        return StripedReservation(members)

    def remove(self, value: MediaValue) -> None:
        stripe = self._stripes.pop(id(value), None)
        if stripe is None:
            raise PlacementError("value is not striped")
        for name, extent in zip(stripe.device_names, stripe.extents):
            self.placement.device(name).free(extent)
