"""Data placement (paper §3.3).

The placement manager records which device holds each stored value and
exposes exactly the client-visible placement the paper argues for:

* ``device_of`` / ``co_located`` — "make visible to the client some
  aspect of the physical storage structure so that the two values can be
  assured to be available simultaneously";
* ``can_stream_together`` — the admission question behind the video-
  mixing example;
* ``copy`` — the physical-data-independence fallback ("copy one video
  value to a temporary area on a second device.  This could be so
  time-consuming as to destroy any sense of interactivity"), implemented
  as a DES process whose duration benchmark C1 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.errors import PlacementError
from repro.sim import Simulator
from repro.storage.devices import Device
from repro.storage.extents import Extent
from repro.values.base import MediaValue


@dataclass(frozen=True, slots=True)
class Placement:
    """Where one value lives."""

    value_id: int
    device_name: str
    extent: Extent
    nbytes: int


class PlacementManager:
    """Tracks value -> device placements across a device pool."""

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator
        self._devices: Dict[str, Device] = {}
        self._placements: Dict[int, Placement] = {}
        self.copy_count = 0
        metrics = simulator.obs.metrics
        self._m_placements = metrics.counter("storage.placements")
        self._m_copies = metrics.counter("storage.copies")
        self._m_copy_s = metrics.histogram("storage.copy_s")

    # -- device pool ---------------------------------------------------------
    def add_device(self, device: Device) -> Device:
        if device.name in self._devices:
            raise PlacementError(f"device {device.name!r} already registered")
        self._devices[device.name] = device
        return device

    def device(self, name: str) -> Device:
        try:
            return self._devices[name]
        except KeyError:
            raise PlacementError(f"unknown device {name!r}") from None

    @property
    def devices(self) -> List[Device]:
        return list(self._devices.values())

    # -- placement -----------------------------------------------------------
    @staticmethod
    def _value_bytes(value: MediaValue) -> int:
        return max(1, (value.data_size_bits() + 7) // 8)

    def place(self, value: MediaValue, device_name: str) -> Placement:
        """Store a value on a specific device (allocates an extent)."""
        vid = id(value)
        if vid in self._placements:
            raise PlacementError("value is already placed; use move() or remove() first")
        device = self.device(device_name)
        nbytes = self._value_bytes(value)
        extent = device.allocate(nbytes)
        placement = Placement(vid, device_name, extent, nbytes)
        self._placements[vid] = placement
        self._m_placements.inc()
        return placement

    def place_auto(self, value: MediaValue) -> Placement:
        """Place on the device with the most free space."""
        if not self._devices:
            raise PlacementError("no devices registered")
        best = max(self._devices.values(), key=lambda d: d.free_bytes)
        return self.place(value, best.name)

    def remove(self, value: MediaValue) -> None:
        placement = self._placement_of(value)
        self.device(placement.device_name).free(placement.extent)
        del self._placements[placement.value_id]

    def _placement_of(self, value: MediaValue) -> Placement:
        try:
            return self._placements[id(value)]
        except KeyError:
            raise PlacementError("value has no placement") from None

    def placement_of(self, value: MediaValue) -> Placement:
        return self._placement_of(value)

    def device_of(self, value: MediaValue) -> Device:
        return self.device(self._placement_of(value).device_name)

    def is_placed(self, value: MediaValue) -> bool:
        return id(value) in self._placements

    # -- the §3.3 placement questions --------------------------------------
    def co_located(self, value_a: MediaValue, value_b: MediaValue) -> bool:
        return (
            self._placement_of(value_a).device_name
            == self._placement_of(value_b).device_name
        )

    def can_stream_together(self, values: List[MediaValue]) -> bool:
        """Could all values stream concurrently from their current devices?

        Sums each value's data rate against its device's *currently*
        available streaming bandwidth.
        """
        demand: Dict[str, float] = {}
        for value in values:
            placement = self._placement_of(value)
            demand[placement.device_name] = (
                demand.get(placement.device_name, 0.0) + value.data_rate_bps()
            )
        return all(
            self.device(name).available_bps + 1e-9 >= bps
            for name, bps in demand.items()
        )

    def pick_device_for_copy(self, value: MediaValue,
                             avoid: Optional[str] = None) -> Device:
        """A device (not ``avoid``) with space and bandwidth for ``value``."""
        nbytes = self._value_bytes(value)
        bps = value.data_rate_bps()
        candidates = [
            d for d in self._devices.values()
            if d.name != avoid
            and d.allocator.largest_free_extent >= nbytes
            and d.can_admit(bps)
        ]
        if not candidates:
            raise PlacementError(
                f"no device (avoiding {avoid!r}) can hold {nbytes} bytes "
                f"and stream at {bps:g} b/s"
            )
        return max(candidates, key=lambda d: d.free_bytes)

    def copy(self, value: MediaValue, dst_device_name: str) -> Generator:
        """DES subroutine: copy a value to another device.

        Pays full read time on the source device and write time on the
        destination (overlapped: the slower side dominates), then
        re-points the placement at the destination and frees the source
        extent.  Returns the new placement.
        """
        placement = self._placement_of(value)
        if placement.device_name == dst_device_name:
            raise PlacementError(
                f"value already resides on {dst_device_name!r}"
            )
        src = self.device(placement.device_name)
        dst = self.device(dst_device_name)
        nbytes = placement.nbytes
        new_extent = dst.allocate(nbytes)
        # The copy runs at the slower of the two sides' available bandwidth;
        # read and write overlap, so the transfer time is paid once.
        rate = min(src.available_bps, dst.available_bps)
        if rate <= 0:
            dst.free(new_extent)
            raise PlacementError(
                f"no streaming bandwidth available to copy "
                f"({placement.device_name!r} -> {dst_device_name!r})"
            )
        read_res = src.reserve(rate, "copy-read")
        write_res = dst.reserve(rate, "copy-write")
        bits = nbytes * 8
        started = self.simulator.now.seconds
        span = self.simulator.obs.tracer.begin(
            "placement.copy", "storage", track="placement",
            src=src.name, dst=dst.name, nbytes=nbytes,
        )
        try:
            yield from write_res.open()
            yield from read_res.read(bits)
            write_res.bits_written += bits
            dst.total_bits_written += bits
            dst._m_bits_written.inc(bits)
        except BaseException:
            # A fault (or an interrupt) killed the copy mid-transfer: the
            # destination extent holds no complete value, so give it back
            # instead of leaking it.  The source placement is untouched.
            dst.free(new_extent)
            raise
        finally:
            read_res.release()
            write_res.release()
            span.end()
        src.free(placement.extent)
        new_placement = Placement(placement.value_id, dst_device_name, new_extent, nbytes)
        self._placements[placement.value_id] = new_placement
        self.copy_count += 1
        self._m_copies.inc()
        self._m_copy_s.observe(self.simulator.now.seconds - started)
        return new_placement
