"""Per-instance timeline diagrams (Fig. 1).

"Such diagrams depict the relative timing (start time and duration) of
each component.  For example, the timeline in Fig. 1 indicates that
videoTrack starts at time t0 and ends at time t1, while the other tracks
last from t1 until t2."

A :class:`Timeline` is an ordered set of :class:`TimelineEntry` rows, each
placing one named track on the shared world-time axis.  ``render_ascii``
regenerates the figure; the Allen-relation helpers express and validate
inter-track correlations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.avtime import Interval, WorldTime
from repro.avtime.interval import AllenRelation
from repro.errors import TemporalError


@dataclass(frozen=True, slots=True)
class TimelineEntry:
    """One track's placement on the timeline."""

    track: str
    interval: Interval

    @property
    def start(self) -> WorldTime:
        return self.interval.start

    @property
    def end(self) -> WorldTime:
        return self.interval.end


class Timeline:
    """An ordered collection of track placements on one world-time axis."""

    def __init__(self, entries: Optional[List[TimelineEntry]] = None) -> None:
        self._entries: List[TimelineEntry] = []
        self._by_track: Dict[str, TimelineEntry] = {}
        for entry in entries or []:
            self.place_entry(entry)

    # -- construction ------------------------------------------------------
    def place(self, track: str, start: WorldTime, duration: WorldTime) -> TimelineEntry:
        return self.place_entry(TimelineEntry(track, Interval(start, duration)))

    def place_entry(self, entry: TimelineEntry) -> TimelineEntry:
        if entry.track in self._by_track:
            raise TemporalError(f"track {entry.track!r} already placed on this timeline")
        self._entries.append(entry)
        self._by_track[entry.track] = entry
        return entry

    def place_relative(self, track: str, relation: AllenRelation,
                       reference: str, duration: WorldTime,
                       offset: WorldTime = WorldTime(0.0)) -> TimelineEntry:
        """Author by constraint: place ``track`` so that it stands in
        ``relation`` to the already-placed ``reference`` track.

        The natural authoring idiom for timeline diagrams: "subtitles
        MEET the video", "commentary runs DURING the match".  ``offset``
        nudges relations that have positioning freedom (OVERLAPS, DURING,
        BEFORE/AFTER gaps); it must be positive where used.

        Supported relations: BEFORE, AFTER, MEETS, MET_BY, STARTS,
        STARTED_BY, FINISHES, FINISHED_BY, EQUALS, DURING, CONTAINS,
        OVERLAPS, OVERLAPPED_BY.  The placement is validated: the
        resulting pair must actually satisfy the requested relation
        (impossible combinations of duration/offset raise).
        """
        anchor = self.entry(reference).interval
        d = duration
        if relation is AllenRelation.BEFORE:
            gap = offset if offset.seconds > 0 else WorldTime(1e-9)
            start = anchor.start - gap - d
        elif relation is AllenRelation.AFTER:
            gap = offset if offset.seconds > 0 else WorldTime(1e-9)
            start = anchor.end + gap
        elif relation is AllenRelation.MEETS:
            start = anchor.start - d
        elif relation is AllenRelation.MET_BY:
            start = anchor.end
        elif relation in (AllenRelation.STARTS, AllenRelation.STARTED_BY):
            start = anchor.start
        elif relation in (AllenRelation.FINISHES, AllenRelation.FINISHED_BY):
            start = anchor.end - d
        elif relation is AllenRelation.EQUALS:
            start = anchor.start
        elif relation is AllenRelation.DURING:
            inset = offset if offset.seconds > 0 else anchor.duration * 0.01
            start = anchor.start + inset
        elif relation is AllenRelation.CONTAINS:
            inset = offset if offset.seconds > 0 else d * 0.01
            start = anchor.start - inset
        elif relation is AllenRelation.OVERLAPS:
            shift = offset if offset.seconds > 0 else d * 0.5
            start = anchor.start - shift
        elif relation is AllenRelation.OVERLAPPED_BY:
            shift = offset if offset.seconds > 0 else d * 0.5
            start = anchor.end - (d - shift)
        else:  # pragma: no cover - exhaustive above
            raise TemporalError(f"unsupported relation {relation}")
        candidate = Interval(start, d)
        achieved = candidate.relation_to(anchor)
        if achieved is not relation:
            raise TemporalError(
                f"cannot place {track!r} {relation.value} {reference!r} with "
                f"duration {d.seconds:g}s and offset {offset.seconds:g}s "
                f"(achieves {achieved.value})"
            )
        return self.place_entry(TimelineEntry(track, candidate))

    # -- lookup -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TimelineEntry]:
        return iter(self._entries)

    def __contains__(self, track: str) -> bool:
        return track in self._by_track

    def entry(self, track: str) -> TimelineEntry:
        try:
            return self._by_track[track]
        except KeyError:
            raise TemporalError(f"no track {track!r} on this timeline") from None

    @property
    def tracks(self) -> Tuple[str, ...]:
        return tuple(e.track for e in self._entries)

    # -- derived temporal structure ---------------------------------------
    def span(self) -> Interval:
        """Smallest interval covering every entry."""
        if not self._entries:
            raise TemporalError("empty timeline has no span")
        result = self._entries[0].interval
        for entry in self._entries[1:]:
            result = result.union_span(entry.interval)
        return result

    @property
    def duration(self) -> WorldTime:
        return self.span().duration

    def active_at(self, when: WorldTime) -> List[TimelineEntry]:
        """Entries whose intervals contain world time ``when``."""
        return [e for e in self._entries if e.interval.contains_time(when)]

    def relation(self, track_a: str, track_b: str) -> AllenRelation:
        """Allen relation between two tracks' placements."""
        return self.entry(track_a).interval.relation_to(self.entry(track_b).interval)

    def simultaneous(self, track_a: str, track_b: str) -> bool:
        """Whether the two tracks are ever presented at the same time."""
        return (
            self.entry(track_a).interval.intersection(self.entry(track_b).interval)
            is not None
        )

    def shifted(self, delta: WorldTime) -> "Timeline":
        return Timeline([TimelineEntry(e.track, e.interval.shifted(delta)) for e in self._entries])

    def scaled(self, factor: float) -> "Timeline":
        """Scale every placement about the timeline origin (time 0)."""
        if factor <= 0:
            raise TemporalError(f"timeline scale factor must be positive, got {factor}")
        return Timeline([
            TimelineEntry(
                e.track,
                Interval(e.interval.start * factor, e.interval.duration * factor),
            )
            for e in self._entries
        ])

    # -- Fig. 1 reproduction -----------------------------------------------
    def render_ascii(self, width: int = 60) -> str:
        """Render the timeline diagram as ASCII art (regenerates Fig. 1).

        Each track is one row; its active span is drawn as a bar of ``=``
        between its start and end columns, on an axis covering the whole
        timeline span.
        """
        span = self.span()
        total = span.duration.seconds or 1.0
        label_width = max(len(e.track) for e in self._entries) + 2
        lines = []
        for entry in self._entries:
            lo = int((entry.start - span.start).seconds / total * (width - 1))
            hi = int((entry.end - span.start).seconds / total * (width - 1))
            hi = max(hi, lo + 1)
            bar = " " * lo + "=" * (hi - lo)
            lines.append(f"{entry.track:<{label_width}}|{bar:<{width}}|")
        axis_lo = f"{span.start.seconds:g}s"
        axis_hi = f"{span.end.seconds:g}s"
        axis = f"{'':<{label_width}} {axis_lo}{' ' * max(1, width - len(axis_lo) - len(axis_hi))}{axis_hi}"
        lines.append(axis)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Timeline({len(self._entries)} tracks, span={self.span()!r})" if self._entries \
            else "Timeline(empty)"
