"""The class-level ``tcomp`` construct.

The paper's Newscast example::

    class Newscast {
        ...
        tcomp clip {
            VideoValue      videoTrack
            AudioValue      englishTrack
            AudioValue      frenchTrack
            TextStreamValue subtitleTrack
        }
    }

A :class:`TCompSpec` declares the track names and the media type each
track's values must carry (kind-level wildcard types accepted), plus an
optional quality factor per track ("Quality factors are optional in class
definitions. If absent, stored values can be of varying quality.").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import SchemaError, TemporalError
from repro.quality.factors import QualityFactor
from repro.values.base import MediaValue
from repro.values.mediatype import MediaType


@dataclass(frozen=True, slots=True)
class TrackSpec:
    """One track declaration inside a ``tcomp``."""

    name: str
    media_type: MediaType
    quality: Optional[QualityFactor] = None

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SchemaError(f"track name {self.name!r} is not a valid identifier")

    def accepts_value(self, value: MediaValue) -> bool:
        return self.media_type.accepts(value.media_type)


@dataclass(frozen=True)
class TCompSpec:
    """A named group of temporally correlated track declarations."""

    name: str
    tracks: Tuple[TrackSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SchemaError(f"tcomp name {self.name!r} is not a valid identifier")
        if not self.tracks:
            raise SchemaError(f"tcomp {self.name!r} declares no tracks")
        names = [t.name for t in self.tracks]
        if len(set(names)) != len(names):
            raise SchemaError(f"tcomp {self.name!r} has duplicate track names")

    @property
    def track_names(self) -> Tuple[str, ...]:
        return tuple(t.name for t in self.tracks)

    def track(self, name: str) -> TrackSpec:
        for spec in self.tracks:
            if spec.name == name:
                return spec
        raise SchemaError(f"tcomp {self.name!r} has no track {name!r}")

    def validate_values(self, values: Dict[str, MediaValue]) -> None:
        """Check a full track->value assignment against this spec.

        Every declared track must be present and type-correct; unknown
        track names are rejected.
        """
        unknown = set(values) - set(self.track_names)
        if unknown:
            raise SchemaError(
                f"tcomp {self.name!r}: unknown tracks {sorted(unknown)}"
            )
        missing = set(self.track_names) - set(values)
        if missing:
            raise TemporalError(
                f"tcomp {self.name!r}: missing values for tracks {sorted(missing)}"
            )
        for name, value in values.items():
            spec = self.track(name)
            if not spec.accepts_value(value):
                raise SchemaError(
                    f"track {name!r} requires {spec.media_type.name}, "
                    f"got {value.media_type.name}"
                )
