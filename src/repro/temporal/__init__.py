"""Temporal composition (paper §4.1, Fig. 1).

"The audio track and video track are temporally correlated, this
correlation is specified using temporal composition. ... Within a class
definition, temporally correlated attributes are grouped using a 'tcomp'
construct. ... Correlations between the components are specified, on a
per-instance basis, by a timeline diagram."

* :class:`TrackSpec` / :class:`TCompSpec` — the class-level ``tcomp``
  construct (track names + media types + optional quality factors);
* :class:`Timeline` — the per-instance timeline diagram: each track's
  (start, duration) placement, with the ASCII rendering that regenerates
  Fig. 1;
* :class:`TemporalComposite` — a set of tracks bound to AV values and
  positioned by a timeline; scale/translate distribute over all tracks.
"""

from repro.temporal.spec import TCompSpec, TrackSpec
from repro.temporal.timeline import Timeline, TimelineEntry
from repro.temporal.composite import TemporalComposite

__all__ = [
    "TrackSpec",
    "TCompSpec",
    "Timeline",
    "TimelineEntry",
    "TemporalComposite",
]
