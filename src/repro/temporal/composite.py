"""Temporally composed AV values.

A :class:`TemporalComposite` binds the tracks declared by a
:class:`~repro.temporal.TCompSpec` to concrete AV values and positions
them on a :class:`~repro.temporal.Timeline`.  It is itself presentable:
``duration`` is the timeline span, ``scale``/``translate`` distribute over
every track (preserving correlations), and ``active_tracks`` drives the
composite activities that "maintain the synchronization of [their]
component activities".
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.avtime import Interval, WorldTime
from repro.errors import TemporalError
from repro.temporal.spec import TCompSpec
from repro.temporal.timeline import Timeline, TimelineEntry
from repro.values.base import MediaValue


class TemporalComposite:
    """Tracks bound to values, correlated by a timeline.

    Parameters
    ----------
    spec:
        The class-level ``tcomp`` declaration.
    values:
        Full mapping from track name to AV value (validated against the
        spec — every track present, types compatible).
    timeline:
        Optional explicit timeline.  When omitted, each track is placed at
        its value's own (start, duration) — the common authoring case
        where values were already positioned with ``translate``.
    """

    def __init__(self, spec: TCompSpec, values: Dict[str, MediaValue],
                 timeline: Optional[Timeline] = None) -> None:
        spec.validate_values(values)
        self.spec = spec
        self._values = dict(values)
        if timeline is None:
            timeline = Timeline([
                TimelineEntry(name, values[name].interval) for name in spec.track_names
            ])
        else:
            unknown = set(timeline.tracks) - set(spec.track_names)
            if unknown:
                raise TemporalError(
                    f"timeline places unknown tracks {sorted(unknown)}"
                )
            missing = set(spec.track_names) - set(timeline.tracks)
            if missing:
                raise TemporalError(
                    f"timeline does not place tracks {sorted(missing)}"
                )
        self.timeline = timeline

    # -- access -------------------------------------------------------------
    @property
    def track_names(self) -> Tuple[str, ...]:
        return self.spec.track_names

    def value(self, track: str) -> MediaValue:
        try:
            return self._values[track]
        except KeyError:
            raise TemporalError(f"composite has no track {track!r}") from None

    def __getattr__(self, name: str) -> MediaValue:
        # Attribute-style track access, e.g. clip.videoTrack (paper §4.3).
        values = self.__dict__.get("_values")
        if values is not None and name in values:
            return values[name]
        raise AttributeError(name)

    def __iter__(self) -> Iterator[Tuple[str, MediaValue]]:
        return iter(self._values.items())

    # -- temporal interface --------------------------------------------------
    @property
    def interval(self) -> Interval:
        return self.timeline.span()

    @property
    def start(self) -> WorldTime:
        return self.interval.start

    @property
    def duration(self) -> WorldTime:
        return self.timeline.duration

    def active_tracks(self, when: WorldTime) -> List[str]:
        """Names of tracks presented at world time ``when``."""
        return [e.track for e in self.timeline.active_at(when)]

    def translate(self, delta: WorldTime) -> "TemporalComposite":
        """Shift the whole composite; correlations are preserved."""
        values = {name: value.translate(delta) for name, value in self._values.items()}
        return TemporalComposite(self.spec, values, self.timeline.shifted(delta))

    def scale(self, factor: float) -> "TemporalComposite":
        """Stretch the whole composite about world time 0."""
        values = {}
        for name, value in self._values.items():
            scaled = value.scale(factor)
            # Scaling about the origin also scales each value's start.
            values[name] = scaled.translate(value.start * factor - scaled.start)
        return TemporalComposite(self.spec, values, self.timeline.scaled(factor))

    def validate_alignment(self, tolerance: WorldTime = WorldTime(1e-9)) -> None:
        """Check each value's own interval matches its timeline placement.

        Authoring tools may position values independently of the timeline;
        before playback the two must agree or the composite activities
        would present elements at the wrong world times.
        """
        for entry in self.timeline:
            value = self._values[entry.track]
            start_skew = abs(value.start - entry.start)
            duration_skew = abs(value.duration - entry.interval.duration)
            if start_skew > tolerance or duration_skew > tolerance:
                raise TemporalError(
                    f"track {entry.track!r}: value interval {value.interval!r} "
                    f"does not match timeline placement {entry.interval!r}"
                )

    def __repr__(self) -> str:
        return (
            f"TemporalComposite({self.spec.name!r}, tracks={list(self.track_names)}, "
            f"duration={self.duration.seconds:g}s)"
        )
