"""The composed broadcast-day soak scenario.

``day`` runs a whole broadcast day against one shared substrate: a
4-node R=2 storage cluster behind a 2-edge cache tier, with live
newscast viewers (paced INTERACTIVE reads of the news asset), VOD
Zipf traffic through the cache, editing batches (BACKGROUND full-asset
cluster reads with bounded retries) and overnight maintenance (catalog
version bumps) — all drawn up front from the seed by
:func:`~repro.soak.phases.build_timeline` — while the full
``repro.watch`` stack supervises on a 50 ms virtual cadence and a
seeded chaos plan (:func:`~repro.soak.chaos.sample_chaos`) kills
nodes and edges under it.

Conventions match every other scenario registry: fresh simulator in
the caller's ambient observability scope, fully determined by the
arguments, virtual time only, flat dict of headline facts.  Two knobs
exist for the search harness:

* ``fault_plan`` overrides the sampled chaos plan — the ddmin probe
  hook.  The workload timeline never sees the plan, so every probe
  replays byte-identical traffic.
* ``plant_leak`` arms the seeded bug: when the chaos schedule has
  ``node-1`` and ``edge-0`` down *simultaneously*, the failover path
  on the surviving edge starts leaking its released reservations
  (``debug_leak_releases``) — the reservation-conservation invariant
  breaches shortly after.  The minimal failing schedule is exactly
  the two overlapping outages, which is what the CI search probe
  asserts ddmin recovers.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence

from repro.admission.controller import Priority
from repro.cluster.scenarios import Blob, _build_cluster
from repro.errors import (
    AdmissionError,
    CacheError,
    ClusterError,
    FaultError,
    InvariantBreachError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.sim import Delay, Simulator
from repro.soak.chaos import sample_chaos
from repro.soak.phases import (
    ELEMENT_BITS,
    MAX_LIVE_ELEMENTS,
    PERIOD_S,
    VOD_ELEMENTS,
    PhaseSpec,
    build_timeline,
    default_day,
    timeline_sha256,
)
from repro.watch.slo import default_slos
from repro.watch.watchdog import Watchdog

NODES = 4
EDGES = 2
CATALOG = 10
STREAM_BPS = ELEMENT_BITS / PERIOD_S
#: leaked-failover watcher cadence and the victims it watches for.
LEAK_POLL_S = 0.025
LEAK_NODE = "node-1"
LEAK_EDGE = "edge-0"


def _resolve_phases(phases: Optional[Sequence[PhaseSpec]],
                    scale: float) -> tuple:
    specs = tuple(phases) if phases else default_day()
    if scale != 1.0:
        specs = tuple(spec.scaled(scale) for spec in specs)
    return specs


def plan_sha256(plan: FaultPlan) -> str:
    """Digest of a fault plan's full schedule — the chaos fact."""
    return hashlib.sha256(
        json.dumps(plan.to_dict(), sort_keys=True).encode()).hexdigest()


def day_chaos_plan(seed: int = 0, chaos_seed: Optional[int] = None,
                   phases: Optional[Sequence[PhaseSpec]] = None,
                   scale: float = 1.0,
                   profile: str = "gentle") -> FaultPlan:
    """The chaos plan ``day`` would sample for these arguments.

    Chaos search re-derives the schedule it is minimizing from here —
    the target names (nodes, edges, edge NICs, edit batches) are fixed
    by the scenario's topology and the seeded timeline, never by run
    state.
    """
    specs = _resolve_phases(phases, scale)
    horizon_s = sum(spec.duration_s for spec in specs)
    events = build_timeline(specs, seed, catalog_size=CATALOG)
    edits = [f"edit-{e.ordinal}" for e in events if e.kind == "edit"]
    return sample_chaos(
        chaos_seed if chaos_seed is not None else seed, horizon_s,
        nodes=[f"node-{i}" for i in range(NODES)],
        edges=[f"edge-{i}" for i in range(EDGES)],
        channels=[f"edge-{i}.nic" for i in range(EDGES)],
        processes=edits, profile=profile)


def day(seed: int = 0, phases: Optional[Sequence[PhaseSpec]] = None,
        scale: float = 1.0, chaos: bool = True,
        chaos_seed: Optional[int] = None, profile: str = "gentle",
        fault_plan: Optional[FaultPlan] = None, plant_leak: bool = False,
        bundle_dir: Optional[str] = None) -> Dict[str, object]:
    """One supervised broadcast day; returns the flat facts dict."""
    specs = _resolve_phases(phases, scale)
    horizon_s = sum(spec.duration_s for spec in specs)
    events = build_timeline(specs, seed, catalog_size=CATALOG)

    sim = Simulator()
    cluster = _build_cluster(sim, NODES, replication=2)
    catalog = [Blob(VOD_ELEMENTS * ELEMENT_BITS // 8, STREAM_BPS)
               for _ in range(CATALOG)]
    news = Blob((MAX_LIVE_ELEMENTS + 8) * ELEMENT_BITS // 8, STREAM_BPS)
    for value in catalog:
        cluster.place(value)
    cluster.place(news, key="newscast")
    cluster.repair.start()
    from repro.cache.tier import CacheTier
    tier = CacheTier(sim, cluster, edges=EDGES,
                     edge_bandwidth_bps=320_000_000.0,
                     hot_window_s=0.5, hot_threshold=40)

    if fault_plan is not None:
        plan = fault_plan
    elif chaos:
        plan = day_chaos_plan(seed, chaos_seed, specs, 1.0, profile)
    else:
        plan = FaultPlan(seed=seed)

    vod = {"admitted": 0, "failed": 0, "violations": 0}
    live = {"elements": 0, "violations": 0, "failed": 0}
    edits = {"done": 0, "failed": 0, "retries": 0}
    interactive = {"admitted": 0, "violations": 0}
    bumps = [0]
    digests: List[str] = []
    read_errors = (AdmissionError, FaultError, ClusterError, CacheError)

    def paced_read(stream, elements: int, counters, is_interactive: bool):
        """Elements 1..n-1 paced one period apart; element 0 is startup."""
        try:
            yield from stream.read(ELEMENT_BITS)
        except read_errors:
            counters["failed"] += 1
            return
        if counters is vod:
            counters["admitted"] += 1
        if is_interactive:
            interactive["admitted"] += 1
        start = sim.now.seconds
        for n in range(1, elements):
            ideal = start + (n - 1) * PERIOD_S
            now = sim.now.seconds
            if now < ideal:
                yield Delay(ideal - now)
            try:
                yield from stream.read(ELEMENT_BITS,
                                       deadline=ideal + PERIOD_S)
            except read_errors:
                counters["failed"] += 1
                return
            if counters is live:
                counters["elements"] += 1
            if sim.now.seconds > ideal + PERIOD_S + 1e-9:
                counters["violations"] += 1
                if is_interactive:
                    interactive["violations"] += 1
        digests.append(stream.digest)

    def vod_session(event):
        yield Delay(event.at)
        priority = Priority.INTERACTIVE if event.interactive \
            else Priority.STANDARD
        stream = tier.open_read(catalog[event.asset], STREAM_BPS,
                                label=f"vod-{event.ordinal}",
                                priority=priority, queue_timeout_s=1.0)
        with stream:
            yield from paced_read(stream, event.elements, vod,
                                  event.interactive)

    def live_viewer(event):
        yield Delay(event.at)
        stream = tier.open_read(news, STREAM_BPS,
                                label=f"live-{event.ordinal}",
                                priority=Priority.INTERACTIVE,
                                queue_timeout_s=1.0)
        with stream:
            yield from paced_read(stream, event.elements, live, True)

    def edit_job(event):
        # A transcode batch: unpaced full-asset read straight off the
        # cluster at BACKGROUND — preemptible by the crowd, retried a
        # bounded number of times when a fault lands on it.
        yield Delay(event.at)
        for attempt in range(3):
            stream = cluster.open_read(
                catalog[event.asset], 2 * STREAM_BPS,
                label=f"edit-{event.ordinal}", priority=Priority.BACKGROUND,
                queue_timeout_s=2.0, min_fraction=0.25)
            try:
                with stream:
                    for _ in range(event.elements):
                        yield from stream.read(ELEMENT_BITS)
                edits["done"] += 1
                return
            except read_errors:
                if attempt == 2:
                    edits["failed"] += 1
                    return
                edits["retries"] += 1
                yield Delay(0.1)

    def maintenance_bump(event):
        yield Delay(event.at)
        cluster.bump_version(catalog[event.asset])
        bumps[0] += 1

    def leak_watcher():
        # The planted failover bug: if chaos ever has the primary VOD
        # node and edge-0 down at once, the re-attach path on the
        # surviving edge stops unregistering released reservations.
        node = cluster.node(LEAK_NODE)
        while sim.now.seconds + LEAK_POLL_S <= horizon_s:
            yield Delay(LEAK_POLL_S)
            if not node.live and not tier.edge(LEAK_EDGE).live:
                tier.edge("edge-1").nic.debug_leak_releases = True
                return

    dog = Watchdog(sim, slos=default_slos(startup_p95_s=0.75,
                                          nodes_floor=1.0,
                                          cache_hit_floor=0.5),
                   bundle_dir=bundle_dir)
    dog.arm(cluster=cluster, tier=tier, channels_complete=True)
    dog.start(cadence_s=0.05, horizon_s=horizon_s + 1.0)

    spawners = {"vod": vod_session, "live": live_viewer,
                "edit": edit_job, "bump": maintenance_bump}
    procs = {}
    kinds = {"vod": 0, "live": 0, "edit": 0, "bump": 0}
    for event in events:
        kinds[event.kind] += 1
        name = f"{event.kind}-{event.ordinal}"
        procs[name] = sim.spawn(spawners[event.kind](event), name=name)
    if plant_leak:
        sim.spawn(leak_watcher(), name="leak-watcher")
    injector = FaultInjector(sim, plan).arm(
        nodes=cluster.nodes, edges=tier.edges,
        channels=[edge.nic for edge in tier.edges], processes=procs)

    breach: Optional[InvariantBreachError] = None
    crash: Optional[Exception] = None
    try:
        end = sim.run()
    except InvariantBreachError as exc:
        breach = exc
        end = sim.now
    except Exception as exc:  # noqa: BLE001 - soak records crashes as facts
        crash = exc
        end = sim.now

    if breach is None and crash is None:
        tier.shutdown()
        cluster.shutdown()
        sim.run()
        report = dog.teardown(strict=False)
    else:
        report = dog.engine.report()

    metrics = sim.obs.metrics
    metrics.flush()

    def count(name: str) -> int:
        instrument = metrics.get(name)
        return int(getattr(instrument, "value", 0) or 0)

    lookups = count("cache.lookups")
    first_breach = dog.monitor.breaches[0] if dog.monitor.breaches else None
    folded = hashlib.sha256()
    for digest in sorted(digests):
        folded.update(digest.encode())
    return {
        "phases": len(specs),
        "phase_names": ",".join(spec.name for spec in specs),
        "horizon_s": round(horizon_s, 3),
        "timeline_events": len(events),
        "timeline_sha256": timeline_sha256(events),
        "fault_schedule_sha256": plan_sha256(plan),
        "faults_planned": len(plan),
        "faults_injected": injector.injected,
        "vod_sessions": kinds["vod"],
        "vod_admitted": vod["admitted"],
        "vod_failed": vod["failed"],
        "live_viewers": kinds["live"],
        "live_elements": live["elements"],
        "live_failed": live["failed"],
        "edit_jobs": kinds["edit"],
        "edit_done": edits["done"],
        "edit_retries": edits["retries"],
        "edit_failed": edits["failed"],
        "version_bumps": bumps[0],
        "qos_violations": vod["violations"] + live["violations"],
        "interactive_admitted": interactive["admitted"],
        "interactive_violations": interactive["violations"],
        "hit_ratio": (round(count("cache.hits") / lookups, 3)
                      if lookups else 0.0),
        "passthrough_reads": count("cache.passthrough"),
        "failovers": cluster.failovers,
        "repairs": cluster.repair.repairs,
        "node_deaths": sum(node.deaths for node in cluster.nodes),
        "edge_deaths": sum(edge.deaths for edge in tier.edges),
        "invariant_checks": dog.monitor.checks,
        "invariant_breaches": len(dog.monitor.breaches),
        "breach_invariant": (first_breach.invariant
                             if first_breach else "none"),
        "breach_component": (first_breach.component
                             if first_breach else "none"),
        "unhandled_failure": (type(crash).__name__
                              if crash is not None else "none"),
        "slos_violated": ",".join(report["violated"]) or "none",
        "worst_burn": (max(report["burn_by_class"].values())
                       if report["burn_by_class"] else 0.0),
        "bundles_written": len(dog.bundle_paths),
        "digest": folded.hexdigest(),
        "virtual_seconds": round(end.seconds, 3),
        "stranded_processes": sim.live_processes,
    }


SCENARIOS: Dict[str, object] = {
    "day": day,
}


def summary_line(name: str, facts: Dict[str, object]) -> str:
    """One deterministic line per run, for rerun diffing in CI."""
    keys: List[str] = sorted(facts)
    body = " ".join(f"{key}={facts[key]}" for key in keys)
    return f"soak {name}: {body}"
