"""Seeded chaos: sampling fault plans against the broadcast day.

A :class:`ChaosProfile` says how much adversity to draw — how many
storage-node and edge-cache outages, whether any edge NIC carries a
loss model, whether a batch process gets crashed.  :func:`sample_chaos`
turns ``(seed, horizon, names, profile)`` into a concrete, *validated*
:class:`~repro.faults.plan.FaultPlan`:

* every outage window is restored by 80% of the horizon, so repair
  and boost teardown have room to leave replication whole before the
  teardown audit;
* windows on one target never overlap (placement tracks the last end
  per target), so the sampled plan passes
  :meth:`~repro.faults.plan.FaultPlan.validate` by construction;
* per-kind sub-plans are combined with
  :meth:`~repro.faults.plan.FaultPlan.merge`, so a contradictory
  profile would be rejected at sample time, not arm time.

The same arguments always produce the same plan — chaos search leans
on that to re-derive the schedule it is minimizing without threading
plan objects through scenario facts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.errors import SimulationError
from repro.faults.plan import FaultPlan


@dataclass(frozen=True, slots=True)
class ChaosProfile:
    """How much adversity one chaos draw contains."""

    name: str
    node_outages: int = 0
    edge_outages: int = 0
    loss_channels: int = 0
    loss_rate: float = 0.0
    process_crashes: int = 0
    #: outage duration bounds, as fractions of the horizon.
    outage_min: float = 0.06
    outage_max: float = 0.22
    #: at most one *node* down at a time.  At R=2, two concurrent node
    #: outages can outrun repair and leave a shard with zero live
    #: replicas — a replication breach by design, not a survivable
    #: fault.  Edge outages may still overlap anything (edges hold no
    #: authoritative data; the cost is hit ratio).
    serialize_nodes: bool = True


PROFILES: Dict[str, ChaosProfile] = {
    # Gentle is the soak default and must be survivable: outages only,
    # all restored, one node at a time, no loss, no crashes.  A clean
    # day under gentle chaos is the acceptance gate.
    "gentle": ChaosProfile("gentle", node_outages=2, edge_outages=2),
    # Aggressive piles on: concurrent node outages, a lossy edge NIC,
    # and one crashed batch process.  Used to stress the search
    # harness, not gated clean.
    "aggressive": ChaosProfile("aggressive", node_outages=3, edge_outages=2,
                               loss_channels=1, loss_rate=0.02,
                               process_crashes=1, serialize_nodes=False),
}


def _sample_outages(plan: FaultPlan, rng: random.Random, kind: str,
                    targets: Sequence[str], count: int, horizon_s: float,
                    profile: ChaosProfile, serialize: bool = False) -> None:
    """Place ``count`` non-overlapping outage windows across targets.

    With ``serialize`` the windows are disjoint across *all* targets
    (one component of this kind down at a time), not just per target.
    """
    last_end: Dict[str, float] = {}
    add = plan.node_outage if kind == "node-outage" else plan.edge_cache_outage
    for _ in range(count):
        target = targets[rng.randrange(len(targets))]
        duration = rng.uniform(profile.outage_min, profile.outage_max) \
            * horizon_s
        floor = max(last_end.values(), default=0.0) if serialize \
            else last_end.get(target, 0.0)
        start_lo = max(0.1 * horizon_s, floor)
        start_hi = 0.8 * horizon_s - duration
        if start_hi <= start_lo:
            # No room left on this target this draw; skip rather than
            # overlap.  Deterministic: the rng stream already advanced.
            continue
        at = rng.uniform(start_lo, start_hi)
        add(target, round(at, 6), round(duration, 6))
        last_end[target] = at + duration + 0.02 * horizon_s


def sample_chaos(seed: int, horizon_s: float,
                 nodes: Sequence[str], edges: Sequence[str],
                 channels: Sequence[str] = (),
                 processes: Sequence[str] = (),
                 profile: str | ChaosProfile = "gentle") -> FaultPlan:
    """Draw one validated fault plan from ``Random(seed)``."""
    if isinstance(profile, str):
        try:
            prof = PROFILES[profile]
        except KeyError:
            raise SimulationError(
                f"unknown chaos profile {profile!r} "
                f"(one of: {sorted(PROFILES)})") from None
    else:
        prof = profile
    if horizon_s <= 0:
        raise SimulationError(f"chaos horizon must be positive, got {horizon_s}")
    rng = random.Random(f"soak-chaos:{seed}:{prof.name}")
    node_plan = FaultPlan(seed=seed)
    if nodes and prof.node_outages:
        _sample_outages(node_plan, rng, "node-outage", list(nodes),
                        prof.node_outages, horizon_s, prof,
                        serialize=prof.serialize_nodes)
    edge_plan = FaultPlan(seed=seed)
    if edges and prof.edge_outages:
        _sample_outages(edge_plan, rng, "edge-cache-outage", list(edges),
                        prof.edge_outages, horizon_s, prof)
    extra = FaultPlan(seed=seed)
    for name in list(channels)[:prof.loss_channels]:
        extra.channel_loss(name, rate=prof.loss_rate,
                           jitter_s=round(rng.uniform(0.0, 0.001), 6))
    if processes and prof.process_crashes:
        victims = list(processes)
        for _ in range(prof.process_crashes):
            target = victims[rng.randrange(len(victims))]
            extra.process_crash(target,
                                round(rng.uniform(0.2, 0.7) * horizon_s, 6))
    return FaultPlan.merge(node_plan, edge_plan, extra, seed=seed)
