"""Chaos search: sweep perturbation seeds, minimize what breaks.

``chaos_search`` runs the broadcast day under a sequence of chaos
seeds (each a full :func:`~repro.soak.chaos.sample_chaos` draw) and
watches for a **failure signature**: an invariant breach, an
unhandled scenario exception, or any QoS violation among admitted
interactive sessions.  On the first failing seed it delta-debugs the
fault schedule (:func:`~repro.soak.ddmin.ddmin` over the plan's
:class:`~repro.faults.plan.Fault` entries, one deterministic re-run
per probe), then **replays** the minimized plan with postmortem
bundles armed and writes the artifacts:

* ``minimized-plan.json`` — the minimal failing
  :meth:`~repro.faults.plan.FaultPlan.to_dict`, replayable via
  ``FaultPlan.from_dict``;
* ``search-report.json`` — seeds tried, ddmin probe economy, and the
  replay's breach facts;
* ``postmortem-*.json`` — the watchdog's bundle from the replay.

Every run gets a fresh observability scope, so probe N's counters
never leak into probe N+1 — which is also what makes the sweep's
facts byte-identical across re-runs of the same arguments.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.faults.plan import FaultPlan
from repro.obs import scoped
from repro.soak.ddmin import ddmin
from repro.soak.phases import PhaseSpec
from repro.soak.scenarios import day, day_chaos_plan, plan_sha256

#: a chaos seed whose gentle draw overlaps a ``node-1`` outage with an
#: ``edge-0`` outage — with ``plant_leak`` that is the 2-fault core the
#: CI search probe must recover.  Found by sweep, pinned for CI.
SEARCH_DEMO_SEED = 4


def _failing(facts: Dict[str, object]) -> bool:
    """The search's failure signature over one run's facts."""
    return (int(facts["invariant_breaches"]) > 0
            or facts["unhandled_failure"] != "none"
            or int(facts["interactive_violations"]) > 0)


def chaos_search(chaos_seeds: Iterable[int] = range(32), seed: int = 0,
                 phases: Optional[Sequence[PhaseSpec]] = None,
                 scale: float = 1.0, profile: str = "gentle",
                 plant_leak: bool = False,
                 out_dir: Optional[str] = None) -> Dict[str, object]:
    """Sweep chaos seeds; minimize and replay the first failure found."""

    def run(plan: FaultPlan, bundle_dir: Optional[str] = None):
        with scoped(tracing=False):
            return day(seed=seed, phases=phases, scale=scale,
                       fault_plan=plan, plant_leak=plant_leak,
                       bundle_dir=bundle_dir)

    tried: List[int] = []
    failing_seed: Optional[int] = None
    plan: Optional[FaultPlan] = None
    for chaos_seed in chaos_seeds:
        tried.append(chaos_seed)
        plan = day_chaos_plan(seed, chaos_seed, phases=phases, scale=scale,
                              profile=profile)
        facts = run(plan)
        if _failing(facts):
            failing_seed = chaos_seed
            break
    if failing_seed is None:
        return {
            "failing_seed": "none",
            "seeds_tried": len(tried),
            "schedule_len": 0,
            "minimized_len": 0,
            "ddmin_probes": 0,
            "replay_failing": False,
        }

    minimal, stats = ddmin(
        list(plan.faults),
        lambda faults: _failing(
            run(FaultPlan(seed=plan.seed, faults=list(faults)).sort())))
    minimized = FaultPlan(seed=plan.seed, faults=list(minimal)).sort()
    replay = run(minimized, bundle_dir=out_dir)

    report: Dict[str, object] = {
        "failing_seed": failing_seed,
        "seeds_tried": len(tried),
        "schedule_len": len(plan),
        "schedule_sha256": plan_sha256(plan),
        "minimized_len": len(minimized),
        "minimized_sha256": plan_sha256(minimized),
        "minimized_schedule": "; ".join(f.describe()
                                        for f in minimized.faults),
        "ddmin_probes": stats["probes"],
        "ddmin_passes": stats["passes"],
        "ddmin_cache_hits": stats["cache_hits"],
        "max_pass_probes": stats["max_pass_probes"],
        "probe_bound": 2 * len(plan),
        "replay_failing": _failing(replay),
        "replay_breach_invariant": replay["breach_invariant"],
        "replay_breach_component": replay["breach_component"],
        "replay_bundles": replay["bundles_written"],
    }
    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        plan_path = out / "minimized-plan.json"
        plan_path.write_text(
            json.dumps(minimized.to_dict(), sort_keys=True, indent=1) + "\n")
        report_path = out / "search-report.json"
        report_path.write_text(
            json.dumps(report, sort_keys=True, indent=1) + "\n")
        report["plan_path"] = str(plan_path)
        report["report_path"] = str(report_path)
    return report
