"""Delta debugging (ddmin) over fault schedules.

Zeller's classic ddmin: given a failing list of items and a predicate,
find a **1-minimal** failing subset — removing any single remaining
item makes the failure disappear.  Each probe here is a full
deterministic re-run of the soak scenario under a candidate fault
schedule, so the algorithm's probe economy matters and is reported:

* per granularity pass the algorithm tests at most ``n`` subsets and
  ``n`` complements — ``2n <= 2 * |items|`` probes;
* results are cached by candidate (the schedule is a tuple of hashable
  :class:`~repro.faults.plan.Fault` entries), so a repeated candidate
  never re-runs the scenario.

The item *order* inside candidates is preserved from the input, which
keeps the minimized schedule sorted the way the plan was — and makes
the returned subset byte-stable across runs (the determinism test
asserts exactly that).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import SimulationError

Stats = Dict[str, int]


def _chunks(items: Tuple, n: int) -> List[Tuple]:
    """Split into ``n`` contiguous, non-empty, near-equal chunks."""
    size, remainder = divmod(len(items), n)
    out: List[Tuple] = []
    start = 0
    for i in range(n):
        end = start + size + (1 if i < remainder else 0)
        if end > start:
            out.append(items[start:end])
        start = end
    return out


def ddmin(items: Sequence, failing: Callable[[List], bool],
          ) -> Tuple[List, Stats]:
    """Minimize ``items`` to a 1-minimal subset where ``failing`` holds.

    Returns ``(minimal_items, stats)`` with ``stats`` counting actual
    re-runs (``probes``), cache hits, granularity passes, and the
    largest per-pass probe count (``max_pass_probes`` — the acceptance
    bound is ``< 2 * len(items)``).  Raises
    :class:`~repro.errors.SimulationError` if the full set does not
    fail: minimizing a passing schedule is a caller bug, not a result.
    """
    stats: Stats = {"probes": 0, "cache_hits": 0, "passes": 0,
                    "max_pass_probes": 0}
    cache: Dict[Tuple, bool] = {}
    pass_probes = [0]

    def test(candidate: Tuple) -> bool:
        if candidate in cache:
            stats["cache_hits"] += 1
            return cache[candidate]
        stats["probes"] += 1
        pass_probes[0] += 1
        verdict = bool(failing(list(candidate)))
        cache[candidate] = verdict
        return verdict

    current = tuple(items)
    if not current:
        raise SimulationError("ddmin: cannot minimize an empty schedule")
    if not test(current):
        raise SimulationError(
            "ddmin: the full schedule does not fail — nothing to minimize")

    n = 2
    while len(current) >= 2:
        stats["passes"] += 1
        pass_probes[0] = 0
        chunks = _chunks(current, min(n, len(current)))
        reduced = False
        for chunk in chunks:
            if test(chunk):
                current, n, reduced = chunk, 2, True
                break
        if not reduced and len(chunks) > 2:
            for i in range(len(chunks)):
                complement = tuple(item for j, chunk in enumerate(chunks)
                                   if j != i for item in chunk)
                if test(complement):
                    current, reduced = complement, True
                    n = max(n - 1, 2)
                    break
        stats["max_pass_probes"] = max(stats["max_pass_probes"],
                                       pass_probes[0])
        if not reduced:
            if n >= len(current):
                break
            n = min(len(current), 2 * n)
    return list(current), stats
