"""repro.soak — the broadcast-day soak harness.

The paper's AV database is meant to run *continuously*: live newscast
capture, VOD playback and editing all share one storage/session
substrate.  Every other scenario registry exercises a single burst;
this package composes them into a long-horizon **broadcast day** —
morning ramp, midday editing, prime-time crowd, overnight maintenance
— supervised end-to-end by the ``repro.watch`` stack, with a seeded
chaos layer sampling :class:`~repro.faults.plan.FaultPlan` schedules
against it and a chaos-*search* mode that sweeps perturbation seeds
and delta-debugs any failing fault schedule down to a minimal,
replayable core.

* :mod:`repro.soak.phases` — declarative :class:`PhaseSpec` phases and
  the seeded workload timeline (pure data, drawn up front);
* :mod:`repro.soak.chaos` — :class:`ChaosProfile` catalogs and seeded
  :func:`sample_chaos` fault-plan sampling;
* :mod:`repro.soak.ddmin` — delta debugging over fault schedules;
* :mod:`repro.soak.scenarios` — the composed ``day`` scenario;
* :mod:`repro.soak.search` — seed sweep + minimization + artifacts.
"""

from repro.soak.chaos import PROFILES, ChaosProfile, sample_chaos
from repro.soak.ddmin import ddmin
from repro.soak.phases import (
    PhaseSpec,
    TimelineEvent,
    build_timeline,
    default_day,
    timeline_sha256,
)
from repro.soak.scenarios import SCENARIOS, day, day_chaos_plan, summary_line
from repro.soak.search import SEARCH_DEMO_SEED, chaos_search

__all__ = [
    "PhaseSpec", "TimelineEvent", "build_timeline", "default_day",
    "timeline_sha256",
    "ChaosProfile", "PROFILES", "sample_chaos",
    "ddmin",
    "day", "day_chaos_plan", "SCENARIOS", "summary_line",
    "chaos_search", "SEARCH_DEMO_SEED",
]
