"""Broadcast-day phases and the seeded workload timeline.

A :class:`PhaseSpec` declares one slice of the day — how many VOD
sessions arrive, how skewed their asset choice is, how many live
newscast viewers tune in, how many editing batches and maintenance
version bumps run — without saying *when* any individual event fires.
:func:`build_timeline` turns a sequence of phases plus a seed into the
concrete event list: every arrival time and asset choice is drawn up
front from one ``random.Random(seed)``, so the timeline is pure data,
sortable, hashable (:func:`timeline_sha256`) and — critically —
**independent of the fault schedule**.  A chaos-search probe that
swaps the fault plan replays the byte-identical workload.

Tests and CI run bounded slices by passing fewer phases or a
``scaled()`` copy; the full :func:`default_day` is ~10 virtual seconds
of mixed load.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

from repro.errors import SimulationError
from repro.synth.arrivals import uniform_arrival, zipf_pick, zipf_weights

#: element pacing shared with the cache/cluster scenarios: 240 kb per
#: element, one element per 40 ms — a 6 Mb/s stream.
ELEMENT_BITS = 240_000
PERIOD_S = 0.04

#: elements per VOD session (paced; element 0 is unpaced startup).
VOD_ELEMENTS = 6

#: a live viewer never outlasts its phase; the news asset is sized to
#: cover the longest phase with margin.
MAX_LIVE_ELEMENTS = 72


@dataclass(frozen=True, slots=True)
class PhaseSpec:
    """One declarative slice of the broadcast day."""

    name: str
    duration_s: float
    vod_sessions: int = 0
    interactive_share: float = 0.15
    viral_share: float = 0.3
    live_viewers: int = 0
    edit_jobs: int = 0
    maintenance_bumps: int = 0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise SimulationError(
                f"phase {self.name!r}: duration must be positive")
        for field_name in ("vod_sessions", "live_viewers", "edit_jobs",
                           "maintenance_bumps"):
            if getattr(self, field_name) < 0:
                raise SimulationError(
                    f"phase {self.name!r}: {field_name} must be >= 0")
        for field_name in ("interactive_share", "viral_share"):
            share = getattr(self, field_name)
            if not 0.0 <= share <= 1.0:
                raise SimulationError(
                    f"phase {self.name!r}: {field_name} must be in [0, 1]")

    def scaled(self, factor: float) -> "PhaseSpec":
        """A copy with session/job counts scaled (durations unchanged).

        Scaling counts instead of time keeps arrival *density* the
        knob: a 0.25x slice is the same day, thinner — fault windows
        sampled against the horizon still land where they would.
        Non-zero counts never scale below 1, so a phase keeps its
        character (a lone live viewer, one edit batch) at any factor.
        """
        if factor <= 0:
            raise SimulationError(f"scale factor must be positive, got {factor}")

        def scale(count: int) -> int:
            return max(1, int(count * factor)) if count else 0

        return replace(self,
                       vod_sessions=scale(self.vod_sessions),
                       live_viewers=scale(self.live_viewers),
                       edit_jobs=scale(self.edit_jobs),
                       maintenance_bumps=scale(self.maintenance_bumps))


def default_day() -> Tuple[PhaseSpec, ...]:
    """The stock broadcast day: ~10 virtual seconds, four regimes.

    Morning ramps VOD up with the breakfast newscast on air; midday is
    editing-heavy (transcode batches ride BACKGROUND); prime time is
    the flash crowd (viral share spikes, the evening newscast draws
    the most live viewers); overnight the floor drops and maintenance
    — catalog version bumps, i.e. re-ingests — runs against the
    stragglers.
    """
    return (
        PhaseSpec("morning-ramp", 2.5, vod_sessions=120,
                  interactive_share=0.2, viral_share=0.3,
                  live_viewers=4),
        PhaseSpec("midday-edit", 2.5, vod_sessions=100,
                  interactive_share=0.15, viral_share=0.3,
                  live_viewers=2, edit_jobs=4),
        PhaseSpec("prime-time", 3.0, vod_sessions=360,
                  interactive_share=0.25, viral_share=0.6,
                  live_viewers=6),
        PhaseSpec("overnight", 2.0, vod_sessions=40,
                  interactive_share=0.1, viral_share=0.2,
                  edit_jobs=2, maintenance_bumps=3),
    )


@dataclass(frozen=True, slots=True)
class TimelineEvent:
    """One scheduled workload event, pure data.

    ``kind`` is ``vod`` (a cached read session), ``live`` (a paced
    INTERACTIVE newscast viewer), ``edit`` (a BACKGROUND full-asset
    read batch) or ``bump`` (a maintenance version bump).  ``asset``
    indexes the VOD catalog; ``-1`` is the news asset.  ``ordinal``
    numbers events of one kind globally — it names the process.
    """

    at: float
    kind: str
    phase: str
    asset: int
    ordinal: int
    elements: int = 0
    interactive: bool = False

    def line(self) -> str:
        return (f"{self.at:.6f} {self.kind} phase={self.phase} "
                f"asset={self.asset} n={self.ordinal} "
                f"elements={self.elements} "
                f"interactive={int(self.interactive)}")


def build_timeline(phases: Sequence[PhaseSpec], seed: int,
                   catalog_size: int = 10) -> List[TimelineEvent]:
    """Draw the whole day's events from one seeded stream.

    Asset popularity within a phase is Zipf over the catalog with the
    phase's ``viral_share`` routed to asset 0; live viewers stagger in
    at the top of their phase and stream until it ends; edit batches
    land in the phase body; maintenance bumps split the phase evenly
    and only touch non-viral VOD assets (bumping the asset a crowd is
    glued to is a different experiment).
    """
    if catalog_size < 2:
        raise SimulationError("timeline needs a catalog of at least 2 assets")
    rng = random.Random(f"soak-timeline:{seed}")
    weights = zipf_weights(catalog_size)
    events: List[TimelineEvent] = []
    counts = {"vod": 0, "live": 0, "edit": 0, "bump": 0}

    def emit(at: float, kind: str, phase: str, asset: int,
             elements: int = 0, interactive: bool = False) -> None:
        events.append(TimelineEvent(round(at, 6), kind, phase, asset,
                                    counts[kind], elements, interactive))
        counts[kind] += 1

    offset = 0.0
    for spec in phases:
        for _ in range(spec.vod_sessions):
            arrival = uniform_arrival(rng, spec.duration_s, offset)
            asset = zipf_pick(rng, catalog_size, spec.viral_share, weights)
            emit(arrival, "vod", spec.name, asset, elements=VOD_ELEMENTS,
                 interactive=rng.random() < spec.interactive_share)
        for viewer in range(spec.live_viewers):
            stagger = 0.01 * viewer
            elements = min(MAX_LIVE_ELEMENTS,
                           int((spec.duration_s - stagger - 0.1) / PERIOD_S))
            if elements < 1:
                continue
            emit(offset + stagger, "live", spec.name, -1, elements=elements,
                 interactive=True)
        for _ in range(spec.edit_jobs):
            arrival = offset + rng.uniform(0.05, 0.8) * spec.duration_s
            emit(arrival, "edit", spec.name, rng.randrange(catalog_size),
                 elements=VOD_ELEMENTS)
        for bump in range(spec.maintenance_bumps):
            at = offset + (bump + 1) * spec.duration_s \
                / (spec.maintenance_bumps + 1)
            emit(at, "bump", spec.name, rng.randrange(1, catalog_size))
        offset += spec.duration_s
    events.sort(key=lambda e: (e.at, e.kind, e.ordinal))
    return events


def timeline_sha256(events: Sequence[TimelineEvent]) -> str:
    """Digest of the whole timeline — the determinism fact."""
    folded = hashlib.sha256()
    for event in events:
        folded.update(event.line().encode())
        folded.update(b"\n")
    return folded.hexdigest()
