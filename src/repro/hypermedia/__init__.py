"""Hypermedia layer for the corporate AV database (Scenario I).

"The video material is accessible through a hypermedia interface which
links, for example, the documents describing a project to the video of a
presentation by the project leader."

Links are first-class database objects: anchors in a source object point
at a target object (optionally a media attribute and a cue position), so
following a link can drop straight into playback at the right moment.
"""

from repro.hypermedia.links import Anchor, HypermediaBase, Link

__all__ = ["HypermediaBase", "Link", "Anchor"]
