"""Hypermedia links stored inside the object database.

:class:`HypermediaBase` manages a ``_HyperLink`` class in the host
database, so links participate in transactions, recovery and queries like
any object.  A link joins (source object, anchor text) to (target object
[, media attribute path [, cue world time]]).  Following a link returns a
:class:`Link` whose cue can be handed directly to
``MediaActivity.cue`` — the hypermedia jump into the middle of a video.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.avtime import WorldTime
from repro.db.database import Database
from repro.db.objects import OID
from repro.db.query import Q
from repro.db.schema import AttributeSpec, ClassDef
from repro.errors import DatabaseError


@dataclass(frozen=True, slots=True)
class Anchor:
    """A named location in a source object (e.g. a phrase in a document)."""

    text: str

    def __post_init__(self) -> None:
        if not self.text.strip():
            raise DatabaseError("anchor text must be non-empty")


@dataclass(frozen=True, slots=True)
class Link:
    """A resolved hypermedia link."""

    oid: OID  # the link object itself
    source: OID
    anchor: str
    target: OID
    media_path: Optional[str]  # e.g. "clip.videoTrack"
    cue_seconds: float

    @property
    def cue(self) -> WorldTime:
        return WorldTime(self.cue_seconds)


LINK_CLASS = "_HyperLink"


class HypermediaBase:
    """Link management over a host database."""

    def __init__(self, db: Database) -> None:
        self.db = db
        if LINK_CLASS not in db.schema:
            db.define_class(ClassDef(LINK_CLASS, attributes=[
                AttributeSpec("source", str, indexed=True),
                AttributeSpec("target", str, indexed=True),
                AttributeSpec("anchor", str),
                AttributeSpec("media_path", str),
                AttributeSpec("cue_seconds", float),
            ]))

    # -- authoring -----------------------------------------------------------
    def link(self, source: OID, anchor: Anchor | str, target: OID,
             media_path: Optional[str] = None,
             cue: WorldTime | float = 0.0) -> Link:
        """Create a link from an anchor in ``source`` to ``target``."""
        if not self.db.exists(source):
            raise DatabaseError(f"link source {source} does not exist")
        if not self.db.exists(target):
            raise DatabaseError(f"link target {target} does not exist")
        anchor_text = anchor.text if isinstance(anchor, Anchor) else str(anchor)
        cue_seconds = cue.seconds if isinstance(cue, WorldTime) else float(cue)
        if cue_seconds < 0:
            raise DatabaseError(f"link cue must be >= 0, got {cue_seconds}")
        oid = self.db.insert(
            LINK_CLASS,
            source=str(source), target=str(target), anchor=anchor_text,
            media_path=media_path or "", cue_seconds=cue_seconds,
        )
        return self._to_link(oid)

    def unlink(self, link: Link) -> None:
        self.db.delete(link.oid)

    # -- navigation ----------------------------------------------------------
    def links_from(self, source: OID) -> List[Link]:
        oids = self.db.select(LINK_CLASS, Q.eq("source", str(source)))
        return [self._to_link(o) for o in oids]

    def links_to(self, target: OID) -> List[Link]:
        """Back-links: what refers to this object."""
        oids = self.db.select(LINK_CLASS, Q.eq("target", str(target)))
        return [self._to_link(o) for o in oids]

    def follow(self, source: OID, anchor: Anchor | str) -> Link:
        """Resolve the link at ``anchor`` in ``source`` (first match)."""
        anchor_text = anchor.text if isinstance(anchor, Anchor) else str(anchor)
        matches = [l for l in self.links_from(source) if l.anchor == anchor_text]
        if not matches:
            raise DatabaseError(
                f"no link from {source} at anchor {anchor_text!r}"
            )
        return matches[0]

    def _to_link(self, oid: OID) -> Link:
        obj = self.db.get(oid)
        return Link(
            oid=oid,
            source=self._parse_oid(obj.source),
            anchor=obj.anchor,
            target=self._parse_oid(obj.target),
            media_path=obj.media_path or None,
            cue_seconds=obj.cue_seconds,
        )

    @staticmethod
    def _parse_oid(text: str) -> OID:
        class_name, _, serial = text.rpartition(":")
        return OID(class_name, int(serial))
