"""A track-based AV container format (the paper's future work [5]).

"A track-like structure is a common feature among the emerging multimedia
data formats.  Temporal composition naturally describes this structure"
(§4.1), and the conclusion states: "We are exploring this issue by
modelling a particular AV format in detail."  This package is that
modelling exercise: a QuickTime-flavoured container that serializes a
:class:`~repro.temporal.TemporalComposite` to one byte stream and back.

The format (see :mod:`repro.container.format`) is atom-structured:

* ``MOOV`` — movie header: timeline span, track table;
* ``TRAK`` — per-track metadata: name, media type, rate, geometry,
  element count, timeline placement;
* ``MDAT`` — media data: element chunks *interleaved by presentation
  time*, so a sequential read delivers elements in the order a player
  needs them (the streaming-friendly layout real containers use).
"""

from repro.container.demux import ContainerDemuxer
from repro.container.format import (
    ContainerReader,
    ContainerWriter,
    read_composite,
    write_composite,
)

__all__ = [
    "ContainerDemuxer",
    "ContainerReader",
    "ContainerWriter",
    "read_composite",
    "write_composite",
]
