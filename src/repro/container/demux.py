"""Streaming demultiplexer over container bytes.

The MDAT atom interleaves sample records by presentation time precisely
so that a player can stream *sequentially* — no random access, no
per-track seeking.  :class:`ContainerDemuxer` is that player-side
activity: one pass over the byte stream, one typed out-port per track,
elements paced at their recorded ideal times.

Raw video and text records are decoded to payload objects on the fly;
encoded video records are forwarded as chunks (a downstream
``VideoDecoder`` decompresses, as in Fig. 2); audio records are PCM
blocks (or codec blocks, decoded inline since audio block codecs are
self-contained).
"""

from __future__ import annotations

import struct
from typing import Dict, Generator, List, Optional

import numpy as np

from repro.activities.base import Location, MediaActivity
from repro.activities.events import EVENT_EACH_ELEMENT, EVENT_LAST_ELEMENT
from repro.activities.ports import Direction
from repro.avtime import WorldTime
from repro.codecs.registry import get_codec
from repro.container.format import _SAMPLE, _read_atom, AUDIO_BLOCK, ContainerReader, MAGIC, _FTYP
from repro.errors import DataModelError
from repro.sim import Delay, Simulator
from repro.streams.element import END_OF_STREAM, StreamElement
from repro.values.mediatype import standard_type
from repro.values.text import TextItem


class ContainerDemuxer(MediaActivity):
    """Source activity streaming a container's tracks out of one scan.

    One out-port per track, named after the track.  Encoded video tracks
    emit chunk payloads typed by their stored media type (connect a
    decoder downstream); raw video emits frames; audio emits PCM blocks;
    text emits :class:`TextItem` objects.
    """

    EVENT_NAMES = MediaActivity.EVENT_NAMES + (EVENT_EACH_ELEMENT, EVENT_LAST_ELEMENT)

    def __init__(self, simulator: Simulator, data: bytes,
                 name: Optional[str] = None,
                 location: Location = Location.DATABASE) -> None:
        super().__init__(simulator, name, location)
        self._tracks = self._parse_header(data)
        self._mdat = self._find_mdat(data)
        self.elements_produced = 0
        self._audio_decoders: Dict[int, object] = {}
        for index, info in enumerate(self._tracks):
            media_type = standard_type(info.media_type)
            if media_type.kind.value == "audio":
                # Audio is always delivered as PCM blocks.
                port_type = standard_type("audio/pcm")
                if info.codec:
                    self._audio_decoders[index] = get_codec(info.codec)
            else:
                port_type = media_type
            self.add_port(info.name, Direction.OUT, port_type)

    @property
    def track_names(self) -> List[str]:
        return [info.name for info in self._tracks]

    # -- header parsing (reusing the reader's atom walkers) ----------------
    @staticmethod
    def _parse_header(data: bytes):
        offset = 0
        kind, payload, offset = _read_atom(data, offset)
        if kind != b"FTYP":
            raise DataModelError("not a container stream")
        magic, _version = _FTYP.unpack_from(payload, 0)
        if magic != MAGIC:
            raise DataModelError(f"bad container magic {magic!r}")
        kind, moov, offset = _read_atom(data, offset)
        if kind != b"MOOV":
            raise DataModelError("expected MOOV atom")
        return ContainerReader()._parse_moov(moov)

    @staticmethod
    def _find_mdat(data: bytes) -> bytes:
        offset = 0
        while offset < len(data):
            kind, payload, offset = _read_atom(data, offset)
            if kind == b"MDAT":
                return payload
        raise DataModelError("container has no MDAT atom")

    # -- the single-pass streaming loop --------------------------------------
    def _record_time(self, track_index: int, element_index: int) -> float:
        info = self._tracks[track_index]
        media_type = standard_type(info.media_type)
        per_record = 1
        if media_type.kind.value == "audio":
            codec = self._audio_decoders.get(track_index)
            per_record = codec.block_samples if codec else AUDIO_BLOCK
        return info.start + element_index * per_record * info.scale / info.rate

    def _decode_payload(self, track_index: int, payload: bytes):
        info = self._tracks[track_index]
        media_type = standard_type(info.media_type)
        if media_type.kind.value == "video":
            if info.codec:
                return payload  # chunks flow; decoding is a downstream activity
            shape = ((info.height, info.width) if info.depth == 8
                     else (info.height, info.width, 3))
            return np.frombuffer(payload, dtype=np.uint8).reshape(shape)
        if media_type.kind.value == "audio":
            codec = self._audio_decoders.get(track_index)
            if codec is not None:
                return codec.decode_block(payload, info.channels)
            return np.frombuffer(payload, dtype=np.int16).reshape(info.channels, -1)
        if media_type.kind.value == "text":
            (span,) = struct.unpack_from("<d", payload, 0)
            return TextItem(payload[8:].decode("utf-8"), span)
        raise DataModelError(f"cannot demux a {info.media_type} track")

    def _process(self) -> Generator:
        t_start = self.simulator.now.seconds
        offset = 0
        ports = [self.port(info.name) for info in self._tracks]
        while offset < len(self._mdat) and not self._stop_requested:
            track_index, element_index, size = _SAMPLE.unpack_from(
                self._mdat, offset
            )
            offset += _SAMPLE.size
            payload = self._mdat[offset:offset + size]
            offset += size
            when = self._record_time(track_index, element_index)
            if self.paced:
                wait = t_start + when - self.simulator.now.seconds
                if wait > 0:
                    yield Delay(wait)
            element = StreamElement(
                self._decode_payload(track_index, payload),
                element_index,
                WorldTime(t_start + when),
                ports[track_index].media_type,
                len(payload) * 8,
            )
            yield from ports[track_index].send(element)
            self.elements_produced += 1
            self._emit(EVENT_EACH_ELEMENT, (track_index, element_index))
        for port in ports:
            yield from port.send(END_OF_STREAM)
        self._emit(EVENT_LAST_ELEMENT, self.elements_produced)
