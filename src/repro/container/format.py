"""The container format: atoms, track table, time-interleaved media data.

Layout (all integers little-endian)::

    FTYP atom: magic "AVDB", format version u16
    MOOV atom: u16 track count, then one TRAK atom per track
      TRAK payload:
        name            (u8 length + utf-8)
        media type name (u8 length + utf-8)
        codec name      (u8 length + utf-8; "" = uncoded)
        codec params    (u16 length + JSON utf-8)
        rate f64, start f64, scale f64     (the value's time mapping)
        element count u32
        geometry: width u16, height u16, depth u8, channels u8
                  (zeroed where not applicable)
    MDAT atom: sample records, each
        track index u16, element index u32, payload size u32, payload

Sample records are ordered by ideal presentation time, so a sequential
scan of MDAT yields elements in playback order — the interleaved,
streaming-friendly layout of real track-based formats.

Supported track value classes: raw and encoded video, raw and encoded
audio (audio grouped into blocks of up to 1024 sample frames per record),
and text streams.
"""

from __future__ import annotations

import io
import json
import struct
from typing import BinaryIO, Dict, List, Tuple

import numpy as np

from repro.avtime import TimeMapping, WorldTime
from repro.codecs.registry import get_codec
from repro.errors import DataModelError
from repro.temporal import TCompSpec, TemporalComposite, Timeline, TimelineEntry, TrackSpec
from repro.values.audio import EncodedAudioValue, RawAudioValue
from repro.values.base import MediaValue
from repro.values.mediatype import standard_type
from repro.values.text import TextItem, TextStreamValue
from repro.values.video import EncodedVideoValue, RawVideoValue

MAGIC = b"AVDB"
VERSION = 1
AUDIO_BLOCK = 1024

_ATOM = struct.Struct("<I4s")
_FTYP = struct.Struct("<4sH")
_TRAK_FIXED = struct.Struct("<dddIHHBB")
_SAMPLE = struct.Struct("<HII")


def _write_atom(out: BinaryIO, kind: bytes, payload: bytes) -> None:
    out.write(_ATOM.pack(len(payload), kind))
    out.write(payload)


def _read_atom(data: bytes, offset: int) -> Tuple[bytes, bytes, int]:
    if offset + _ATOM.size > len(data):
        raise DataModelError("truncated container: atom header missing")
    size, kind = _ATOM.unpack_from(data, offset)
    start = offset + _ATOM.size
    end = start + size
    if end > len(data):
        raise DataModelError(f"truncated container: {kind!r} atom body missing")
    return kind, data[start:end], end


def _pack_str(text: str, width: str = "B") -> bytes:
    raw = text.encode("utf-8")
    return struct.pack(f"<{width}", len(raw)) + raw


def _unpack_str(data: bytes, offset: int, width: str = "B") -> Tuple[str, int]:
    size = struct.calcsize(f"<{width}")
    (length,) = struct.unpack_from(f"<{width}", data, offset)
    start = offset + size
    return data[start:start + length].decode("utf-8"), start + length


class _TrackInfo:
    """Parsed TRAK metadata plus collected sample payloads."""

    def __init__(self, name: str, media_type: str, codec: str, params: dict,
                 rate: float, start: float, scale: float, count: int,
                 width: int, height: int, depth: int, channels: int) -> None:
        self.name = name
        self.media_type = media_type
        self.codec = codec
        self.params = params
        self.rate = rate
        self.start = start
        self.scale = scale
        self.count = count
        self.width = width
        self.height = height
        self.depth = depth
        self.channels = channels
        self.samples: Dict[int, bytes] = {}


class ContainerWriter:
    """Serializes a temporal composite into the container format."""

    def write(self, composite: TemporalComposite, out: BinaryIO) -> None:
        _write_atom(out, b"FTYP", _FTYP.pack(MAGIC, VERSION))
        tracks = [(name, composite.value(name))
                  for name in composite.track_names]
        moov = io.BytesIO()
        moov.write(struct.pack("<H", len(tracks)))
        for name, value in tracks:
            _write_atom(moov, b"TRAK", self._trak_payload(name, value))
        _write_atom(out, b"MOOV", moov.getvalue())
        _write_atom(out, b"MDAT", self._mdat_payload(tracks))

    # -- TRAK ------------------------------------------------------------
    def _trak_payload(self, name: str, value: MediaValue) -> bytes:
        codec_name, params = self._codec_of(value)
        width = height = depth = channels = 0
        count = value.element_count
        if isinstance(value, (RawVideoValue, EncodedVideoValue)):
            width, height, depth = value.width, value.height, value.depth
        elif isinstance(value, (RawAudioValue, EncodedAudioValue)):
            channels, depth = value.num_channels, value.depth
        elif not isinstance(value, TextStreamValue):
            raise DataModelError(
                f"container cannot carry a {type(value).__name__} track"
            )
        payload = io.BytesIO()
        payload.write(_pack_str(name))
        payload.write(_pack_str(value.media_type.name))
        payload.write(_pack_str(codec_name))
        payload.write(_pack_str(json.dumps(params), width="H"))
        payload.write(_TRAK_FIXED.pack(
            value.mapping.rate, value.mapping.start.seconds,
            value.mapping.scale, count, width, height, depth, channels,
        ))
        return payload.getvalue()

    @staticmethod
    def _codec_of(value: MediaValue) -> Tuple[str, dict]:
        if isinstance(value, EncodedVideoValue):
            codec = value.codec
            params = {}
            for key in ("quality", "gop", "delta_quant"):
                if hasattr(codec, key):
                    params[key] = getattr(codec, key)
            return codec.name, params
        if isinstance(value, EncodedAudioValue):
            return value.codec.name, {}
        return "", {}

    # -- MDAT ------------------------------------------------------------
    def _mdat_payload(self, tracks: List[Tuple[str, MediaValue]]) -> bytes:
        records: List[Tuple[float, int, int, bytes]] = []
        for track_index, (_name, value) in enumerate(tracks):
            for element_index, when, payload in self._elements_of(value):
                records.append((when, track_index, element_index, payload))
        records.sort(key=lambda r: (r[0], r[1], r[2]))
        out = io.BytesIO()
        for when, track_index, element_index, payload in records:
            out.write(_SAMPLE.pack(track_index, element_index, len(payload)))
            out.write(payload)
        return out.getvalue()

    def _elements_of(self, value: MediaValue):
        """(element index, ideal seconds, payload bytes) per sample record."""
        mapping = value.mapping
        if isinstance(value, EncodedVideoValue):
            for i, chunk in enumerate(value.chunks):
                yield i, mapping.start.seconds + i * mapping.scale / mapping.rate, chunk
        elif isinstance(value, RawVideoValue):
            for i in range(value.num_frames):
                payload = np.ascontiguousarray(value.frame(i)).tobytes()
                yield i, mapping.start.seconds + i * mapping.scale / mapping.rate, payload
        elif isinstance(value, EncodedAudioValue):
            span = value.codec.block_samples * mapping.scale / mapping.rate
            for i, block in enumerate(value.blocks):
                yield i, mapping.start.seconds + i * span, block
        elif isinstance(value, RawAudioValue):
            samples = value.samples()
            for i, lo in enumerate(range(0, value.num_samples, AUDIO_BLOCK)):
                block = np.ascontiguousarray(samples[:, lo:lo + AUDIO_BLOCK])
                when = mapping.start.seconds + lo * mapping.scale / mapping.rate
                yield i, when, block.tobytes()
        elif isinstance(value, TextStreamValue):
            for i in range(value.element_count):
                item = value.item(i)
                payload = struct.pack("<d", item.span) + item.text.encode("utf-8")
                yield i, mapping.start.seconds + i * mapping.scale / mapping.rate, payload
        else:
            raise DataModelError(
                f"container cannot carry a {type(value).__name__} track"
            )


class ContainerReader:
    """Parses container bytes back into a temporal composite."""

    def read(self, data: bytes, tcomp_name: str = "clip") -> TemporalComposite:
        offset = 0
        kind, payload, offset = _read_atom(data, offset)
        if kind != b"FTYP":
            raise DataModelError(f"not a container: leading atom {kind!r}")
        magic, version = _FTYP.unpack_from(payload, 0)
        if magic != MAGIC:
            raise DataModelError(f"bad container magic {magic!r}")
        if version != VERSION:
            raise DataModelError(f"unsupported container version {version}")
        kind, moov, offset = _read_atom(data, offset)
        if kind != b"MOOV":
            raise DataModelError(f"expected MOOV atom, got {kind!r}")
        tracks = self._parse_moov(moov)
        kind, mdat, offset = _read_atom(data, offset)
        if kind != b"MDAT":
            raise DataModelError(f"expected MDAT atom, got {kind!r}")
        self._parse_mdat(mdat, tracks)
        return self._rebuild(tracks, tcomp_name)

    # -- parsing -----------------------------------------------------------
    def _parse_moov(self, moov: bytes) -> List[_TrackInfo]:
        (count,) = struct.unpack_from("<H", moov, 0)
        offset = 2
        tracks: List[_TrackInfo] = []
        for _ in range(count):
            kind, payload, offset = _read_atom(moov, offset)
            if kind != b"TRAK":
                raise DataModelError(f"expected TRAK atom, got {kind!r}")
            tracks.append(self._parse_trak(payload))
        return tracks

    @staticmethod
    def _parse_trak(payload: bytes) -> _TrackInfo:
        name, offset = _unpack_str(payload, 0)
        media_type, offset = _unpack_str(payload, offset)
        codec, offset = _unpack_str(payload, offset)
        params_json, offset = _unpack_str(payload, offset, width="H")
        rate, start, scale, count, width, height, depth, channels = \
            _TRAK_FIXED.unpack_from(payload, offset)
        return _TrackInfo(name, media_type, codec, json.loads(params_json),
                          rate, start, scale, count, width, height, depth,
                          channels)

    @staticmethod
    def _parse_mdat(mdat: bytes, tracks: List[_TrackInfo]) -> None:
        offset = 0
        while offset < len(mdat):
            track_index, element_index, size = _SAMPLE.unpack_from(mdat, offset)
            offset += _SAMPLE.size
            if track_index >= len(tracks):
                raise DataModelError(f"sample for unknown track {track_index}")
            payload = mdat[offset:offset + size]
            if len(payload) != size:
                raise DataModelError("truncated sample record")
            tracks[track_index].samples[element_index] = payload
            offset += size

    # -- reconstruction ----------------------------------------------------
    def _rebuild(self, tracks: List[_TrackInfo],
                 tcomp_name: str) -> TemporalComposite:
        values: Dict[str, MediaValue] = {}
        specs: List[TrackSpec] = []
        for info in tracks:
            value = self._rebuild_value(info)
            values[info.name] = value
            specs.append(TrackSpec(info.name, standard_type(info.media_type)))
        spec = TCompSpec(tcomp_name, tuple(specs))
        timeline = Timeline([
            TimelineEntry(info.name, values[info.name].interval)
            for info in tracks
        ])
        return TemporalComposite(spec, values, timeline)

    def _rebuild_value(self, info: _TrackInfo) -> MediaValue:
        mapping = TimeMapping(info.rate, WorldTime(info.start), info.scale)
        media_type = standard_type(info.media_type)
        ordered = [info.samples[i] for i in sorted(info.samples)]
        if media_type.kind.value == "video":
            if info.codec:
                codec = get_codec(info.codec, **info.params)
                return codec.value_class(
                    ordered, codec, info.width, info.height, info.depth,
                    mapping=mapping,
                )
            shape = ((info.height, info.width) if info.depth == 8
                     else (info.height, info.width, 3))
            frames = np.stack([
                np.frombuffer(p, dtype=np.uint8).reshape(shape)
                for p in ordered
            ])
            return RawVideoValue(frames, mapping=mapping)
        if media_type.kind.value == "audio":
            if info.codec:
                codec = get_codec(info.codec)
                from repro.values.audio import ADPCMAudioValue, MuLawAudioValue
                value_class = (MuLawAudioValue if info.codec == "mulaw"
                               else ADPCMAudioValue)
                return value_class(ordered, codec, info.channels, info.count,
                                   info.rate, depth=info.depth, mapping=mapping)
            blocks = [
                np.frombuffer(p, dtype=np.int16).reshape(info.channels, -1)
                for p in ordered
            ]
            return RawAudioValue(np.concatenate(blocks, axis=1),
                                 depth=info.depth, mapping=mapping)
        if media_type.kind.value == "text":
            items = []
            for payload in ordered:
                (span,) = struct.unpack_from("<d", payload, 0)
                items.append(TextItem(payload[8:].decode("utf-8"), span))
            return TextStreamValue(items, mapping=mapping)
        raise DataModelError(f"cannot rebuild a {info.media_type} track")


def write_composite(composite: TemporalComposite) -> bytes:
    """Serialize a composite to container bytes."""
    out = io.BytesIO()
    ContainerWriter().write(composite, out)
    return out.getvalue()


def read_composite(data: bytes, tcomp_name: str = "clip") -> TemporalComposite:
    """Parse container bytes back into a composite."""
    return ContainerReader().read(data, tcomp_name)
