"""The watchdog: always-on supervision over a running scenario.

A :class:`Watchdog` composes the three watch primitives —
:class:`~repro.watch.invariants.InvariantMonitor`,
:class:`~repro.watch.slo.SLOEngine` and
:class:`~repro.watch.recorder.FlightRecorder` — behind one object a
scenario arms and starts::

    dog = Watchdog(sim, slos=default_slos(), bundle_dir="out")
    dog.arm(channels=[trunk], controllers=[control], channels_complete=True)
    dog.start(cadence_s=0.05, horizon_s=2.0)
    ... run the workload ...
    report = dog.teardown()

The cadence process wakes on the virtual clock, runs every invariant
probe, and evaluates the SLO catalog.  An invariant breach is the
fail-fast path: the watchdog emits an ``invariant-breach`` decision,
writes a postmortem bundle, and raises
:class:`~repro.errors.InvariantBreachError` — which the kernel records
as a *failure* (not a fault) and re-raises from ``Simulator.run()``, so
a corrupted run cannot quietly continue.  A hard SLO failure dumps a
bundle too but by default only records the ``slo-breach`` decision; pass
``raise_on_hard_slo=True`` to make it fatal as well.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Generator, List, Optional, Union

from repro.errors import InvariantBreachError, SLOViolationError
from repro.sim import Delay, Simulator
from repro.watch.invariants import Breach, InvariantMonitor
from repro.watch.recorder import FlightRecorder
from repro.watch.slo import SLOEngine, SLOSpec

PathLike = Union[str, Path]


class Watchdog:
    """Arms probes and SLOs over a scenario and supervises it."""

    def __init__(self, simulator: Simulator,
                 slos=(),
                 bundle_dir: Optional[PathLike] = None,
                 raise_on_hard_slo: bool = False,
                 name: str = "watchdog") -> None:
        self.simulator = simulator
        self.name = name
        self.bundle_dir = Path(bundle_dir) if bundle_dir is not None else None
        self.raise_on_hard_slo = raise_on_hard_slo
        self.monitor = InvariantMonitor(simulator)
        self.engine = SLOEngine(simulator.obs.metrics, slos)
        self.recorder = FlightRecorder(simulator.obs)
        self._decisions = simulator.obs.decisions
        self._bundle_seq = 0
        self._slo_bundled: set = set()
        self.bundle_paths: List[Path] = []
        self.ticks = 0
        # A scenario can die from an unhandled exception between ticks;
        # hook the kernel's first-failure path so even those crashes
        # leave a postmortem instead of only a raise from run().
        simulator.add_failure_hook(self._on_kernel_failure)

    # -- setup -------------------------------------------------------------
    def arm(self, channels=(), allocators=(), controllers=(), cluster=None,
            tier=None, channels_complete: bool = False) -> "Watchdog":
        """Arm invariant probes and flight-recorder state dumps."""
        self.monitor.arm(channels=channels, allocators=allocators,
                         controllers=controllers, cluster=cluster,
                         tier=tier, channels_complete=channels_complete)
        self.recorder.track(*channels, *controllers, *allocators)
        if cluster is not None:
            self.recorder.track(cluster)
        if tier is not None:
            self.recorder.track(tier)
        return self

    def add_slo(self, spec: SLOSpec) -> SLOSpec:
        return self.engine.add(spec)

    # -- the cadence process -----------------------------------------------
    def start(self, cadence_s: float = 0.05,
              horizon_s: float = 10.0) -> None:
        """Spawn the supervision process (bounded by ``horizon_s``).

        The bound matters: an unbounded ticker would keep the event heap
        non-empty forever and ``Simulator.run()`` would never drain.
        """
        if cadence_s <= 0:
            raise SLOViolationError(
                f"watchdog cadence must be positive, got {cadence_s}")
        self.simulator.spawn(self._run(cadence_s, horizon_s),
                             name=f"{self.name}:ticker")

    def _run(self, cadence_s: float, horizon_s: float) -> Generator:
        while self.simulator.now.seconds + cadence_s <= horizon_s:
            yield Delay(cadence_s)
            self.check()

    # -- checking ----------------------------------------------------------
    def _write_bundle(self, doc: Dict[str, object]) -> Optional[Path]:
        if self.bundle_dir is None:
            return None
        self._bundle_seq += 1
        path = self.recorder.dump(
            doc, self.bundle_dir / f"postmortem-{self._bundle_seq:03d}.json")
        self.bundle_paths.append(path)
        return path

    def _fail(self, breaches: List[Breach]) -> None:
        first = breaches[0]
        if self._decisions.enabled:
            for breach in breaches:
                self._decisions.emit("invariant-breach", breach.component,
                                     actor=self.name,
                                     invariant=breach.invariant,
                                     detail=breach.detail)
        doc = self.recorder.bundle("invariant-breach",
                                   self.simulator.now.seconds,
                                   breaches=breaches,
                                   slo_report=self.engine.report())
        path = self._write_bundle(doc)
        where = f" (postmortem: {path})" if path is not None else ""
        raise InvariantBreachError(f"{first}{where}")

    def _on_kernel_failure(self, proc, error: BaseException) -> None:
        """First-failure hook: crash-dump anything we didn't raise ourselves.

        Breach/SLO failures already wrote their bundle on the raise
        path; everything else is an unhandled scenario exception whose
        evidence would otherwise die with the traceback.
        """
        if isinstance(error, (InvariantBreachError, SLOViolationError)):
            return
        failure = {
            "process": proc.name,
            "error_type": type(error).__name__,
            "error": str(error),
        }
        if self._decisions.enabled:
            self._decisions.emit("unhandled-failure", proc.name,
                                 actor=self.name,
                                 error_type=failure["error_type"],
                                 detail=failure["error"])
        doc = self.recorder.bundle("unhandled-failure",
                                   self.simulator.now.seconds,
                                   slo_report=self.engine.report(),
                                   failure=failure)
        self._write_bundle(doc)

    def _check_hard_slos(self) -> None:
        results = self.engine.evaluate()
        failed = [r for r in self.engine.hard_failures(results)
                  if r.spec.name not in self._slo_bundled]
        if not failed:
            return
        for result in failed:
            self._slo_bundled.add(result.spec.name)
            if self._decisions.enabled:
                self._decisions.emit("slo-breach", result.spec.name,
                                     actor=self.name,
                                     klass=result.spec.klass,
                                     value=round(result.value, 6),
                                     target=result.spec.target,
                                     burn=round(result.burn, 4))
        doc = self.recorder.bundle("slo-hard-fail",
                                   self.simulator.now.seconds,
                                   slo_report=self.engine.report())
        self._write_bundle(doc)
        if self.raise_on_hard_slo:
            worst = max(failed, key=lambda r: r.burn)
            raise SLOViolationError(
                f"hard SLO {worst.spec.name!r} failed: "
                f"value {worst.value:g} vs target {worst.spec.target:g} "
                f"(burn {worst.burn:.2f})")

    def check(self) -> None:
        """One supervision tick: invariants first, then hard SLOs."""
        self.ticks += 1
        breaches = self.monitor.check_now()
        if breaches:
            self._fail(breaches)
        self._check_hard_slos()

    def teardown(self, strict: bool = True) -> Dict[str, object]:
        """Final audit: end-state invariants + the full SLO report.

        With ``strict`` (default) any teardown breach raises
        :class:`~repro.errors.InvariantBreachError`; otherwise the
        breaches are only recorded in the returned report.
        """
        breaches = self.monitor.check_teardown()
        if breaches and strict:
            self._fail(breaches)
        report = self.engine.report()
        report["teardown_breaches"] = [b.to_dict() for b in breaches]
        report["ticks"] = self.ticks
        report["checks"] = self.monitor.checks
        return report

    def __repr__(self) -> str:
        return (f"Watchdog({self.name!r}, {self.ticks} ticks, "
                f"{len(self.monitor.breaches)} breaches, "
                f"{len(self.engine.specs)} SLOs)")
