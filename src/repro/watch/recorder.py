"""Flight recorder: deterministic postmortem bundles.

When an invariant breaches or a hard SLO fails, the interesting state is
*what just happened*, not the whole run.  The :class:`FlightRecorder`
assembles a **postmortem bundle** — a plain-data dict holding the breach
evidence, the SLO report, the tail of the decision log, the tail of the
trace (canonical: wall-clock stamps stripped), the full metrics
snapshot, and a state dump of every armed component — and serializes it
with sorted keys so two runs of the same seeded scenario produce
**byte-identical** bundles (the determinism CI job diffs exactly that).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs import Obs

PathLike = Union[str, Path]

#: default bundle tail sizes — enough context to reconstruct the causal
#: neighbourhood of a failure without shipping the whole run.
TRACE_TAIL = 256
DECISION_TAIL = 128


def _canonical_trace_event(event) -> Dict[str, object]:
    """A trace event without its wall-clock stamps (determinism)."""
    out: Dict[str, object] = {
        "phase": event.phase, "name": event.name,
        "category": event.category, "track": event.track, "ts": event.ts,
    }
    if event.dur is not None:
        out["dur"] = event.dur
    if event.args:
        out["args"] = dict(event.args)
    return out


def component_state(obj) -> Dict[str, object]:
    """A plain-data dump of one armed component's observable state."""
    state: Dict[str, object] = {"type": type(obj).__name__}
    # Channels
    if hasattr(obj, "capacity_bps") and hasattr(obj, "_reservations"):
        state.update({
            "name": obj.name,
            "capacity_bps": obj.capacity_bps,
            "reserved_bps": obj.reserved_bps,
            "total_bits": obj.total_bits,
            "reservations": [
                {"label": r.label, "bps": r.bps,
                 "released": r.released, "preempted": r.preempted}
                for r in sorted(obj._reservations.values(),
                                key=lambda r: r.id)
            ],
        })
    # Admission controllers
    elif hasattr(obj, "queue_depth") and hasattr(obj, "_held"):
        state.update({
            "name": obj.name,
            "channel": obj.channel.name,
            "utilization": round(obj.utilization, 6),
            "queue_depth": obj.queue_depth,
            "held": sorted(r.label for r, _ in obj._held.values()),
        })
    # Extent allocators
    elif hasattr(obj, "capacity_bytes") and hasattr(obj, "_free"):
        state.update({
            "name": obj.device_name,
            "capacity_bytes": obj.capacity_bytes,
            "free_bytes": obj.free_bytes,
            "used_bytes": obj.used_bytes,
            "free_ranges": len(obj._free),
            "allocated_extents": len(obj._allocated),
        })
    # Cache tiers
    elif hasattr(obj, "all_caches") and hasattr(obj, "edges"):
        state.update({
            "policy": obj.policy_name,
            "edges": [
                {"name": e.name, "live": e.live,
                 "resident_blocks": e.cache.resident_blocks,
                 "bits_served": e.bits_served,
                 "bits_filled": e.bits_filled}
                for e in obj.edges
            ],
            "node_caches": [
                {"name": c.name, "resident_blocks": c.resident_blocks,
                 "bytes_used": c.bytes_used}
                for c in obj.node_caches
            ],
            "hot_keys": sorted(obj.detector.hot_keys),
        })
    # Cluster placement managers
    elif hasattr(obj, "live_nodes") and hasattr(obj, "placements"):
        state.update({
            "nodes": [n.name for n in obj.nodes],
            "live_nodes": [n.name for n in obj.live_nodes],
            "placements": len(obj.placements),
            "under_replicated": sorted(
                s.key for _, s in obj.under_replicated()),
            "failovers": obj.failovers,
        })
    else:
        state["repr"] = repr(obj)
    return state


class FlightRecorder:
    """Bounded-tail recorder over one observability scope."""

    def __init__(self, obs: Obs,
                 trace_tail: int = TRACE_TAIL,
                 decision_tail: int = DECISION_TAIL) -> None:
        self.obs = obs
        self.trace_tail = trace_tail
        self.decision_tail = decision_tail
        self._components: List = []
        self.bundles: List[Dict[str, object]] = []

    def track(self, *components) -> "FlightRecorder":
        """Add components whose state lands in every bundle."""
        self._components.extend(components)
        return self

    # -- bundle assembly ---------------------------------------------------
    def bundle(self, reason: str, at_s: float,
               breaches: List = (),
               slo_report: Optional[Dict[str, object]] = None,
               failure: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """Assemble one postmortem bundle (plain data, deterministic).

        ``failure`` carries crash evidence (process name, exception type
        and message) when the bundle documents an unhandled scenario
        exception rather than an invariant/SLO breach.
        """
        decisions = self.obs.decisions
        tracer = self.obs.tracer
        doc: Dict[str, object] = {
            "bundle": "repro.watch postmortem",
            "reason": reason,
            "at_s": round(at_s, 9),
            "failure": failure if failure is not None else {},
            "breaches": [b.to_dict() for b in breaches],
            "slo": slo_report if slo_report is not None else {},
            "decisions": [
                e.to_dict()
                for e in (decisions.events[-self.decision_tail:]
                          if decisions.enabled else [])
            ],
            "trace_tail": [
                _canonical_trace_event(e)
                for e in (tracer.events[-self.trace_tail:]
                          if tracer.enabled else [])
            ],
            "metrics": self.obs.metrics.snapshot(),
            "components": [component_state(c) for c in self._components],
        }
        self.bundles.append(doc)
        return doc

    # -- serialization -----------------------------------------------------
    @staticmethod
    def to_bytes(doc: Dict[str, object]) -> bytes:
        """Deterministic serialization: sorted keys, no wall-clock data."""
        return json.dumps(doc, sort_keys=True, indent=1).encode()

    @staticmethod
    def sha256(doc: Dict[str, object]) -> str:
        return hashlib.sha256(FlightRecorder.to_bytes(doc)).hexdigest()

    def dump(self, doc: Dict[str, object], path: PathLike) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(self.to_bytes(doc) + b"\n")
        return path

    def __repr__(self) -> str:
        return (f"FlightRecorder({len(self._components)} components, "
                f"{len(self.bundles)} bundles)")
