"""Causal explain: reconstruct *why* a session ended up where it did.

Every arbitration point in the stack mirrors its verdict into the
ambient :class:`~repro.obs.DecisionLog` (admission verdicts, preemption,
queueing, breaker transitions, failover, retries, degradation).  Because
the DES kernel is single-threaded and deterministic, the log's emission
order *is* the causal order — so the decision chain for one subject,
rendered in order, reads as the session's history:

    t=0.400000s  [cluster] node-down node-1 (1 shard under-replicated)
    t=0.412000s  [recovery] retry #1 after SchedulerStoppedError
    t=0.417000s  [node-0.admission] degrade: 3e+06 of 6e+06 b/s (50%)
    t=0.417000s  [cluster] failover node-1 -> node-0

This module renders those chains; ``python -m repro explain`` is the
CLI over it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.decisions import DecisionEvent, DecisionLog


def _fmt_bps(bps) -> str:
    return f"{float(bps):g} b/s"


def describe(event: DecisionEvent) -> str:
    """One decision event as a human-readable clause (no timestamp)."""
    a = event.args
    kind = event.kind
    if kind == "admit":
        out = f"admitted at {_fmt_bps(a.get('bps', 0))}"
        if a.get("via") == "preemption":
            out += " (after preempting background work)"
        if a.get("from_queue"):
            out += f" from queue after {a.get('waited_s', 0):g}s"
        return out
    if kind == "degrade":
        out = f"degraded to {_fmt_bps(a.get('bps', 0))}"
        if "requested_bps" in a:
            out += f" of {_fmt_bps(a['requested_bps'])} requested"
        if "fraction" in a:
            out += f" ({a['fraction']:.0%})"
        if a.get("from_queue"):
            out += f" from queue after {a.get('waited_s', 0):g}s"
        return out
    if kind == "shed":
        out = f"shed ({a.get('reason', 'overload')})"
        if "utilization" in a:
            out += f" at {a['utilization']:.0%} utilization"
        return out
    if kind == "queue":
        return (f"queued at depth {a.get('depth', '?')} "
                f"({a.get('priority', 'standard')} priority)")
    if kind == "queue-timeout":
        return f"timed out after {a.get('waited_s', 0):g}s in the queue"
    if kind == "preempt":
        return (f"preempted — {_fmt_bps(a.get('bps', 0))} revoked for "
                f"higher-priority work")
    if kind == "reject":
        return (f"rejected ({_fmt_bps(a.get('bps', 0))} requested, "
                f"{_fmt_bps(a.get('available_bps', 0))} available)")
    if kind == "breaker":
        return f"breaker {a.get('prev', '?')} -> {a.get('state', '?')}"
    if kind == "failover":
        return f"failover {a.get('src', '?')} -> {a.get('dst', '?')}"
    if kind == "node-down":
        n = a.get("under_replicated", 0)
        return f"node down ({n} shard(s) under-replicated)"
    if kind == "node-up":
        return "node restored"
    if kind == "retry":
        out = (f"retry #{a.get('attempt', '?')} after "
               f"{a.get('error', 'error')}")
        if "backoff_s" in a:
            out += f" (backoff {a['backoff_s']:g}s)"
        return out
    if kind == "retries-exhausted":
        return (f"retries exhausted after {a.get('attempts', '?')} "
                f"attempts ({a.get('error', 'error')})")
    if kind == "deadline":
        return f"deadline exceeded ({a.get('seconds', 0):g}s)"
    if kind == "session-degraded":
        return (f"session degraded to {a.get('fraction', 0):.0%} of "
                f"negotiated QoS")
    if kind == "invariant-breach":
        return (f"INVARIANT BREACH [{a.get('invariant', '?')}] "
                f"{a.get('detail', '')}")
    if kind == "slo-breach":
        return (f"hard SLO failed (value {a.get('value', '?')} vs target "
                f"{a.get('target', '?')}, burn {a.get('burn', '?')})")
    extra = ", ".join(f"{k}={v}" for k, v in sorted(a.items()))
    return f"{kind}" + (f" ({extra})" if extra else "")


def render_event(event: DecisionEvent) -> str:
    """One decision event as a full report line."""
    actor = f"[{event.actor}] " if event.actor else ""
    return f"t={event.ts:.6f}s  {actor}{describe(event)}"


def explain_chain(decisions: DecisionLog, subject: str) -> List[str]:
    """The rendered causal chain for one subject, in causal order."""
    return [render_event(event) for event in decisions.chain(subject)]


def explain_report(decisions: DecisionLog, subject: str) -> str:
    """A full explain report for one subject (deterministic text)."""
    chain = decisions.chain(subject)
    lines = [f"== decision chain for {subject!r} "
             + "=" * max(1, 48 - len(subject))]
    if not chain:
        lines.append("  (no decisions recorded for this subject)")
        known = subjects_summary(decisions)
        if known:
            lines.append("  known subjects:")
            lines.extend(f"    {line}" for line in known)
        return "\n".join(lines)
    lines.extend(f"  {render_event(event)}" for event in chain)
    verdicts = [e.kind for e in chain]
    lines.append(f"  -- {len(chain)} decision(s): {' -> '.join(verdicts)}")
    return "\n".join(lines)


def subjects_summary(decisions: DecisionLog,
                     limit: Optional[int] = None) -> List[str]:
    """One line per known subject: its decision kinds in causal order."""
    per_subject: Dict[str, List[str]] = {}
    for event in decisions.events:
        per_subject.setdefault(event.subject, []).append(event.kind)
    lines = [f"{subject}: {' -> '.join(kinds)}"
             for subject, kinds in sorted(per_subject.items())]
    if limit is not None and len(lines) > limit:
        lines = lines[:limit] + [f"... and {len(lines) - limit} more"]
    return lines
