"""Continuously-checked system invariants.

The subsystems each keep their own bookkeeping honest in unit tests; the
:class:`InvariantMonitor` keeps it honest *while scenarios run*.  A
monitor is armed over concrete components — channels, extent allocators,
admission controllers, a cluster — and re-derives each component's
conservation law from its internal state:

* **reservation conservation** — a channel's registered reservations are
  all live (none released), and their sum never exceeds capacity;
* **controller consistency** — every grant an admission controller
  thinks it holds is live and registered on its channel, and its O(1)
  queue-depth mirror matches the actual queue;
* **extent wholeness** — an allocator's free ranges are sorted, disjoint
  and, together with the allocated extents, exactly partition the
  device;
* **bit conservation** — the global ``net.bits_sent`` counter equals the
  sum of per-channel traffic (only checked when *every* channel in the
  scope is armed, otherwise unarmed traffic would look like a leak);
* **replication** — every placed shard keeps at least one live replica
  mid-run, teardown ends with no under-replicated shards, and every
  placement's replication factor is back at its *declared* R (a
  flash-crowd boost that leaks past the crowd is a breach);
* **cache coherence** — armed over a cache tier, no resident block in
  any cache (edge or per-node) carries a version tag other than its
  placement's current authoritative version;
* **process accounting** — the kernel's live-process count stays sane
  mid-run and drains to zero at teardown.

A violated probe produces a :class:`Breach` — a structured, plain-data
record naming the invariant, the component, and the evidence — which the
:class:`~repro.watch.watchdog.Watchdog` turns into a postmortem bundle
and a fail-fast :class:`~repro.errors.InvariantBreachError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim import Simulator

#: tolerance for floating-point bandwidth sums.
_EPS = 1e-6


@dataclass(frozen=True, slots=True)
class Breach:
    """One violated invariant: which law, where, and the evidence."""

    invariant: str
    component: str
    detail: str
    at_s: float
    evidence: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "invariant": self.invariant,
            "component": self.component,
            "detail": self.detail,
            "at_s": round(self.at_s, 9),
            "evidence": self.evidence,
        }

    def __str__(self) -> str:
        return (f"[{self.invariant}] {self.component} @ t={self.at_s:.6f}s: "
                f"{self.detail}")


class InvariantMonitor:
    """Checks conservation laws over armed components.

    ``check_now()`` runs the mid-run probes; ``check_teardown()`` adds the
    end-state probes (queues drained, processes finished, replication
    restored).  Both return the list of breaches found — empty means the
    system's books balance.
    """

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator
        self._channels: List = []
        self._allocators: List = []
        self._controllers: List = []
        self._cluster = None
        self._tier = None
        #: True when the armed channel set covers every channel whose
        #: traffic lands in ``net.bits_sent`` — the precondition for the
        #: bit-conservation probe (partial coverage cannot distinguish a
        #: leak from an unarmed channel's legitimate traffic).
        self._channels_complete = False
        self.checks = 0
        self.breaches: List[Breach] = []
        self._extra_probes: List[Tuple[str, Callable[[], Optional[str]]]] = []

    # -- arming ------------------------------------------------------------
    def arm(self, channels=(), allocators=(), controllers=(), cluster=None,
            tier=None, channels_complete: bool = False) -> "InvariantMonitor":
        """Register components to watch; may be called repeatedly.

        Pass ``channels_complete=True`` only when the armed channels are
        *all* the channels in the scenario's metrics scope — that enables
        the global bit-conservation probe.  Arming a cache ``tier`` also
        arms each edge's NIC and admission controller, and enables the
        cache-coherence probe over every cache the tier owns (the tier's
        cluster must be armed too, for the authoritative versions).
        """
        self._channels.extend(channels)
        self._allocators.extend(allocators)
        self._controllers.extend(controllers)
        if cluster is not None:
            self._cluster = cluster
            for node in cluster.nodes:
                self._channels.append(node.nic)
                self._controllers.append(node.admission)
                self._allocators.append(node.device.allocator)
        if tier is not None:
            self._tier = tier
            for edge in tier.edges:
                self._channels.append(edge.nic)
                self._controllers.append(edge.admission)
        if channels_complete:
            self._channels_complete = True
        return self

    def add_probe(self, name: str,
                  probe: Callable[[], Optional[str]]) -> None:
        """Register a custom probe: return None when healthy, else detail."""
        self._extra_probes.append((name, probe))

    # -- individual probes -------------------------------------------------
    def _now(self) -> float:
        return self.simulator.now.seconds

    def _probe_reservations(self, out: List[Breach]) -> None:
        for channel in self._channels:
            leaked = [r for r in channel._reservations.values() if r.released]
            if leaked:
                out.append(Breach(
                    "reservation-conservation", channel.name,
                    f"{len(leaked)} released reservation(s) still registered "
                    f"(bandwidth leak)", self._now(),
                    {"leaked": sorted(r.label for r in leaked),
                     "reserved_bps": channel.reserved_bps,
                     "capacity_bps": channel.capacity_bps}))
            if channel.reserved_bps > channel.capacity_bps + _EPS:
                out.append(Breach(
                    "reservation-conservation", channel.name,
                    f"reserved {channel.reserved_bps:g} b/s exceeds capacity "
                    f"{channel.capacity_bps:g} b/s", self._now(),
                    {"reserved_bps": channel.reserved_bps,
                     "capacity_bps": channel.capacity_bps}))

    def _probe_controllers(self, out: List[Breach]) -> None:
        for controller in self._controllers:
            stale = [r.label for r, _ in controller._held.values()
                     if r.released or r.id not in controller.channel._reservations]
            if stale:
                out.append(Breach(
                    "controller-consistency", controller.name,
                    f"{len(stale)} held grant(s) no longer live on "
                    f"{controller.channel.name!r}", self._now(),
                    {"stale": sorted(stale)}))
            actual = sum(1 for _, e in controller._queue if not e.cancelled)
            if actual != controller.queue_depth:
                out.append(Breach(
                    "controller-consistency", controller.name,
                    f"queue-depth mirror {controller.queue_depth} != "
                    f"{actual} live queued entries", self._now(),
                    {"mirror": controller.queue_depth, "actual": actual}))

    def _probe_extents(self, out: List[Breach]) -> None:
        for allocator in self._allocators:
            name = allocator.device_name
            free = allocator._free
            ranges = sorted(
                [(off, off + length) for off, length in free]
                + [(e.offset, e.end) for e in allocator._allocated.values()]
            )
            ok = bool(ranges) and ranges[0][0] == 0
            cursor = 0
            for start, end in ranges:
                if start != cursor or end <= start:
                    ok = False
                    break
                cursor = end
            if not ok or cursor != allocator.capacity_bytes:
                out.append(Breach(
                    "extent-wholeness", name,
                    "free + allocated extents do not exactly partition "
                    f"[0, {allocator.capacity_bytes})", self._now(),
                    {"free_ranges": len(free),
                     "allocated": len(allocator._allocated),
                     "covered_bytes": cursor,
                     "capacity_bytes": allocator.capacity_bytes}))
            if free != sorted(free):
                out.append(Breach(
                    "extent-wholeness", name,
                    "free list is not sorted", self._now(),
                    {"free_ranges": len(free)}))

    def _probe_bits(self, out: List[Breach]) -> None:
        if not (self._channels_complete and self._channels):
            return
        metrics = self.simulator.obs.metrics
        metrics.flush()
        counter = metrics.get("net.bits_sent")
        recorded = getattr(counter, "value", 0) or 0
        actual = sum(c.total_bits for c in self._channels)
        if recorded != actual:
            out.append(Breach(
                "bit-conservation", "net",
                f"net.bits_sent={recorded} != sum of channel traffic "
                f"{actual}", self._now(),
                {"counter_bits": recorded, "channel_bits": actual}))

    def _probe_replication(self, out: List[Breach],
                           teardown: bool = False) -> None:
        if self._cluster is None:
            return
        cluster = self._cluster
        if not teardown:
            dead = [shard.key
                    for placement in cluster.placements
                    for shard in placement.shards
                    if not cluster.live_replicas(shard)]
            if dead:
                out.append(Breach(
                    "replication", "cluster",
                    f"{len(dead)} shard(s) with zero live replicas",
                    self._now(), {"shards": sorted(dead)}))
            return
        # At teardown the scenario has (legitimately) stopped every node
        # server, so judge replicas by cluster *membership* — node.live
        # survives a clean stop() but not a kill() — instead of by
        # serving availability.
        nodes = cluster._nodes

        def survivors(shard) -> int:
            return sum(1 for name in shard.replicas
                       if name in nodes and nodes[name].live)

        dead = [shard.key
                for placement in cluster.placements
                for shard in placement.shards if survivors(shard) == 0]
        if dead:
            out.append(Breach(
                "replication", "cluster",
                f"{len(dead)} shard(s) with zero surviving replicas at "
                f"teardown", self._now(), {"shards": sorted(dead)}))
        under = [shard.key
                 for placement in cluster.placements
                 for shard in placement.shards
                 if 0 < survivors(shard) < placement.replication]
        if under:
            out.append(Breach(
                "replication", "cluster",
                f"{len(under)} shard(s) still under-replicated at "
                f"teardown", self._now(), {"shards": sorted(under)}))
        # A flash-crowd boost must not survive the crowd: teardown holds
        # every placement to the R its client declared at place() time.
        inflated = [placement.key for placement in cluster.placements
                    if placement.replication != placement.declared_replication]
        if inflated:
            out.append(Breach(
                "replication", "cluster",
                f"{len(inflated)} placement(s) end with replication above "
                f"declared R (leaked boost)", self._now(),
                {"placements": sorted(inflated)}))
        over = [shard.key
                for placement in cluster.placements
                for shard in placement.shards
                if survivors(shard) > placement.replication]
        if over:
            out.append(Breach(
                "replication", "cluster",
                f"{len(over)} shard(s) still over-replicated at teardown "
                f"(leaked extents)", self._now(), {"shards": sorted(over)}))

    def _probe_cache_coherence(self, out: List[Breach]) -> None:
        if self._tier is None or self._cluster is None:
            return
        stale: Dict[str, List[str]] = {}
        for placement in self._cluster.placements:
            version = placement.version
            keys = {placement.key} | {s.key for s in placement.shards}
            for cache in self._tier.all_caches:
                for key in sorted(keys):
                    tags = [tag for tag in cache.versions_of(key)
                            if tag != version]
                    if tags:
                        stale.setdefault(cache.name, []).append(
                            f"{key}@{tags}")
        if stale:
            out.append(Breach(
                "cache-coherence", "cache",
                f"{sum(len(v) for v in stale.values())} cached span(s) "
                f"diverge from the authoritative placement version",
                self._now(), {"stale": {k: sorted(v)
                                        for k, v in sorted(stale.items())}}))

    def _probe_processes(self, out: List[Breach],
                         teardown: bool = False) -> None:
        live = self.simulator.live_processes
        if live < 0:
            out.append(Breach(
                "process-accounting", "sim",
                f"live-process count went negative ({live})", self._now(),
                {"live_processes": live}))
        if teardown and live > 0:
            out.append(Breach(
                "process-accounting", "sim",
                f"{live} process(es) still live at teardown (leaked "
                f"kernel processes)", self._now(),
                {"live_processes": live}))

    def _probe_extra(self, out: List[Breach]) -> None:
        for name, probe in self._extra_probes:
            detail = probe()
            if detail is not None:
                out.append(Breach(name, "custom", detail, self._now()))

    # -- entry points ------------------------------------------------------
    def check_now(self) -> List[Breach]:
        """Run the mid-run probes; record and return any breaches."""
        found: List[Breach] = []
        self._probe_reservations(found)
        self._probe_controllers(found)
        self._probe_extents(found)
        self._probe_bits(found)
        self._probe_replication(found)
        self._probe_cache_coherence(found)
        self._probe_processes(found)
        self._probe_extra(found)
        self.checks += 1
        self.breaches.extend(found)
        return found

    def check_teardown(self) -> List[Breach]:
        """Run every probe plus the end-state laws."""
        found: List[Breach] = []
        self._probe_reservations(found)
        self._probe_controllers(found)
        self._probe_extents(found)
        self._probe_bits(found)
        self._probe_replication(found, teardown=True)
        self._probe_cache_coherence(found)
        self._probe_processes(found, teardown=True)
        self._probe_extra(found)
        self.checks += 1
        self.breaches.extend(found)
        return found

    def __repr__(self) -> str:
        return (f"InvariantMonitor({len(self._channels)} channels, "
                f"{len(self._controllers)} controllers, "
                f"{len(self._allocators)} allocators, "
                f"{self.checks} checks, {len(self.breaches)} breaches)")
