"""``repro.watch`` — the always-on supervision layer.

Sits on top of :mod:`repro.obs` and closes the loop from *observing* the
simulated AV database to *supervising* it:

* :mod:`repro.watch.slo` — declarative SLOs (latency quantiles, miss
  budgets, replication floors) evaluated in virtual time, normalized to
  error-budget **burn** per SLO class;
* :mod:`repro.watch.invariants` — conservation laws re-derived from
  component internals (reservation conservation, extent wholeness, bit
  conservation, replication, process accounting) on a cadence and at
  teardown;
* :mod:`repro.watch.recorder` — deterministic postmortem bundles
  (breaches + SLO report + decision/trace tails + metrics + component
  state), byte-identical across reruns of a seeded scenario;
* :mod:`repro.watch.watchdog` — the composition: a cadence process that
  checks invariants, evaluates SLOs, and fails the run fast on breach;
* :mod:`repro.watch.explain` — causal chains over the
  :class:`~repro.obs.DecisionLog` (``python -m repro explain``);
* :mod:`repro.watch.scenarios` — the ``python -m repro watch`` registry.

The decision log itself lives in :mod:`repro.obs.decisions` (the
emitters are below the watch layer); it is re-exported here because the
watch layer is its primary consumer.
"""

from repro.errors import InvariantBreachError, SLOViolationError, WatchError
from repro.obs.decisions import DecisionEvent, DecisionLog
from repro.watch.explain import (
    describe,
    explain_chain,
    explain_report,
    render_event,
    subjects_summary,
)
from repro.watch.invariants import Breach, InvariantMonitor
from repro.watch.recorder import FlightRecorder, component_state
from repro.watch.scenarios import SCENARIOS, summary_line
from repro.watch.slo import SLOEngine, SLOResult, SLOSpec, default_slos
from repro.watch.watchdog import Watchdog

__all__ = [
    "Breach",
    "DecisionEvent",
    "DecisionLog",
    "FlightRecorder",
    "InvariantBreachError",
    "InvariantMonitor",
    "SCENARIOS",
    "SLOEngine",
    "SLOResult",
    "SLOSpec",
    "SLOViolationError",
    "Watchdog",
    "WatchError",
    "component_state",
    "default_slos",
    "describe",
    "explain_chain",
    "explain_report",
    "render_event",
    "subjects_summary",
    "summary_line",
]
