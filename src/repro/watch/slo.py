"""Declarative SLOs evaluated in virtual time against the metrics registry.

An :class:`SLOSpec` names one objective over one instrument — a
histogram quantile ceiling (session startup latency, jitter), a ratio of
two counters (deadline misses per disk request, late presentations per
element), or a gauge floor/ceiling (cluster replication) — and the
:class:`SLOEngine` evaluates the whole catalog against a
:class:`~repro.obs.MetricsRegistry` whenever asked (the
:class:`~repro.watch.watchdog.Watchdog` asks on its virtual-time
cadence and at teardown).

Every objective normalizes to an **error-budget burn**: ``burn <= 1``
means the objective holds, ``burn > 1`` means the budget is spent, and
the magnitude says by how much.  Specs carry an SLO *class* (latency,
deadline, qos, capacity) so a scenario can report worst-case burn per
class — the per-class accountability the distributed-delivery setting
needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import WatchError
from repro.obs.metrics import MetricsRegistry

#: objective kinds an SLOSpec may use.
KINDS = ("histogram-quantile", "ratio", "counter-max", "gauge-max", "gauge-min")

#: burn assigned to a zero-budget objective that is violated (and to a
#: floor objective measured at zero).  Finite so reports stay strict
#: JSON; far enough above 1 to be unmistakable.
BURN_BLOWN = 1000.0


@dataclass(frozen=True, slots=True)
class SLOSpec:
    """One service-level objective over one instrument.

    * ``histogram-quantile`` — ``percentile(quantile)`` of histogram
      ``metric`` must stay <= ``target``;
    * ``ratio`` — counter ``metric`` / counter ``denominator`` must stay
      <= ``target`` (a budget, e.g. 5% deadline misses);
    * ``counter-max`` — counter ``metric`` must stay <= ``target``;
    * ``gauge-max`` / ``gauge-min`` — gauge ``metric`` must stay
      <= / >= ``target``.

    ``hard=True`` marks the objective as a hard failure condition: the
    watchdog dumps a postmortem bundle the first time it burns past 1.
    """

    name: str
    kind: str
    metric: str
    target: float
    denominator: Optional[str] = None
    quantile: float = 95.0
    klass: str = "qos"
    hard: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise WatchError(
                f"SLO {self.name!r}: kind must be one of {KINDS}, got {self.kind!r}"
            )
        if self.kind == "ratio" and not self.denominator:
            raise WatchError(f"SLO {self.name!r}: ratio needs a denominator metric")
        if self.kind == "gauge-min" and self.target <= 0:
            raise WatchError(f"SLO {self.name!r}: a floor target must be positive")
        if self.kind != "gauge-min" and self.target < 0:
            raise WatchError(f"SLO {self.name!r}: target must be >= 0")


@dataclass(slots=True)
class SLOResult:
    """One evaluation of one spec: the measured value and its burn."""

    spec: SLOSpec
    value: float
    burn: float

    @property
    def ok(self) -> bool:
        return self.burn <= 1.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "slo": self.spec.name,
            "class": self.spec.klass,
            "kind": self.spec.kind,
            "metric": self.spec.metric,
            "target": self.spec.target,
            "value": round(self.value, 6),
            "burn": round(self.burn, 4),
            "ok": self.ok,
            "hard": self.spec.hard,
        }


def _burn_ceiling(value: float, target: float) -> float:
    """Burn for a "stay below target" objective."""
    if target > 0:
        return value / target
    return 0.0 if value <= 0 else BURN_BLOWN


def _burn_floor(value: float, target: float) -> float:
    """Burn for a "stay at or above target" objective."""
    if value >= target:
        return target / value if value > 0 else 0.0
    return BURN_BLOWN if value <= 0 else target / value


class SLOEngine:
    """Evaluates an SLO catalog against one metrics registry."""

    def __init__(self, metrics: MetricsRegistry,
                 specs: Iterable[SLOSpec] = ()) -> None:
        self.metrics = metrics
        self.specs: List[SLOSpec] = list(specs)
        names = [s.name for s in self.specs]
        if len(names) != len(set(names)):
            raise WatchError(f"duplicate SLO names in catalog: {sorted(names)}")

    def add(self, spec: SLOSpec) -> SLOSpec:
        if any(s.name == spec.name for s in self.specs):
            raise WatchError(f"SLO {spec.name!r} is already in the catalog")
        self.specs.append(spec)
        return spec

    # -- evaluation --------------------------------------------------------
    def _measure(self, spec: SLOSpec) -> float:
        inst = self.metrics.get(spec.metric)
        if spec.kind == "histogram-quantile":
            if inst is None or getattr(inst, "count", 0) == 0:
                return 0.0
            return float(inst.percentile(spec.quantile))
        if spec.kind == "ratio":
            num = float(getattr(inst, "value", 0) or 0)
            den_inst = self.metrics.get(spec.denominator)
            den = float(getattr(den_inst, "value", 0) or 0)
            return num / den if den > 0 else 0.0
        if spec.kind == "counter-max":
            return float(getattr(inst, "value", 0) or 0)
        # gauge-max / gauge-min
        return float(getattr(inst, "value", 0) or 0)

    def evaluate_one(self, spec: SLOSpec) -> SLOResult:
        value = self._measure(spec)
        if spec.kind == "gauge-min":
            burn = _burn_floor(value, spec.target)
        else:
            burn = _burn_ceiling(value, spec.target)
        return SLOResult(spec, value, burn)

    def evaluate(self) -> List[SLOResult]:
        """Evaluate every spec, in catalog order."""
        return [self.evaluate_one(spec) for spec in self.specs]

    # -- reporting ---------------------------------------------------------
    @staticmethod
    def burn_by_class(results: Iterable[SLOResult]) -> Dict[str, float]:
        """Worst (largest) burn per SLO class."""
        worst: Dict[str, float] = {}
        for result in results:
            klass = result.spec.klass
            if result.burn > worst.get(klass, -1.0):
                worst[klass] = result.burn
        return {k: round(worst[k], 4) for k in sorted(worst)}

    @staticmethod
    def hard_failures(results: Iterable[SLOResult]) -> List[SLOResult]:
        return [r for r in results if r.spec.hard and not r.ok]

    def report(self) -> Dict[str, object]:
        """A plain-data evaluation report (JSON-serializable, sorted)."""
        results = self.evaluate()
        return {
            "slos": [r.to_dict() for r in results],
            "burn_by_class": self.burn_by_class(results),
            "violated": sorted(r.spec.name for r in results if not r.ok),
            "hard_failed": sorted(r.spec.name for r in self.hard_failures(results)),
        }


def default_slos(startup_p95_s: float = 0.25,
                 deadline_miss_budget: float = 0.05,
                 jitter_p99_ms: float = 50.0,
                 late_budget: float = 0.10,
                 nodes_floor: Optional[float] = None,
                 cache_hit_floor: Optional[float] = None) -> Tuple[SLOSpec, ...]:
    """The stock SLO catalog over the repo-wide metric names.

    Session startup latency rides ``admission.queue_wait_s`` (the time a
    contract spends queued before its grant), the deadline-miss budget
    rides the disk scheduler's counters, interactive QoS rides the sink
    activities' late-presentation accounting, and the optional
    replication floor rides ``cluster.nodes_live``.  A cache-armed
    scenario passes ``cache_hit_floor`` (e.g. 0.9): the objective is
    expressed as a miss-*ratio* ceiling of ``1 - floor`` over the
    fleet-wide ``cache.misses`` / ``cache.lookups`` counters, so the
    stock ratio burn normalization applies unchanged.
    """
    specs = [
        SLOSpec("session-startup-latency", "histogram-quantile",
                "admission.queue_wait_s", startup_p95_s, quantile=95.0,
                klass="latency", hard=False,
                description="p95 admission queue wait per session start"),
        SLOSpec("deadline-miss-budget", "ratio",
                "storage.deadline_misses", deadline_miss_budget,
                denominator="storage.disk_requests", klass="deadline",
                description="disk reads missing their presentation deadline"),
        SLOSpec("jitter-budget", "histogram-quantile",
                "stream.jitter_ms", jitter_p99_ms, quantile=99.0,
                klass="latency",
                description="p99 inter-element presentation jitter"),
        SLOSpec("interactive-qos-violations", "ratio",
                "stream.late_presentations", late_budget,
                denominator="stream.elements_presented", klass="qos",
                description="late presentations per element presented"),
    ]
    if nodes_floor is not None:
        specs.append(SLOSpec("replication-floor", "gauge-min",
                             "cluster.nodes_live", nodes_floor,
                             klass="capacity", hard=True,
                             description="live storage nodes under the floor"))
    if cache_hit_floor is not None:
        if not 0.0 < cache_hit_floor < 1.0:
            raise WatchError(
                f"cache hit floor must be in (0, 1), got {cache_hit_floor}"
            )
        specs.append(SLOSpec("cache-hit-ratio", "ratio",
                             "cache.misses", round(1.0 - cache_hit_floor, 9),
                             denominator="cache.lookups", klass="capacity",
                             description="fleet-wide cache miss ratio "
                                         "(1 - hit floor)"))
    return tuple(specs)
