"""Named supervision scenarios for ``python -m repro watch``.

Same conventions as the fault/overload/cluster registries: every
scenario builds a fresh simulator inside the caller's ambient
observability scope, is fully determined by its arguments, runs in
virtual time, and returns a flat dict of headline facts.

* ``leak`` — the seeded-bug demo: a debug flag makes reservations
  "forget" to return their bandwidth mid-run; the watchdog's
  reservation-conservation probe catches the leak on its next cadence
  tick, dumps a postmortem bundle, and fails the run fast.
* ``node-kill`` — the cluster failover scenario supervised end-to-end:
  invariants armed over every node, paced viewers riding out a node
  outage via degraded failover admission, and a causal explain chain
  for one failed-over viewer in the facts.
* ``slo-burn`` — a priority-mix overload evaluated against the SLO
  catalog on a virtual-time cadence; the facts report worst error-budget
  burn per SLO class.
* ``cache-crowd`` — a Zipf flash crowd served through the cache tier
  under full supervision: the cache-coherence invariant and the
  boost-restore law (replication back at declared R by teardown) are
  proven by the monitor, and the fleet-wide hit-ratio SLO is evaluated
  on the cadence.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.admission.controller import AdmissionController, Priority, QoSContract
from repro.errors import (
    AdmissionError,
    AdmissionTimeoutError,
    InvariantBreachError,
    PreemptedError,
)
from repro.net.channel import Channel
from repro.sim import Delay, Simulator
from repro.watch.recorder import FlightRecorder
from repro.watch.slo import SLOSpec, default_slos
from repro.watch.watchdog import Watchdog


def leak(seed: int = 0, bundle_dir: Optional[str] = None) -> Dict[str, object]:
    """Catch a seeded bandwidth leak mid-run via invariant monitoring.

    Eight clients cycle through reserve -> stream -> release on one
    trunk.  At t=0.3 the channel's ``debug_leak_releases`` flag is
    switched on, so every release after that marks the reservation
    released but leaves it registered — exactly the bookkeeping bug the
    reservation-conservation probe exists for.  The watchdog catches it
    on the next 50 ms tick, writes a postmortem bundle, and aborts the
    run with :class:`~repro.errors.InvariantBreachError`.
    """
    sim = Simulator()
    trunk = Channel(sim, capacity_bps=10_000_000.0, name="trunk")
    controller = AdmissionController(sim, trunk, max_queue=8)
    rng = random.Random(seed)
    stream_bps, element_bits = 1_500_000.0, 150_000
    arrivals = [round(0.05 * i + rng.uniform(0.0, 0.02), 6) for i in range(8)]
    completed = [0]

    def client(idx: int):
        yield Delay(arrivals[idx])
        contract = QoSContract(stream_bps, Priority.STANDARD,
                               min_fraction=0.5, queue_timeout_s=1.0)
        try:
            reservation = yield from controller.admit(contract,
                                                      label=f"leaky-{idx}")
        except AdmissionError:
            return
        with reservation:
            for _ in range(4):
                yield from reservation.serialize(element_bits)
        completed[0] += 1

    def saboteur():
        # The seeded bug: from t=0.3 on, releases leak their bandwidth.
        yield Delay(0.3)
        trunk.debug_leak_releases = True

    dog = Watchdog(sim, slos=default_slos(), bundle_dir=bundle_dir)
    dog.arm(channels=[trunk], controllers=[controller],
            channels_complete=True)
    dog.start(cadence_s=0.05, horizon_s=2.0)
    for idx in range(8):
        sim.spawn(client(idx), name=f"leaky-{idx}")
    sim.spawn(saboteur(), name="saboteur")
    caught: Optional[InvariantBreachError] = None
    try:
        sim.run()
    except InvariantBreachError as exc:
        caught = exc
    breach = dog.monitor.breaches[0] if dog.monitor.breaches else None
    bundle = dog.recorder.bundles[0] if dog.recorder.bundles else None
    return {
        "caught": caught is not None,
        "breach_invariant": breach.invariant if breach else None,
        "breach_component": breach.component if breach else None,
        "breach_at_s": round(breach.at_s, 3) if breach else None,
        "leaked_reservations": (len(breach.evidence.get("leaked", []))
                                if breach else 0),
        "clients_completed": completed[0],
        "watchdog_ticks": dog.ticks,
        "bundle_sha256": (FlightRecorder.sha256(bundle)
                          if bundle is not None else None),
        "bundles_written": len(dog.bundle_paths),
    }


def node_kill(seed: int = 0, nodes: int = 4,
              bundle_dir: Optional[str] = None) -> Dict[str, object]:
    """Supervised cluster failover with degraded re-admission.

    The cluster node-kill workload, but with tighter NICs (20 Mb/s) and
    a degraded-service floor (``min_fraction=0.25``) so the viewers that
    fail over from the killed node land on congested survivors at
    reduced rate instead of being refused — producing the full causal
    chain (node-down -> retry -> degrade -> failover) the explain CLI
    reconstructs.  The watchdog supervises every node's NIC, controller
    and allocator plus cluster replication; the node is restored at
    t=1.2 so the teardown audit sees replication whole again.
    """
    from repro.cluster.scenarios import Blob, _drain
    from repro.cluster.node import StorageNode
    from repro.cluster.placement import ClusterPlacementManager
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan

    element_bits = 240_000
    elements = 30
    period_s = 0.04
    streams = 12
    values_count = 8
    stream_bps = element_bits / period_s
    kill_at, restore_after = 0.4, 0.8
    victim = "node-1"

    sim = Simulator()
    cluster = ClusterPlacementManager(sim, replication=min(2, nodes))
    for i in range(nodes):
        cluster.add_node(StorageNode(sim, f"node-{i}",
                                     bandwidth_bps=20_000_000.0))
    rng = random.Random(seed)
    values = [Blob(elements * element_bits // 8, stream_bps)
              for _ in range(values_count)]
    for value in values:
        cluster.place(value)
    arrivals = [rng.uniform(0.0, 0.02) for _ in range(streams)]
    delivered = [0] * streams
    violations = [0] * streams

    def client(idx: int):
        yield Delay(arrivals[idx])
        stream = cluster.open_read(
            values[idx % values_count], stream_bps,
            label=f"viewer-{idx}", priority=Priority.STANDARD,
            queue_timeout_s=1.0, min_fraction=0.25)
        with stream:
            start = sim.now.seconds
            for n in range(elements):
                ideal = start + n * period_s
                now = sim.now.seconds
                if now < ideal:
                    yield Delay(ideal - now)
                yield from stream.read(element_bits,
                                       deadline=ideal + period_s)
                if sim.now.seconds > ideal + period_s + 1e-9:
                    violations[idx] += 1
                delivered[idx] += 1

    dog = Watchdog(sim, slos=default_slos(nodes_floor=1.0),
                   bundle_dir=bundle_dir)
    dog.arm(cluster=cluster, channels_complete=True)
    dog.start(cadence_s=0.05, horizon_s=2.5)
    plan = FaultPlan(seed=seed).node_outage(victim, at=kill_at,
                                            duration=restore_after)
    injector = FaultInjector(sim, plan).arm(nodes=cluster.nodes)
    cluster.repair.start()
    for idx in range(streams):
        sim.spawn(client(idx), name=f"viewer-{idx}")
    end = sim.run()
    _drain(sim, cluster)
    report = dog.teardown()
    decisions = sim.obs.decisions
    failed_over = sorted({e.subject for e in decisions.by_kind("failover")})
    degraded = sorted({e.subject for e in decisions.by_kind("degrade")})
    explained = failed_over[0] if failed_over else None
    chain_kinds = ([e.kind for e in decisions.chain(explained)]
                   if explained else [])
    return {
        "nodes": nodes,
        "streams": streams,
        "delivered_elements": sum(delivered),
        "qos_violations": sum(violations),
        "failovers": cluster.failovers,
        "faults_injected": injector.injected,
        "failed_over_sessions": len(failed_over),
        "degraded_sessions": len(degraded),
        "explained_session": explained,
        "explained_chain": "->".join(chain_kinds),
        "invariant_checks": dog.monitor.checks,
        "invariant_breaches": len(dog.monitor.breaches),
        "burn_by_class": report["burn_by_class"],
        "slos_violated": ",".join(report["violated"]) or "none",
        "virtual_seconds": round(end.seconds, 3),
        "stranded_processes": sim.live_processes,
    }


def slo_burn(seed: int = 0,
             bundle_dir: Optional[str] = None) -> Dict[str, object]:
    """Error-budget burn under a priority-mix overload.

    Three background streams fill a 3-stream trunk, then interactive
    and standard requests contend for it.  The watchdog evaluates the
    SLO catalog every 50 ms of virtual time; the facts report the worst
    burn per SLO class, making "how close to the edge did this run get"
    a first-class scenario output.
    """
    del seed  # arrivals are scripted, not drawn
    sim = Simulator()
    stream_bps, element_bits, elements = 2_000_000.0, 200_000, 20
    trunk = Channel(sim, capacity_bps=3 * stream_bps, name="trunk")
    controller = AdmissionController(sim, trunk, max_queue=8)
    stats = {"admitted": 0, "timeouts": 0, "preempted": 0, "completed": 0}

    def client(name: str, arrival_s: float, priority: Priority,
               min_fraction: float, timeout_s: float):
        if arrival_s > sim.now.seconds:
            yield Delay(arrival_s - sim.now.seconds)
        contract = QoSContract(stream_bps, priority, min_fraction, timeout_s)
        try:
            reservation = yield from controller.admit(contract, label=name)
        except AdmissionTimeoutError:
            stats["timeouts"] += 1
            return
        except AdmissionError:
            return
        stats["admitted"] += 1
        start = sim.now.seconds
        period = element_bits / reservation.bps
        try:
            with reservation:
                for i in range(elements):
                    ideal = start + i * period
                    if ideal > sim.now.seconds:
                        yield Delay(ideal - sim.now.seconds)
                    yield from reservation.serialize(element_bits)
        except PreemptedError:
            stats["preempted"] += 1
            return
        stats["completed"] += 1

    slos = list(default_slos(startup_p95_s=0.1)) + [
        SLOSpec("shed-ceiling", "counter-max", "admission.shed", 6,
                klass="capacity",
                description="background work shed under overload"),
        SLOSpec("timeout-ceiling", "counter-max", "admission.timeouts", 2,
                klass="latency",
                description="admission queue deadline expiries"),
    ]
    dog = Watchdog(sim, slos=slos, bundle_dir=bundle_dir)
    dog.arm(channels=[trunk], controllers=[controller],
            channels_complete=True)
    dog.start(cadence_s=0.05, horizon_s=3.0)
    sim.spawn(client("bg-0", 0.000, Priority.BACKGROUND, 0.25, 3.0))
    sim.spawn(client("bg-1", 0.005, Priority.BACKGROUND, 0.25, 3.0))
    sim.spawn(client("bg-2", 0.010, Priority.BACKGROUND, 0.25, 3.0))
    sim.spawn(client("std-0", 0.200, Priority.STANDARD, 0.5, 2.5))
    sim.spawn(client("int-0", 0.500, Priority.INTERACTIVE, 1.0, 0.3))
    sim.spawn(client("int-1", 0.550, Priority.INTERACTIVE, 1.0, 0.3))
    end = sim.run()
    report = dog.teardown()
    burn = report["burn_by_class"]
    return {
        **stats,
        "slo_count": len(slos),
        "burn_by_class": burn,
        "worst_burn": max(burn.values()) if burn else 0.0,
        "slos_violated": ",".join(report["violated"]) or "none",
        "hard_failed": ",".join(report["hard_failed"]) or "none",
        "watchdog_ticks": dog.ticks,
        "virtual_seconds": round(end.seconds, 4),
        "stranded_processes": sim.live_processes,
    }


def cache_crowd(seed: int = 0,
                bundle_dir: Optional[str] = None) -> Dict[str, object]:
    """A supervised Zipf flash crowd through the cache tier.

    A scaled-down ``cache zipf-crowd`` (600 sessions) with the watchdog
    armed over the cluster *and* the tier: every edge NIC/controller
    joins the reservation/consistency probes, the cache-coherence probe
    re-derives version agreement on each 50 ms tick, and teardown
    additionally proves the flash-crowd boost was fully unwound —
    replication back at declared R, no over-replicated shards.  The
    hit-ratio SLO (floor 0.8, as a miss-ratio ceiling) is part of the
    evaluated catalog.
    """
    from repro.cache.scenarios import ELEMENT_BITS, PERIOD_S
    from repro.cache.tier import CacheTier
    from repro.cluster.scenarios import Blob, _build_cluster
    from repro.errors import CacheError, ClusterError, FaultError

    sessions = 600
    elements = 8
    values_count = 12
    viral_share = 0.6
    arrival_window_s = 1.2
    stream_bps = ELEMENT_BITS / PERIOD_S

    sim = Simulator()
    cluster = _build_cluster(sim, 4, replication=2)
    rng = random.Random(seed)
    values = [Blob(elements * ELEMENT_BITS // 8, stream_bps)
              for _ in range(values_count)]
    for value in values:
        cluster.place(value)
    cluster.repair.start()
    tier = CacheTier(sim, cluster, edges=2,
                     edge_bandwidth_bps=320_000_000.0,
                     hot_window_s=0.5, hot_threshold=40)

    weights = [1.0 / rank for rank in range(1, values_count)]
    plans = []
    for _ in range(sessions):
        arrival = rng.uniform(0.0, arrival_window_s)
        if rng.random() < viral_share:
            asset = 0
        else:
            asset = rng.choices(range(1, values_count), weights=weights)[0]
        plans.append((arrival, asset))
    completed = [0]
    failed = [0]

    def session(idx: int):
        arrival, asset = plans[idx]
        yield Delay(arrival)
        stream = tier.open_read(values[asset], stream_bps,
                                label=f"crowd-{idx}",
                                priority=Priority.STANDARD,
                                queue_timeout_s=1.0)
        with stream:
            try:
                for _ in range(elements):
                    yield from stream.read(ELEMENT_BITS)
            except (AdmissionError, FaultError, ClusterError, CacheError):
                failed[0] += 1
                return
        completed[0] += 1

    # Startup budget is crowd-sized: a viewer may buffer behind the
    # admission queue for most of its 1 s timeout before its first
    # element, and that is buffering, not a glitch.
    dog = Watchdog(sim, slos=default_slos(startup_p95_s=0.75,
                                          nodes_floor=1.0,
                                          cache_hit_floor=0.8),
                   bundle_dir=bundle_dir)
    dog.arm(cluster=cluster, tier=tier, channels_complete=True)
    dog.start(cadence_s=0.05, horizon_s=4.0)
    for idx in range(sessions):
        sim.spawn(session(idx), name=f"crowd-{idx}")
    end = sim.run()
    tier.shutdown()
    cluster.shutdown()
    sim.run()
    report = dog.teardown()
    metrics = sim.obs.metrics
    metrics.flush()

    def count(name: str) -> int:
        instrument = metrics.get(name)
        return int(getattr(instrument, "value", 0) or 0)

    lookups = count("cache.lookups")
    decisions = sim.obs.decisions
    # First occurrence of each lifecycle kind, in emission order — a
    # healthy run reads hot -> boost -> cool -> unboost.
    hot_chain: List[str] = []
    for event in decisions.events:
        if event.kind in ("cache-hot", "replica-boost",
                          "cache-cool", "replica-unboost") \
                and event.kind not in hot_chain:
            hot_chain.append(event.kind)
    return {
        "sessions": sessions,
        "completed": completed[0],
        "failed": failed[0],
        "hit_ratio": (round(count("cache.hits") / lookups, 3)
                      if lookups else 0.0),
        "hot_episodes": count("cache.hot_episodes"),
        "replica_boosts": count("cluster.replica_boosts"),
        "replica_unboosts": count("cluster.replica_unboosts"),
        "boost_chain": "->".join(hot_chain[:4]),
        "boosted_at_teardown": sum(
            1 for p in cluster.placements
            if p.replication != p.declared_replication),
        "invariant_checks": dog.monitor.checks,
        "invariant_breaches": len(dog.monitor.breaches),
        "burn_by_class": report["burn_by_class"],
        "slos_violated": ",".join(report["violated"]) or "none",
        "virtual_seconds": round(end.seconds, 3),
        "stranded_processes": sim.live_processes,
    }


SCENARIOS: Dict[str, object] = {
    "leak": leak,
    "node-kill": node_kill,
    "slo-burn": slo_burn,
    "cache-crowd": cache_crowd,
}


def summary_line(name: str, facts: Dict[str, object]) -> str:
    """One deterministic line per run, for rerun diffing in CI."""
    keys: List[str] = sorted(facts)
    body = " ".join(f"{key}={facts[key]}" for key in keys)
    return f"watch {name}: {body}"
