"""Generator-based discrete-event simulation kernel.

A :class:`Simulator` owns a virtual clock (a :class:`~repro.avtime.WorldTime`)
and an event queue.  User code is written as generator functions that yield
*commands*:

``Delay(dt)``
    Suspend the process for ``dt`` virtual seconds.
``WaitEvent(ev)``
    Suspend until ``ev.trigger(payload)`` fires; the yield evaluates to the
    payload.
``WaitProcess(proc)``
    Suspend until another process finishes; evaluates to its return value.
    If the process failed, its error is re-raised at the yield point.
``Timeout(target, seconds)``
    Like ``WaitEvent``/``WaitProcess`` on ``target``, but with a deadline:
    if the target has not completed after ``seconds`` virtual time,
    :class:`~repro.errors.DeadlineExceeded` is raised at the yield point.
``Acquire(res)`` / ``Release(res)``
    Capacity-based resource handshake (see :mod:`repro.sim.resource`).

Processes may also ``yield`` a nested generator, which runs as a subroutine
(its return value becomes the value of the yield; an exception raised by
the subroutine propagates to the caller's yield), so process logic can be
factored into helper generators.

Fault primitives (see :mod:`repro.faults`): ``Process.interrupt(exc)``
throws an exception into a suspended process at the current virtual time
(a *crash* fault); ``Process.abandon()`` wedges a process forever without
completing it (a *hang* fault — its watchers stay blocked, which is what
``Timeout`` defends against).  A process that dies from an
:class:`~repro.errors.Interrupted` or :class:`~repro.errors.FaultError`
is recorded as a *fault* (``sim.process_faults``), not a failure, and
does not abort ``run()`` — so degradation under injected faults can be
measured instead of exploding.

Internally every suspension has an *epoch*: wakeups carry the epoch of
the suspension they belong to and are discarded if the process has since
been resumed by something else (an interrupt, a timeout, an earlier
trigger).  That is what makes asynchronous interruption safe — a stale
event trigger can never resume a process that has already moved on.

Determinism: ties in the event queue break by (time, sequence number), so
identical inputs replay identical schedules — which is what makes the
benchmark harness reproducible.

Observability: every simulator publishes ``sim.*`` metrics to its
:class:`~repro.obs.Obs` (kernel counters are pre-bound, so the per-event
cost is one attribute increment) and, when tracing is enabled, one span
per process covering its whole virtual lifetime.

Hot-path design (see DESIGN.md "Performance"):

* Queue entries are plain 6-tuples ``(time, seq, kind, proc, epoch,
  payload)``.  ``seq`` is unique, so heap comparisons never look past
  ``(time, seq)`` — entry ordering is tuple-cheap and the (time, seq)
  tie-break is structurally identical to the previous implementation.
* Process wakeups carry ``(proc, epoch, value)`` directly instead of a
  per-wakeup closure; staleness is checked inline at dispatch.
* Yielded commands dispatch through a type-keyed table
  (:data:`_COMMAND_CODE`) instead of an ``isinstance`` chain; command
  *subclasses* still work through the fallback path.
* The kernel counts stale wakeups (``Timeout`` timers whose target
  already completed, waiters overtaken by an interrupt) exactly, and
  once ``compact_threshold`` of them accumulate *and* they are the
  majority of the heap, it compacts the heap lazily.  Removed entries
  are remembered by ``(time, seq)`` and charged to
  ``sim.events_dispatched`` at the moment the old kernel would have
  popped them, so metric totals, final virtual times, and therefore
  exported traces stay byte-identical with compaction on or off.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterator, List, Optional, Tuple, Union

from dataclasses import dataclass

from repro.avtime import WorldTime
from repro.errors import DeadlineExceeded, FaultError, Interrupted, SimulationError
from repro.obs import Obs, attach

ProcessGen = Generator[Any, Any, Any]


@dataclass(frozen=True, slots=True)
class Delay:
    """Command: suspend the yielding process for ``seconds`` virtual time."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise SimulationError(f"cannot delay a negative duration ({self.seconds})")


@dataclass(frozen=True, slots=True)
class WaitEvent:
    """Command: suspend until the event triggers."""

    event: "SimEvent"


@dataclass(frozen=True, slots=True)
class WaitProcess:
    """Command: suspend until the process completes."""

    process: "Process"


@dataclass(frozen=True, slots=True)
class Timeout:
    """Command: wait on an event or process, but give up after ``seconds``.

    Evaluates to the event payload / process result when the target
    completes in time; raises :class:`~repro.errors.DeadlineExceeded` at
    the yield point when the deadline passes first.  A target completing
    at *exactly* the deadline loses the tie (the timer was scheduled
    first), which keeps the outcome deterministic.
    """

    target: Union["SimEvent", "Process"]
    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise SimulationError(f"cannot time out after a negative duration ({self.seconds})")


@dataclass(frozen=True, slots=True)
class Acquire:
    """Command: acquire ``amount`` units of a resource, queueing if needed."""

    resource: Any
    amount: int = 1


@dataclass(frozen=True, slots=True)
class Release:
    """Command: release ``amount`` units of a resource."""

    resource: Any
    amount: int = 1


class SimEvent:
    """A one-shot event processes can wait on.

    ``trigger(payload)`` wakes every waiter; late waiters (waiting after
    the trigger) resume immediately with the same payload.
    """

    __slots__ = ("simulator", "name", "_triggered", "_payload", "_waiters")

    def __init__(self, simulator: "Simulator", name: str = "") -> None:
        self.simulator = simulator
        self.name = name
        self._triggered = False
        self._payload: Any = None
        self._waiters: List[Tuple[Process, int]] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def payload(self) -> Any:
        return self._payload

    def trigger(self, payload: Any = None) -> None:
        """Fire the event once, waking every waiter with ``payload``."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._payload = payload
        self.simulator._m_triggered.inc()
        waiters, self._waiters = self._waiters, []
        for proc, epoch in waiters:
            self.simulator._schedule_resume(proc, payload, epoch=epoch)

    def _add_waiter(self, proc: "Process") -> None:
        if self._triggered:
            self.simulator._schedule_resume(proc, self._payload)
        else:
            self._waiters.append((proc, proc._epoch))


class Process:
    """A running simulation process wrapping a user generator."""

    __slots__ = ("simulator", "name", "_gen", "_stack", "done", "result", "error",
                 "_watchers", "_span", "_epoch", "_abandoned", "_inflight")

    def __init__(self, simulator: "Simulator", gen: ProcessGen, name: str) -> None:
        self.simulator = simulator
        self.name = name
        self._gen = gen
        # Stack of generators for subroutine calls (yield <generator>).
        self._stack: list[ProcessGen] = [gen]
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._watchers: List[Tuple[Process, int]] = []
        self._span = None  # lifetime trace span, set by spawn()
        # Suspension epoch: incremented on every resume; pending wakeups
        # from a previous suspension are discarded (see module docstring).
        self._epoch = 0
        self._abandoned = False
        # Number of queued wakeups that target the *current* epoch; when
        # the epoch bumps they all become stale and are handed over to
        # the simulator's stale count (compaction bookkeeping).
        self._inflight = 0

    @property
    def abandoned(self) -> bool:
        return self._abandoned

    def interrupt(self, error: Optional[BaseException] = None) -> None:
        """Throw ``error`` into the process at the current virtual time.

        The default is a fresh :class:`~repro.errors.Interrupted`.  The
        exception is raised at the process's current yield point; the
        process may catch it (cleanup, retry) or die from it — an
        uncaught ``Interrupted``/``FaultError`` is recorded as a fault,
        not a simulation failure.  No-op on a finished process.
        """
        if self.done or self._abandoned:
            return
        sim = self.simulator
        exc = error if error is not None else Interrupted(
            f"process {self.name!r} interrupted"
        )

        def fire() -> None:
            if not self.done and not self._abandoned:
                sim._step(self, None, throw=exc)

        sim._push(sim._now, fire)

    def abandon(self) -> None:
        """Wedge the process forever (a simulated hang).

        The process never completes: its watchers are never woken and its
        pending wakeups are discarded.  Dependents waiting with plain
        ``WaitProcess`` will deadlock — exactly the failure mode
        ``Timeout`` exists to bound.  Counted as ``sim.process_faults``.
        """
        if self.done or self._abandoned:
            return
        self._abandoned = True
        self._epoch += 1  # invalidate any pending wakeup
        sim = self.simulator
        if self._inflight:
            sim._stale += self._inflight
            self._inflight = 0
            sim._maybe_compact()
        sim.live_processes -= 1
        sim._m_faults.inc()
        if self._span is not None:
            self._span.end(error="abandoned")
            self._span = None

    def _add_watcher(self, proc: "Process") -> None:
        if self.done:
            if self.error is not None:
                self.simulator._schedule_throw(proc, self.error, proc._epoch)
            else:
                self.simulator._schedule_resume(proc, self.result)
        else:
            self._watchers.append((proc, proc._epoch))

    def __repr__(self) -> str:
        state = ("done" if self.done
                 else "abandoned" if self._abandoned else "running")
        return f"Process({self.name!r}, {state})"


# Queue-entry kinds (index 2 of the 6-tuple).
_RESUME = 0   # payload = value sent into the generator
_THROW = 1    # payload = exception thrown at the yield point
_CALL = 2     # payload = plain callable (proc is None, never stale)

#: queue entry: (time, seq, kind, proc, epoch, payload).  ``seq`` is
#: unique per simulator, so tuple comparison stops at (time, seq) and the
#: remaining elements never need to be comparable.
_QueueEntry = Tuple[float, int, int, Optional["Process"], int, Any]

# Type-keyed command dispatch (exact types; subclasses take the fallback).
_CMD_DELAY = 1
_CMD_WAIT_EVENT = 2
_CMD_WAIT_PROCESS = 3
_CMD_TIMEOUT = 4
_CMD_ACQUIRE = 5
_CMD_RELEASE = 6

_COMMAND_CODE = {
    Delay: _CMD_DELAY,
    WaitEvent: _CMD_WAIT_EVENT,
    WaitProcess: _CMD_WAIT_PROCESS,
    Timeout: _CMD_TIMEOUT,
    Acquire: _CMD_ACQUIRE,
    Release: _CMD_RELEASE,
}


def _COMMAND_FALLBACK(command: Any) -> int:
    """Resolve command subclasses (rare path) and memoize their type."""
    for base, code in _COMMAND_CODE.items():
        if isinstance(command, base):
            _COMMAND_CODE[type(command)] = code
            return code
    return 0  # unsupported


class EpochTicker:
    """Handle for a repeating callable registered with
    :meth:`Simulator.schedule_every`.

    The herd layer advances vectorized client populations on a fixed
    epoch cadence *alongside* the discrete event loop: each tick is an
    ordinary queue entry, so foreground processes scheduled at the same
    instant interleave deterministically by ``(time, seq)``.  The
    action receives the zero-based tick index; ``cancel()`` stops the
    cadence (the pending entry becomes a no-op), and an action raising
    ``StopIteration`` stops it from the inside.
    """

    __slots__ = ("simulator", "interval_s", "action", "until_s",
                 "ticks", "cancelled")

    def __init__(self, simulator: "Simulator", interval_s: float,
                 action: Callable[[int], Any],
                 until_s: Optional[float]) -> None:
        if interval_s <= 0:
            raise SimulationError(
                f"epoch interval must be positive, got {interval_s}")
        self.simulator = simulator
        self.interval_s = interval_s
        self.action = action
        self.until_s = until_s
        self.ticks = 0
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def _fire(self) -> None:
        if self.cancelled:
            return
        try:
            self.action(self.ticks)
        except StopIteration:
            self.cancelled = True
            return
        self.ticks += 1
        next_at = self.simulator._now + self.interval_s
        if self.until_s is not None and next_at > self.until_s + 1e-12:
            self.cancelled = True
            return
        self.simulator._push(next_at, self._fire)


class Simulator:
    """The event loop: virtual clock + priority queue of pending actions."""

    #: compact the heap once at least this many stale entries accumulate
    #: (and they are the majority of the heap).  Large enough that small
    #: simulations never pay the rebuild, small enough that timeout-heavy
    #: workloads cannot grow the heap without bound.
    compact_threshold = 512

    def __init__(self, obs: Optional[Obs] = None) -> None:
        self._queue: list[_QueueEntry] = []
        self._seq = 0
        self._now = 0.0
        #: stale wakeups currently sitting in the heap (exact count).
        self._stale = 0
        #: (time, seq) of compacted-away entries not yet charged to
        #: ``sim.events_dispatched`` (see ``_account_compacted``).
        self._compacted: list[Tuple[float, int]] = []
        #: lifetime compaction stats (plain attributes, deliberately not
        #: registry metrics so snapshots stay identical to the
        #: pre-compaction kernel).
        self.heap_compactions = 0
        self.entries_compacted = 0
        #: number of spawned processes that have not finished (nor been
        #: abandoned) — bounded bookkeeping; finished processes are not
        #: retained by the kernel.
        self.live_processes = 0
        #: the first non-fault process error, recorded at finish time and
        #: re-raised by every subsequent ``run()``.
        self._first_failure: Optional[BaseException] = None
        #: observers of the first failure — called exactly once, at the
        #: moment ``_first_failure`` is recorded, while the dying
        #: process's state is still inspectable.  Supervisors (the
        #: watchdog) use this to leave postmortem evidence for crashes
        #: that would otherwise only surface as a raise from ``run()``.
        self._failure_hooks: List[Callable[[Process, BaseException], None]] = []
        self.obs = attach(obs)
        self.obs.tracer.bind_clock(lambda: self._now)
        self.obs.decisions.bind_clock(lambda: self._now)
        # Pre-bound tracer: the disabled-tracing check in spawn() is one
        # attribute load instead of two.
        self._tracer = self.obs.tracer
        metrics = self.obs.metrics
        self._m_dispatched = metrics.counter("sim.events_dispatched")
        self._m_spawned = metrics.counter("sim.processes_spawned")
        self._m_finished = metrics.counter("sim.processes_finished")
        self._m_failures = metrics.counter("sim.process_failures")
        self._m_faults = metrics.counter("sim.process_faults")
        self._m_triggered = metrics.counter("sim.events_triggered")

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> WorldTime:
        """Current virtual world time."""
        return WorldTime(self._now)

    # -- public API ------------------------------------------------------
    def event(self, name: str = "") -> SimEvent:
        return SimEvent(self, name)

    def spawn(self, gen: ProcessGen, name: str = "process") -> Process:
        """Register a generator as a process, starting at the current time."""
        if not isinstance(gen, Iterator):
            raise SimulationError(f"spawn() requires a generator, got {type(gen).__name__}")
        proc = Process(self, gen, name)
        self.live_processes += 1
        self._m_spawned.inc()
        tracer = self._tracer
        if tracer.enabled:
            proc._span = tracer.begin(name, "sim.process", track=name)
        self._schedule_resume(proc, None)
        return proc

    def add_failure_hook(
            self, hook: Callable[["Process", BaseException], None]) -> None:
        """Observe the run's *first* non-fault process failure.

        ``hook(process, error)`` fires once, synchronously, when the
        failure is recorded — before ``run()`` re-raises it.  A hook
        that itself raises is swallowed: supervision must never mask
        the original failure.
        """
        self._failure_hooks.append(hook)

    def schedule_at(self, when: WorldTime, action: Callable[[], None]) -> None:
        """Run a plain callable at virtual time ``when``."""
        if when.seconds < self._now:
            raise SimulationError(f"cannot schedule in the past ({when!r} < now {self.now!r})")
        self._push(when.seconds, action)

    def schedule_every(self, interval_s: float, action: Callable[[int], Any],
                       until: Optional[WorldTime] = None,
                       start_at: Optional[WorldTime] = None) -> EpochTicker:
        """Run ``action(tick_index)`` every ``interval_s`` virtual seconds.

        The epoch tick hook: a fixed cadence advanced through the same
        event queue as every process, so per-epoch batch work (the herd
        coupler) and per-event discrete work interleave
        deterministically.  The first tick fires at ``start_at``
        (default: now); ticks stop after ``until``, on
        :meth:`EpochTicker.cancel`, or when the action raises
        ``StopIteration``.  Returns the :class:`EpochTicker` handle.
        """
        first = self._now if start_at is None else start_at.seconds
        if first < self._now:
            raise SimulationError(
                f"cannot start an epoch cadence in the past "
                f"({first} < now {self._now})")
        ticker = EpochTicker(self, interval_s,
                             action, until.seconds if until else None)
        self._push(first, ticker._fire)
        return ticker

    def run(self, until: Optional[WorldTime] = None) -> WorldTime:
        """Run until the queue drains or the clock passes ``until``.

        Returns the final virtual time.  If any process raised (other
        than dying from an injected fault), the first such failure
        propagates after being recorded on the process.
        """
        limit = until.seconds if until is not None else None
        queue = self._queue
        step = self._step
        m_inc = self._m_dispatched.inc
        while queue:
            entry = queue[0]
            etime = entry[0]
            if limit is not None and etime > limit:
                if self._compacted:
                    self._account_compacted_drain(limit)
                self._now = limit
                break
            heappop(queue)
            if self._compacted:
                self._account_compacted(etime, entry[1])
            self._now = etime
            m_inc()
            kind = entry[2]
            if kind == _CALL:
                entry[5]()
            else:
                proc = entry[3]
                if (entry[4] == proc._epoch and not proc.done
                        and not proc._abandoned):
                    proc._inflight -= 1
                    if kind == _RESUME:
                        step(proc, entry[5])
                    else:
                        step(proc, None, entry[5])
                else:
                    self._stale -= 1
        else:
            # Queue drained: the old kernel would have popped any stale
            # entries still pending, advancing the clock and the dispatch
            # count — settle the compacted remainder the same way.
            if self._compacted:
                self._account_compacted_drain(limit)
            if limit is not None:
                self._now = max(self._now, limit)
        if self._first_failure is not None:
            raise self._first_failure
        return self.now

    def run_until_complete(self, proc: Process) -> Any:
        """Run until ``proc`` finishes; return its result."""
        queue = self._queue
        step = self._step
        m_inc = self._m_dispatched.inc
        while not proc.done and queue:
            entry = heappop(queue)
            if self._compacted:
                self._account_compacted(entry[0], entry[1])
            self._now = entry[0]
            m_inc()
            kind = entry[2]
            if kind == _CALL:
                entry[5]()
            else:
                target = entry[3]
                if (entry[4] == target._epoch and not target.done
                        and not target._abandoned):
                    target._inflight -= 1
                    if kind == _RESUME:
                        step(target, entry[5])
                    else:
                        step(target, None, entry[5])
                else:
                    self._stale -= 1
        if not proc.done and self._compacted:
            self._account_compacted_drain(None)
        if proc.error is not None:
            raise proc.error
        if not proc.done:
            raise SimulationError(f"queue drained before {proc!r} completed (deadlock?)")
        return proc.result

    # -- internals ---------------------------------------------------------
    def _push(self, time: float, action: Callable[[], None]) -> None:
        """Queue a plain callable (never stale, never compacted)."""
        self._seq += 1
        heappush(self._queue, (time, self._seq, _CALL, None, 0, action))

    def _schedule_resume(self, proc: Process, value: Any, delay: float = 0.0,
                         epoch: Optional[int] = None) -> None:
        """Schedule ``proc`` to resume with ``value``.

        ``epoch`` is the suspension the wakeup belongs to (default: the
        current one); the wakeup is dropped if the process has since been
        resumed by something else.
        """
        wake_epoch = proc._epoch if epoch is None else epoch
        self._seq += 1
        heappush(self._queue,
                 (self._now + delay, self._seq, _RESUME, proc, wake_epoch, value))
        if wake_epoch == proc._epoch and not proc.done and not proc._abandoned:
            proc._inflight += 1
        else:
            # Stale on arrival (e.g. an event trigger racing an interrupt).
            self._stale += 1
            self._maybe_compact()

    def _schedule_throw(self, proc: Process, exc: BaseException,
                        epoch: int, delay: float = 0.0) -> None:
        """Schedule ``exc`` to be raised at ``proc``'s yield point."""
        self._seq += 1
        heappush(self._queue,
                 (self._now + delay, self._seq, _THROW, proc, epoch, exc))
        if epoch == proc._epoch and not proc.done and not proc._abandoned:
            proc._inflight += 1
        else:
            self._stale += 1
            self._maybe_compact()

    # -- lazy heap compaction ---------------------------------------------
    def _maybe_compact(self) -> None:
        """Compact once stale entries pass the threshold *and* dominate."""
        if (self._stale >= self.compact_threshold
                and self._stale * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Drop every stale wakeup from the heap in one pass.

        The removed entries' ``(time, seq)`` keys are kept so their
        dispatch-count contribution (a no-op pop in the old kernel) can
        be charged at exactly the point the old kernel would have popped
        them — see ``_account_compacted`` — keeping ``sim.*`` metrics
        and final clock values identical with or without compaction.
        """
        queue = self._queue
        live: list = []
        compacted = self._compacted
        for entry in queue:
            proc = entry[3]
            if (proc is None or (entry[4] == proc._epoch and not proc.done
                                 and not proc._abandoned)):
                live.append(entry)
            else:
                heappush(compacted, (entry[0], entry[1]))
        removed = len(queue) - len(live)
        queue[:] = live
        heapq.heapify(queue)
        self.heap_compactions += 1
        self.entries_compacted += removed
        self._stale = 0

    def _account_compacted(self, time: float, seq: int) -> None:
        """Charge compacted entries the old kernel would have popped
        strictly before the entry now being dispatched."""
        compacted = self._compacted
        key = (time, seq)
        n = 0
        while compacted and compacted[0] < key:
            heappop(compacted)
            n += 1
        if n:
            self._m_dispatched.inc(n)

    def _account_compacted_drain(self, limit: Optional[float]) -> None:
        """Settle compacted entries at the end of a run.

        With no ``limit`` the old kernel would have popped every pending
        entry (advancing the clock to the last one); with a ``limit`` it
        would have popped only those scheduled at or before it.
        """
        compacted = self._compacted
        n = 0
        last_time = None
        while compacted and (limit is None or compacted[0][0] <= limit):
            last_time = heappop(compacted)[0]
            n += 1
        if n:
            self._m_dispatched.inc(n)
            if limit is None and last_time > self._now:
                self._now = last_time

    def _step(self, proc: Process, send_value: Any,
              throw: Optional[BaseException] = None) -> None:
        if proc.done or proc._abandoned:
            return
        proc._epoch += 1
        inflight = proc._inflight
        if inflight:
            # Every wakeup queued for the previous suspension is stale now.
            self._stale += inflight
            proc._inflight = 0
            self._maybe_compact()
        stack = proc._stack
        command_code = _COMMAND_CODE.get
        while True:
            gen = stack[-1]
            try:
                if throw is not None:
                    exc, throw = throw, None
                    command = gen.throw(exc)
                else:
                    command = gen.send(send_value)
            except StopIteration as stop:
                stack.pop()
                if stack:
                    # Subroutine returned: resume the caller with its value.
                    send_value = stop.value
                    continue
                self._finish(proc, stop.value, None)
                return
            except BaseException as exc:  # noqa: BLE001 - recorded / propagated
                stack.pop()
                if stack:
                    # Subroutine raised: propagate into the caller, which
                    # may catch it at its yield point.
                    throw = exc
                    send_value = None
                    continue
                self._finish(proc, None, exc)
                return
            code = command_code(type(command))
            if code is None:
                if isinstance(command, Iterator):
                    stack.append(command)
                    send_value = None
                    continue
                code = _COMMAND_FALLBACK(command)
            if code == _CMD_DELAY:
                # Inlined _schedule_resume: the wakeup is for the epoch
                # just entered, so it is live by construction.
                proc._inflight += 1
                self._seq += 1
                heappush(self._queue, (self._now + command.seconds, self._seq,
                                       _RESUME, proc, proc._epoch, None))
                return
            if code == _CMD_WAIT_EVENT:
                command.event._add_waiter(proc)
                return
            if code == _CMD_WAIT_PROCESS:
                command.process._add_watcher(proc)
                return
            if code == _CMD_TIMEOUT:
                epoch = proc._epoch
                target = command.target
                if isinstance(target, Process):
                    target._add_watcher(proc)
                else:
                    target._add_waiter(proc)
                self._schedule_throw(
                    proc,
                    DeadlineExceeded(
                        f"timed out after {command.seconds:g}s waiting for "
                        f"{getattr(target, 'name', target)!r}"
                    ),
                    epoch, delay=command.seconds,
                )
                return
            if code == _CMD_ACQUIRE:
                command.resource._acquire(proc, command.amount)
                return
            if code == _CMD_RELEASE:
                command.resource._release(command.amount)
                send_value = None
                continue
            self._finish(
                proc,
                None,
                SimulationError(f"process {proc.name!r} yielded unsupported command {command!r}"),
            )
            return

    def _finish(self, proc: Process, result: Any, error: Optional[BaseException]) -> None:
        proc.done = True
        proc.result = result
        proc.error = error
        self.live_processes -= 1
        self._m_finished.inc()
        if error is not None:
            if isinstance(error, (FaultError, Interrupted)):
                # An injected fault killed the process: expected, measured,
                # and never escalated to a run() abort.
                self._m_faults.inc()
            else:
                self._m_failures.inc()
                if self._first_failure is None:
                    self._first_failure = error
                    for hook in self._failure_hooks:
                        try:
                            hook(proc, error)
                        except Exception:
                            pass
        if proc._span is not None:
            proc._span.end() if error is None else proc._span.end(error=repr(error))
            proc._span = None
        watchers, proc._watchers = proc._watchers, []
        for watcher, epoch in watchers:
            if error is not None:
                self._schedule_throw(watcher, error, epoch)
            else:
                self._schedule_resume(watcher, result, epoch=epoch)
