"""Generator-based discrete-event simulation kernel.

A :class:`Simulator` owns a virtual clock (a :class:`~repro.avtime.WorldTime`)
and an event queue.  User code is written as generator functions that yield
*commands*:

``Delay(dt)``
    Suspend the process for ``dt`` virtual seconds.
``WaitEvent(ev)``
    Suspend until ``ev.trigger(payload)`` fires; the yield evaluates to the
    payload.
``WaitProcess(proc)``
    Suspend until another process finishes; evaluates to its return value.
``Acquire(res)`` / ``Release(res)``
    Capacity-based resource handshake (see :mod:`repro.sim.resource`).

Processes may also ``yield`` a nested generator, which runs as a subroutine
(its return value becomes the value of the yield), so process logic can be
factored into helper generators.

Determinism: ties in the event queue break by (time, sequence number), so
identical inputs replay identical schedules — which is what makes the
benchmark harness reproducible.

Observability: every simulator publishes ``sim.*`` metrics to its
:class:`~repro.obs.Obs` (kernel counters are pre-bound, so the per-event
cost is one attribute increment) and, when tracing is enabled, one span
per process covering its whole virtual lifetime.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterator, Optional

from repro.avtime import WorldTime
from repro.errors import SimulationError
from repro.obs import Obs, attach

ProcessGen = Generator[Any, Any, Any]


@dataclass(frozen=True, slots=True)
class Delay:
    """Command: suspend the yielding process for ``seconds`` virtual time."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise SimulationError(f"cannot delay a negative duration ({self.seconds})")


@dataclass(frozen=True, slots=True)
class WaitEvent:
    """Command: suspend until the event triggers."""

    event: "SimEvent"


@dataclass(frozen=True, slots=True)
class WaitProcess:
    """Command: suspend until the process completes."""

    process: "Process"


@dataclass(frozen=True, slots=True)
class Acquire:
    """Command: acquire ``amount`` units of a resource, queueing if needed."""

    resource: Any
    amount: int = 1


@dataclass(frozen=True, slots=True)
class Release:
    """Command: release ``amount`` units of a resource."""

    resource: Any
    amount: int = 1


class SimEvent:
    """A one-shot event processes can wait on.

    ``trigger(payload)`` wakes every waiter; late waiters (waiting after
    the trigger) resume immediately with the same payload.
    """

    __slots__ = ("simulator", "name", "_triggered", "_payload", "_waiters")

    def __init__(self, simulator: "Simulator", name: str = "") -> None:
        self.simulator = simulator
        self.name = name
        self._triggered = False
        self._payload: Any = None
        self._waiters: list[Process] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def payload(self) -> Any:
        return self._payload

    def trigger(self, payload: Any = None) -> None:
        """Fire the event once, waking every waiter with ``payload``."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._payload = payload
        self.simulator._m_triggered.inc()
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.simulator._schedule_resume(proc, payload)

    def _add_waiter(self, proc: "Process") -> None:
        if self._triggered:
            self.simulator._schedule_resume(proc, self._payload)
        else:
            self._waiters.append(proc)


class Process:
    """A running simulation process wrapping a user generator."""

    __slots__ = ("simulator", "name", "_gen", "_stack", "done", "result", "error",
                 "_watchers", "_span")

    def __init__(self, simulator: "Simulator", gen: ProcessGen, name: str) -> None:
        self.simulator = simulator
        self.name = name
        self._gen = gen
        # Stack of generators for subroutine calls (yield <generator>).
        self._stack: list[ProcessGen] = [gen]
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._watchers: list[Process] = []
        self._span = None  # lifetime trace span, set by spawn()

    def _add_watcher(self, proc: "Process") -> None:
        if self.done:
            self.simulator._schedule_resume(proc, self.result)
        else:
            self._watchers.append(proc)

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return f"Process({self.name!r}, {state})"


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


class Simulator:
    """The event loop: virtual clock + priority queue of pending actions."""

    def __init__(self, obs: Optional[Obs] = None) -> None:
        self._queue: list[_QueueEntry] = []
        self._seq = 0
        self._now = 0.0
        self._processes: list[Process] = []
        self.obs = attach(obs)
        self.obs.tracer.bind_clock(lambda: self._now)
        metrics = self.obs.metrics
        self._m_dispatched = metrics.counter("sim.events_dispatched")
        self._m_spawned = metrics.counter("sim.processes_spawned")
        self._m_finished = metrics.counter("sim.processes_finished")
        self._m_failures = metrics.counter("sim.process_failures")
        self._m_triggered = metrics.counter("sim.events_triggered")

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> WorldTime:
        """Current virtual world time."""
        return WorldTime(self._now)

    # -- public API ------------------------------------------------------
    def event(self, name: str = "") -> SimEvent:
        return SimEvent(self, name)

    def spawn(self, gen: ProcessGen, name: str = "process") -> Process:
        """Register a generator as a process, starting at the current time."""
        if not isinstance(gen, Iterator):
            raise SimulationError(f"spawn() requires a generator, got {type(gen).__name__}")
        proc = Process(self, gen, name)
        self._processes.append(proc)
        self._m_spawned.inc()
        if self.obs.tracer.enabled:
            proc._span = self.obs.tracer.begin(name, "sim.process", track=name)
        self._schedule_resume(proc, None)
        return proc

    def schedule_at(self, when: WorldTime, action: Callable[[], None]) -> None:
        """Run a plain callable at virtual time ``when``."""
        if when.seconds < self._now:
            raise SimulationError(f"cannot schedule in the past ({when!r} < now {self.now!r})")
        self._push(when.seconds, action)

    def run(self, until: Optional[WorldTime] = None) -> WorldTime:
        """Run until the queue drains or the clock passes ``until``.

        Returns the final virtual time.  If any process raised, the first
        failure propagates after being recorded on the process.
        """
        limit = until.seconds if until is not None else None
        while self._queue:
            entry = self._queue[0]
            if limit is not None and entry.time > limit:
                self._now = limit
                break
            heapq.heappop(self._queue)
            self._now = entry.time
            self._m_dispatched.inc()
            entry.action()
        else:
            if limit is not None:
                self._now = max(self._now, limit)
        failed = next((p for p in self._processes if p.error is not None), None)
        if failed is not None:
            raise failed.error
        return self.now

    def run_until_complete(self, proc: Process) -> Any:
        """Run until ``proc`` finishes; return its result."""
        while not proc.done and self._queue:
            entry = heapq.heappop(self._queue)
            self._now = entry.time
            self._m_dispatched.inc()
            entry.action()
        if proc.error is not None:
            raise proc.error
        if not proc.done:
            raise SimulationError(f"queue drained before {proc!r} completed (deadlock?)")
        return proc.result

    # -- internals ---------------------------------------------------------
    def _push(self, time: float, action: Callable[[], None]) -> None:
        self._seq += 1
        heapq.heappush(self._queue, _QueueEntry(time, self._seq, action))

    def _schedule_resume(self, proc: Process, value: Any, delay: float = 0.0) -> None:
        self._push(self._now + delay, lambda: self._step(proc, value))

    def _step(self, proc: Process, send_value: Any) -> None:
        if proc.done:
            return
        while True:
            gen = proc._stack[-1]
            try:
                command = gen.send(send_value)
            except StopIteration as stop:
                proc._stack.pop()
                if proc._stack:
                    # Subroutine returned: resume the caller with its value.
                    send_value = stop.value
                    continue
                self._finish(proc, stop.value, None)
                return
            except BaseException as exc:  # noqa: BLE001 - recorded and re-raised by run()
                self._finish(proc, None, exc)
                return
            if isinstance(command, Delay):
                self._schedule_resume(proc, None, command.seconds)
                return
            if isinstance(command, WaitEvent):
                command.event._add_waiter(proc)
                return
            if isinstance(command, WaitProcess):
                command.process._add_watcher(proc)
                return
            if isinstance(command, Acquire):
                command.resource._acquire(proc, command.amount)
                return
            if isinstance(command, Release):
                command.resource._release(command.amount)
                send_value = None
                continue
            if isinstance(command, Iterator):
                proc._stack.append(command)
                send_value = None
                continue
            self._finish(
                proc,
                None,
                SimulationError(f"process {proc.name!r} yielded unsupported command {command!r}"),
            )
            return

    def _finish(self, proc: Process, result: Any, error: Optional[BaseException]) -> None:
        proc.done = True
        proc.result = result
        proc.error = error
        self._m_finished.inc()
        if error is not None:
            self._m_failures.inc()
        if proc._span is not None:
            proc._span.end() if error is None else proc._span.end(error=repr(error))
            proc._span = None
        watchers, proc._watchers = proc._watchers, []
        for watcher in watchers:
            self._schedule_resume(watcher, result)
