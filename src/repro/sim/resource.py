"""Capacity-based simulation resources.

``SimResource`` models anything with finite concurrent capacity inside the
simulation — a device that admits one stream, a channel with N reserved
slots, a buffer pool.  Processes interact with it through the kernel's
``Acquire``/``Release`` commands; waiters queue FIFO, which models the
paper's observation that "client requests can tie up resources ... for
significant periods of time" and lets the benchmarks measure those waits.

Each acquisition that had to queue publishes its virtual wait time to the
``sim.resource_wait_s`` histogram (see :mod:`repro.obs`).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Tuple

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Process, Simulator


class SimResource:
    """A counted resource with FIFO queueing.

    Attributes
    ----------
    capacity:
        Total units available.
    in_use:
        Units currently held.
    """

    __slots__ = ("simulator", "name", "capacity", "in_use", "_waiters",
                 "wait_count", "grant_count", "_m_waits", "_m_wait_s", "_m_grants")

    def __init__(self, simulator: "Simulator", capacity: int, name: str = "resource") -> None:
        if capacity <= 0:
            raise SimulationError(f"resource capacity must be positive, got {capacity}")
        self.simulator = simulator
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        # (process, amount, queued_at, suspension epoch); the epoch lets
        # _release() skip waiters that were interrupted while queued
        # instead of granting capacity to a process that moved on.
        self._waiters: Deque[Tuple["Process", int, float, int]] = deque()
        self.wait_count = 0  # number of acquisitions that had to queue
        self.grant_count = 0
        metrics = simulator.obs.metrics
        self._m_waits = metrics.counter("sim.resource_waits")
        self._m_grants = metrics.counter("sim.resource_grants")
        self._m_wait_s = metrics.histogram("sim.resource_wait_s")

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def would_block(self, amount: int = 1) -> bool:
        return amount > self.available or bool(self._waiters)

    # -- kernel protocol ---------------------------------------------------
    def _acquire(self, proc: "Process", amount: int) -> None:
        if amount <= 0 or amount > self.capacity:
            raise SimulationError(
                f"cannot acquire {amount} units of {self.name!r} (capacity {self.capacity})"
            )
        if not self._waiters and amount <= self.available:
            self.in_use += amount
            self.grant_count += 1
            self._m_grants.inc()
            self._m_wait_s.observe(0.0)
            self.simulator._schedule_resume(proc, None)
        else:
            self.wait_count += 1
            self._m_waits.inc()
            self._waiters.append((proc, amount, self.simulator._now, proc._epoch))

    def _release(self, amount: int) -> None:
        if amount <= 0 or amount > self.in_use:
            raise SimulationError(
                f"cannot release {amount} units of {self.name!r} ({self.in_use} in use)"
            )
        self.in_use -= amount
        while self._waiters:
            proc, want, queued_at, epoch = self._waiters[0]
            if proc.done or proc._abandoned or proc._epoch != epoch:
                # Interrupted (or wedged) while queued: the claim lapses.
                self._waiters.popleft()
                continue
            if want > self.available:
                break
            self._waiters.popleft()
            self.in_use += want
            self.grant_count += 1
            self._m_grants.inc()
            self._m_wait_s.observe(self.simulator._now - queued_at)
            self.simulator._schedule_resume(proc, None, epoch=epoch)

    def __repr__(self) -> str:
        return f"SimResource({self.name!r}, {self.in_use}/{self.capacity} in use)"
