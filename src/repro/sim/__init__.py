"""Discrete-event simulation (DES) kernel.

Every temporal behaviour in this reproduction — stream pacing, device
transfers, network channels, synchronization jitter — runs in *virtual*
world time on this kernel.  That substitutes deterministically for the
real-time hardware the paper assumes (see DESIGN.md section 2) while
exercising identical scheduling logic.

The kernel is a generator-based coroutine scheduler: a *process* is a
Python generator that yields scheduling primitives (:class:`Delay`,
:class:`WaitEvent`, :class:`Acquire`...) and is resumed when they
complete.
"""

from repro.sim.kernel import (
    Acquire,
    Delay,
    EpochTicker,
    Process,
    Release,
    SimEvent,
    Simulator,
    Timeout,
    WaitEvent,
    WaitProcess,
)
from repro.sim.resource import SimResource

__all__ = [
    "Simulator",
    "Process",
    "SimEvent",
    "SimResource",
    "Delay",
    "EpochTicker",
    "WaitEvent",
    "WaitProcess",
    "Timeout",
    "Acquire",
    "Release",
]
