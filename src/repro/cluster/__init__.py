"""Scale-out storage cluster tier (ROADMAP: sharding, multi-backend).

``repro.cluster`` distributes the single-machine storage stack across N
simulated :class:`~repro.cluster.node.StorageNode`s:

* shard placement by rendezvous hashing with replication factor R
  (:class:`~repro.cluster.placement.ClusterPlacementManager`);
* reads routed to the least-loaded live replica through per-node
  admission controllers, with mid-stream failover on node death
  (:class:`~repro.cluster.placement.ClusterStream`);
* background re-replication and join-rebalancing under a bandwidth cap
  (:class:`~repro.cluster.repair.RepairManager`).

Everything is deterministic and runs in virtual time; see
``python -m repro cluster <scenario>`` and
``benchmarks/bench_cluster_scaling.py``.
"""

from repro.cluster.hashing import rank, score, top
from repro.cluster.node import StorageNode
from repro.cluster.placement import (
    ClusterPlacement,
    ClusterPlacementManager,
    ClusterShard,
    ClusterStream,
)
from repro.cluster.repair import RepairManager
from repro.cluster.scenarios import SCENARIOS, summary_line

__all__ = [
    "ClusterPlacement", "ClusterPlacementManager", "ClusterShard",
    "ClusterStream", "RepairManager", "StorageNode",
    "SCENARIOS", "summary_line",
    "rank", "score", "top",
]
