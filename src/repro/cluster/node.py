"""One storage node of the scale-out cluster tier.

A :class:`StorageNode` bundles the existing single-machine storage stack
into a unit the cluster can kill, restore, and route around:

* a :class:`~repro.storage.devices.MagneticDisk` for capacity and extent
  allocation;
* a started :class:`~repro.storage.scheduler.DiskScheduler` as the
  node's single timed data path (head seeks + transfer time);
* a NIC :class:`~repro.net.channel.Channel` whose bandwidth a per-node
  :class:`~repro.admission.controller.AdmissionController` arbitrates
  between interactive streams and background repair traffic.

``kill()`` models a whole-node outage: the scheduler stops, which fails
every queued request with
:class:`~repro.errors.SchedulerStoppedError` — a :class:`FaultError` —
so in-flight cluster reads surface a retryable failure and fail over to
a surviving replica instead of deadlocking.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.admission.controller import AdmissionController
from repro.net.channel import Channel
from repro.sim import Simulator
from repro.storage.devices import MagneticDisk
from repro.storage.extents import Extent
from repro.storage.scheduler import DiskScheduler, Policy


class StorageNode:
    """A named cluster member: disk + scheduler + admission-controlled NIC."""

    def __init__(self, simulator: Simulator, name: str,
                 capacity_bytes: int = 2_000_000_000,
                 bandwidth_bps: float = 48_000_000.0,
                 policy: Policy = Policy.CSCAN,
                 cylinders: int = 1000,
                 seek_per_cylinder_s: float = 0.00002,
                 max_queue: int = 32) -> None:
        self.simulator = simulator
        self.name = name
        self.device = MagneticDisk(simulator, f"{name}.disk",
                                   capacity_bytes=capacity_bytes,
                                   bandwidth_bps=bandwidth_bps)
        self.scheduler = DiskScheduler(simulator, policy=policy,
                                       cylinders=cylinders,
                                       seek_per_cylinder_s=seek_per_cylinder_s,
                                       transfer_bps=bandwidth_bps)
        self.scheduler.start()
        self.nic = Channel(simulator, bandwidth_bps, name=f"{name}.nic")
        self.admission = AdmissionController(simulator, self.nic,
                                             max_queue=max_queue, name=name)
        self.live = True
        self.bits_read = 0
        self.deaths = 0
        #: optional per-node BlockCache, attached by repro.cache.attach_caches.
        #: ClusterStream._read_span consults it before queueing disk reads.
        self.block_cache = None
        #: cluster hooks, wired by ClusterPlacementManager.add_node.
        self.on_down: Optional[Callable[["StorageNode"], None]] = None
        self.on_up: Optional[Callable[["StorageNode"], None]] = None

    @property
    def available(self) -> bool:
        """Can this node serve reads right now?

        ``live`` covers whole-node kills; ``scheduler.running`` also
        catches scheduler-outage faults injected below the node level.
        """
        return self.live and self.scheduler.running

    @property
    def load_key(self):
        """Deterministic routing sort key: least loaded first, name-tied.

        Every component here is a live O(1) counter: the admission
        queue depth and disk queue depth are incremented synchronously
        with enqueue, and ``utilization`` divides the controller's own
        reserved-bps ledger.  Crucially none of it reads the metrics
        snapshot — NIC traffic accounting is *batched* behind
        MetricsRegistry flush hooks (PR 4), so a snapshot-derived score
        lags the crowd by a flush interval and keeps routing new
        readers at the replica that was idle one snapshot ago.  The
        disk queue depth is what actually sees a flash crowd first:
        admitted readers stack up in the C-SCAN queue long before NIC
        reservations saturate.  ``in_service`` counts the request the
        scheduler already picked — a disk mid-transfer is load even
        when nothing is queued behind it.
        """
        return (self.admission.queue_depth + self.scheduler.queue_depth
                + self.scheduler.in_service,
                self.admission.utilization, self.name)

    def position_of(self, extent: Extent, byte_offset: int = 0) -> int:
        """Map a byte inside an extent to a scheduler head position."""
        capacity = self.device.allocator.capacity_bytes
        byte_pos = min(extent.offset + byte_offset, capacity - 1)
        return min(self.scheduler.cylinders - 1,
                   byte_pos * self.scheduler.cylinders // capacity)

    def account_read(self, bits: int) -> None:
        self.bits_read += bits
        self.device.total_bits_read += bits
        self.device._m_bits_read.inc(bits)

    def kill(self) -> None:
        """Whole-node outage: stop serving, fail queued requests."""
        if not self.live:
            return
        self.live = False
        self.deaths += 1
        self.scheduler.stop()
        if self.on_down is not None:
            self.on_down(self)

    def restore(self) -> None:
        """Bring a killed node back; its extents (and data) survive."""
        if self.live:
            return
        self.live = True
        if not self.scheduler.running:
            self.scheduler.start()
        if self.on_up is not None:
            self.on_up(self)

    def stop(self) -> None:
        """Shut the node down cleanly (scenario teardown)."""
        if self.scheduler.running:
            self.scheduler.stop()

    def __repr__(self) -> str:
        state = "live" if self.available else "down"
        return (f"StorageNode({self.name!r}, {state}, "
                f"depth={self.admission.queue_depth}, "
                f"util={self.admission.utilization:.0%})")
