"""Background re-replication and rebalancing, under a bandwidth cap.

When a node dies, every shard it held drops below its replication
factor.  The :class:`RepairManager` runs as a kick-driven DES worker:
membership changes (node down, node up) kick it awake, it scans for
under-replicated shards, and it copies each one to the next
rendezvous-ranked live node.

Repair traffic is deliberately second-class:

* the copy admits itself on *both* the source and destination nodes'
  admission controllers at :class:`~repro.admission.controller.Priority`
  ``BACKGROUND``, capped at ``cap_bps`` — so an interactive stream can
  preempt it, and past the high-watermark it is shed outright;
* a shed/preempted copy backs off (virtual time) and retries; after
  ``max_attempts`` the shard is deferred until the next membership kick.

That is the invariant the node-kill benchmark gates: repair restores R
without ever starving an admitted interactive stream.

``rebalance()`` reuses the same capped copy path to move shards onto a
newly joined node (and drop the now-surplus lowest-ranked replicas), so
join traffic is bounded exactly like repair traffic.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Set, Tuple

from repro.admission.controller import Priority, QoSContract
from repro.cluster import hashing
from repro.errors import (
    AdmissionError,
    ClusterError,
    FaultError,
    NodeDownError,
    PreemptedError,
)
from repro.sim import Delay, Process, SimEvent, WaitEvent


class RepairManager:
    """Restores replication factor R with background, capped copies."""

    def __init__(self, cluster, cap_bps: float = 12_000_000.0,
                 chunk_bits: int = 1_000_000,
                 max_attempts: int = 4,
                 backoff_s: float = 0.02) -> None:
        if cap_bps <= 0:
            raise ClusterError(f"repair cap must be positive, got {cap_bps}")
        self.cluster = cluster
        self.cap_bps = cap_bps
        self.chunk_bits = chunk_bits
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.repairs = 0
        self.repaired_bits = 0
        metrics = cluster.simulator.obs.metrics
        self._m_repairs = metrics.counter("cluster.repairs")
        self._m_repair_bits = metrics.counter("cluster.repair_bits")
        self._m_trimmed = metrics.counter("cluster.trimmed")
        self._m_rebalanced = metrics.counter("cluster.rebalanced")
        self._m_trim_deferred = metrics.counter("cluster.trim_deferred")
        self._m_boosts = metrics.counter("cluster.replica_boosts")
        self._m_unboosts = metrics.counter("cluster.replica_unboosts")
        self._proc: Optional[Process] = None
        self._kick_event: Optional[SimEvent] = None
        self._stopping = False
        #: shard keys whose repair failed its attempt budget; skipped
        #: until the next membership kick (prevents a retry spin).
        self._deferred: Set[str] = set()
        #: shard keys whose trim found a replica with attached readers;
        #: reader_detached() kicks the worker when the last one leaves.
        self._trim_waiting: Set[str] = set()

    # -- lifecycle -----------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._proc is not None and not self._proc.done

    def start(self) -> None:
        """Spawn the repair worker (idempotent)."""
        if self.running:
            return
        self._stopping = False
        self._proc = self.cluster.simulator.spawn(self._run(),
                                                  name="cluster-repair")

    def kick(self) -> None:
        """Membership changed: re-scan (and forgive deferred shards)."""
        self._deferred.clear()
        if self._kick_event is not None and not self._kick_event.triggered:
            self._kick_event.trigger()

    def stop(self) -> None:
        """Ask the worker to exit at its next scan point."""
        self._stopping = True
        if self._kick_event is not None and not self._kick_event.triggered:
            self._kick_event.trigger()

    # -- the worker ----------------------------------------------------------
    def _work(self) -> List[Tuple[object, object, str]]:
        todo = [(placement, shard, "repair")
                for placement, shard in self.cluster.under_replicated()
                if shard.key not in self._deferred]
        todo += [(placement, shard, "trim")
                 for placement, shard in self.cluster.over_replicated()
                 if shard.key not in self._deferred]
        return todo

    def _run(self) -> Generator:
        while True:
            if self._stopping:
                return
            work = self._work()
            if not work:
                self._kick_event = self.cluster.simulator.event("repair-kick")
                yield WaitEvent(self._kick_event)
                self._kick_event = None
                continue
            for placement, shard, action in work:
                if self._stopping:
                    return
                try:
                    if action == "repair":
                        yield from self._repair_shard(placement, shard)
                    else:
                        self._trim_shard(placement, shard)
                except (FaultError, AdmissionError, ClusterError):
                    self._deferred.add(shard.key)

    def _repair_shard(self, placement, shard) -> Generator:
        """Copy a shard to a new node, backing off when shed/preempted."""
        attempts = 0
        while True:
            try:
                target = self._pick_target(shard)
                yield from self.copy_shard(placement, shard, target)
                self.repairs += 1
                self._m_repairs.inc()
                return
            except (AdmissionError, FaultError):
                attempts += 1
                if attempts >= self.max_attempts:
                    raise
                yield Delay(self.backoff_s * 2 ** (attempts - 1))

    def _pick_target(self, shard):
        """Next rendezvous-ranked live node that can hold the shard."""
        for name in hashing.rank(shard.key, sorted(self.cluster._nodes)):
            if name in shard.replicas:
                continue
            node = self.cluster._nodes[name]
            if not node.available:
                continue
            if node.device.allocator.largest_free_extent < shard.nbytes:
                continue
            return node
        raise ClusterError(
            f"no live node can host a new replica of {shard.key!r} "
            f"({shard.nbytes} bytes)"
        )

    def copy_shard(self, placement, shard, target) -> Generator:
        """DES subroutine: one capped, admission-controlled shard copy.

        Reads from the least-loaded live holder and writes to ``target``,
        chunked so a mid-copy preemption or node death aborts promptly
        (freeing the half-written extent) instead of completing on a
        corpse.
        """
        cluster = self.cluster
        sources = cluster._route(shard)
        if not sources:
            raise NodeDownError(
                f"no live source replica of {shard.key!r} to repair from"
            )
        src = sources[0]
        extent = target.device.allocate(shard.nbytes)
        contract = QoSContract(self.cap_bps, Priority.BACKGROUND,
                               min_fraction=0.25, queue_timeout_s=0.001)
        tracer = cluster.simulator.obs.tracer
        try:
            src_res = src.admission.try_admit(
                contract, label=f"repair:{shard.key}:read")
            try:
                dst_res = target.admission.try_admit(
                    contract, label=f"repair:{shard.key}:write")
                try:
                    rate = min(src_res.bps, dst_res.bps)
                    span = tracer.begin(
                        "cluster.repair", "cluster", track="repair",
                        shard=shard.key, src=src.name, dst=target.name,
                    ) if tracer.enabled else None
                    try:
                        bits_left = shard.nbytes * 8
                        while bits_left > 0:
                            if not src.available or not target.available:
                                raise NodeDownError(
                                    f"repair of {shard.key!r} lost "
                                    f"{src.name if not src.available else target.name!r}"
                                )
                            if src_res.preempted or dst_res.preempted:
                                raise PreemptedError(
                                    f"repair of {shard.key!r} preempted by "
                                    f"interactive work"
                                )
                            chunk = min(self.chunk_bits, bits_left)
                            yield Delay(chunk / rate)
                            bits_left -= chunk
                            self.repaired_bits += chunk
                            self._m_repair_bits.inc(chunk)
                            src.device.total_bits_read += chunk
                            src.device._m_bits_read.inc(chunk)
                            target.device.total_bits_written += chunk
                            target.device._m_bits_written.inc(chunk)
                    finally:
                        if span is not None:
                            span.end()
                finally:
                    dst_res.release()
            finally:
                src_res.release()
        except BaseException:
            target.device.free(extent)
            raise
        shard.replicas[target.name] = extent
        cluster._refresh_health()

    def _trim_shard(self, placement, shard) -> None:
        """Drop the lowest-ranked surplus live replicas (post-restore).

        A replica an in-flight ClusterStream is positioned on is never
        freed under it (that would turn a routine trim into a data-path
        error).  Busy replicas defer: the shard parks in ``_deferred``
        (so the worker loop does not spin on it) and in
        ``_trim_waiting``; the stream's detach hook kicks us when the
        last reader leaves.
        """
        live = self.cluster.live_replicas(shard)
        deferred = False
        for name in hashing.rank(shard.key, live)[placement.replication:]:
            if shard.readers.get(name, 0) > 0:
                deferred = True
                continue
            extent = shard.replicas.pop(name)
            self.cluster._nodes[name].device.free(extent)
            self._m_trimmed.inc()
        if deferred:
            self._deferred.add(shard.key)
            self._trim_waiting.add(shard.key)
            self._m_trim_deferred.inc()
        self.cluster._refresh_health()

    def reader_detached(self, shard) -> None:
        """A ClusterStream left a replica; finish any trim waiting on it."""
        if shard.key in self._trim_waiting:
            self._trim_waiting.discard(shard.key)
            self.kick()

    # -- flash-crowd replication boost ---------------------------------------
    def boost(self, placement, extra: int = 1) -> int:
        """Temporarily raise a hot placement's replication factor.

        The raise is bounded by live membership; the repair worker then
        treats every shard as under-replicated and fills the gap with
        the usual capped BACKGROUND copies.  Callers *must* pair this
        with :meth:`unboost` once the crowd passes — the watch layer's
        teardown probe holds ``replication`` to ``declared_replication``.
        """
        target = min(placement.declared_replication + extra,
                     len(self.cluster.live_nodes))
        if target <= placement.replication:
            return placement.replication
        placement.replication = target
        self._m_boosts.inc()
        decisions = self.cluster._decisions
        if decisions.enabled:
            decisions.emit("replica-boost", placement.key, actor="repair",
                           replication=target,
                           declared=placement.declared_replication)
        self.cluster._refresh_health()
        self.kick()
        return target

    def unboost(self, placement) -> int:
        """Restore a boosted placement to its declared replication."""
        declared = placement.declared_replication
        if placement.replication == declared:
            return declared
        placement.replication = declared
        self._m_unboosts.inc()
        decisions = self.cluster._decisions
        if decisions.enabled:
            decisions.emit("replica-unboost", placement.key, actor="repair",
                           replication=declared)
        self.cluster._refresh_health()
        self.kick()
        return declared

    # -- rebalance after join ------------------------------------------------
    def rebalance(self) -> Generator:
        """DES subroutine: move shards onto newly joined nodes.

        Re-derives each shard's rendezvous top-R over the current live
        membership, copies (capped, background) to desired nodes that
        lack a replica, then frees live replicas that fell out of the
        top-R.  Returns the number of shard copies moved.
        """
        cluster = self.cluster
        moved = 0
        live_names = [node.name for node in cluster.live_nodes]
        for placement in cluster.placements:
            for shard in placement.shards:
                desired = hashing.top(shard.key, live_names,
                                      placement.replication)
                for name in desired:
                    if name in shard.replicas:
                        continue
                    yield from self.copy_shard(placement, shard,
                                               cluster._nodes[name])
                    moved += 1
                for name in cluster.live_replicas(shard):
                    if name not in desired:
                        if shard.readers.get(name, 0) > 0:
                            # Same rule as _trim_shard: never free a
                            # replica under an attached reader; the
                            # detach hook re-kicks the trim.
                            self._deferred.add(shard.key)
                            self._trim_waiting.add(shard.key)
                            self._m_trim_deferred.inc()
                            continue
                        extent = shard.replicas.pop(name)
                        cluster._nodes[name].device.free(extent)
                        self._m_trimmed.inc()
        self._m_rebalanced.inc(moved)
        cluster._refresh_health()
        return moved
