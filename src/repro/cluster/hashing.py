"""Rendezvous (highest-random-weight) hashing for shard placement.

Every (shard key, node name) pair gets a deterministic pseudo-random
score; a shard's replicas live on the R highest-scoring nodes.  The two
properties that matter for a storage cluster fall out directly:

* **balance** — scores are uniform, so shards spread evenly without a
  central directory;
* **minimal reshuffle** — adding a node only moves the shards whose new
  top-R set includes it; removing a node only re-homes the shards it
  held.  No other placement changes, which is what keeps
  rebalance-after-join traffic proportional to the capacity change.

Scores come from SHA-256, *not* the built-in ``hash()`` — Python
randomizes string hashing per process, which would make placement differ
between runs and break every determinism guarantee in this repo.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence


def score(key: str, node: str) -> int:
    """The rendezvous weight of ``node`` for ``key`` (64-bit, stable)."""
    digest = hashlib.sha256(f"{key}|{node}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def rank(key: str, nodes: Sequence[str]) -> List[str]:
    """Node names ordered best-first for ``key`` (ties broken by name)."""
    return sorted(nodes, key=lambda name: (-score(key, name), name))


def top(key: str, nodes: Sequence[str], r: int) -> List[str]:
    """The ``r`` highest-weight nodes for ``key``."""
    return rank(key, nodes)[:r]
