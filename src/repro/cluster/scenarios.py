"""Named cluster scenarios for the ``python -m repro cluster`` CLI.

Same conventions as the fault and overload scenario registries: every
scenario builds a fresh simulator inside the caller's ambient
observability scope, is fully determined by ``(seed, nodes)``, runs in
virtual time, and returns a flat dict of headline facts.

* ``read-storm`` — a fixed read workload (16 unpaced streams over 8
  values) against an N-node cluster; the headline fact is aggregate
  read throughput, which the scaling benchmark compares across N.
* ``node-kill`` — 12 paced (25 elements/s) streams at R=2 while a
  fault plan kills a node mid-stream; in-flight reads fail over to
  surviving replicas and background repair restores R under its cap.
* ``rebalance`` — a loaded 3-node cluster gains a fourth node;
  ``rebalance()`` moves the rendezvous-desired shards over (capped,
  background) and trims the surplus replicas.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.admission.controller import Priority
from repro.sim import Delay, Simulator


class Blob:
    """A minimal stored value: a size and a nominal rate.

    Cluster scenarios shard synthetic values by size; nothing below the
    placement layer cares about media semantics, so this stands in for a
    :class:`~repro.values.base.MediaValue` (duck-typed: the placement
    manager only calls ``data_size_bits``).
    """

    def __init__(self, nbytes: int, rate_bps: float) -> None:
        self._nbytes = nbytes
        self._rate_bps = rate_bps

    def data_size_bits(self) -> int:
        return self._nbytes * 8

    def data_rate_bps(self) -> float:
        return self._rate_bps


def _build_cluster(sim: Simulator, nodes: int, replication: int,
                   repair_bps_cap: float = 12_000_000.0):
    from repro.cluster.node import StorageNode
    from repro.cluster.placement import ClusterPlacementManager

    cluster = ClusterPlacementManager(
        sim, replication=min(replication, nodes),
        repair_bps_cap=repair_bps_cap)
    for i in range(nodes):
        cluster.add_node(StorageNode(sim, f"node-{i}"))
    return cluster


def _drain(sim: Simulator, cluster) -> None:
    """Stop node servers and the repair worker so the run fully drains."""
    cluster.shutdown()
    sim.run()


def read_storm(seed: int = 0, nodes: int = 4) -> Dict[str, object]:
    """A fixed unpaced read workload; throughput scales with nodes.

    The workload (streams, values, bytes) does not depend on ``nodes``,
    so running it at 1 and 4 nodes measures scale-out directly.
    """
    element_bits = 240_000
    elements = 30
    streams = 16
    values_count = 8
    stream_bps = 6_000_000.0

    sim = Simulator()
    cluster = _build_cluster(sim, nodes, replication=2)
    rng = random.Random(seed)
    values = [Blob(elements * element_bits // 8, stream_bps)
              for _ in range(values_count)]
    for value in values:
        cluster.place(value)
    arrivals = [rng.uniform(0.0, 0.02) for _ in range(streams)]
    done_bits = [0] * streams
    done_at = [0.0] * streams

    def client(idx: int):
        yield Delay(arrivals[idx])
        stream = cluster.open_read(
            values[idx % values_count], stream_bps,
            label=f"storm-{idx}", priority=Priority.STANDARD,
            queue_timeout_s=10.0)
        with stream:
            for _ in range(elements):
                yield from stream.read(element_bits)
            done_bits[idx] = stream.bits_read
            done_at[idx] = sim.now.seconds

    for idx in range(streams):
        sim.spawn(client(idx), name=f"storm-client-{idx}")
    end = sim.run()
    total_bits = sum(done_bits)
    # Throughput over the last client's finish, not the drain time: a
    # queued admission leaves a stale Timeout timer in the heap that
    # advances the clock long after the work is done.
    finished = max(done_at) if any(done_at) else end.seconds
    _drain(sim, cluster)
    return {
        "nodes": nodes,
        "streams": streams,
        "streams_completed": sum(1 for bits in done_bits if bits > 0),
        "total_megabits": round(total_bits / 1e6, 3),
        "throughput_mbps": round(total_bits / finished / 1e6, 2),
        "failovers": cluster.failovers,
        "last_finish_s": round(finished, 3),
        "virtual_seconds": round(end.seconds, 3),
        "stranded_processes": sim.live_processes,
    }


def node_kill(seed: int = 0, nodes: int = 4) -> Dict[str, object]:
    """Kill a node under 12 paced streams at R=2; fail over and repair.

    A stream's element is "on time" when it completes within one period
    of its ideal presentation instant (the client holds one period of
    buffer); the benchmark gates that failover costs zero such
    violations.
    """
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan

    element_bits = 240_000
    elements = 40
    period_s = 0.04
    streams = 12
    values_count = 8
    stream_bps = element_bits / period_s
    kill_at = 0.4
    victim = "node-1"

    sim = Simulator()
    cluster = _build_cluster(sim, nodes, replication=2)
    rng = random.Random(seed)
    values = [Blob(elements * element_bits // 8, stream_bps)
              for _ in range(values_count)]
    for value in values:
        cluster.place(value)
    arrivals = [rng.uniform(0.0, 0.02) for _ in range(streams)]
    delivered = [0] * streams
    violations = [0] * streams

    def client(idx: int):
        yield Delay(arrivals[idx])
        stream = cluster.open_read(
            values[idx % values_count], stream_bps,
            label=f"viewer-{idx}", priority=Priority.STANDARD,
            queue_timeout_s=1.0)
        with stream:
            start = sim.now.seconds
            for n in range(elements):
                ideal = start + n * period_s
                now = sim.now.seconds
                if now < ideal:
                    yield Delay(ideal - now)
                yield from stream.read(element_bits,
                                       deadline=ideal + period_s)
                if sim.now.seconds > ideal + period_s + 1e-9:
                    violations[idx] += 1
                delivered[idx] += 1

    plan = FaultPlan(seed=seed).node_outage(victim, at=kill_at)
    injector = FaultInjector(sim, plan).arm(nodes=cluster.nodes)
    cluster.repair.start()
    for idx in range(streams):
        sim.spawn(client(idx), name=f"viewer-{idx}")
    end = sim.run()
    under = len(cluster.under_replicated())
    _drain(sim, cluster)
    return {
        "nodes": nodes,
        "streams": streams,
        "delivered_elements": sum(delivered),
        "qos_violations": sum(violations),
        "failovers": cluster.failovers,
        "faults_injected": injector.injected,
        "node_deaths": sum(node.deaths for node in cluster.nodes),
        "repairs": cluster.repair.repairs,
        "repair_megabits": round(cluster.repair.repaired_bits / 1e6, 3),
        "under_replicated": under,
        "virtual_seconds": round(end.seconds, 3),
        "stranded_processes": sim.live_processes,
    }


def rebalance(seed: int = 0, nodes: int = 3) -> Dict[str, object]:
    """Join a node to a loaded cluster and rebalance onto it."""
    element_bits = 240_000
    elements = 20
    values_count = 12
    stream_bps = 6_000_000.0

    sim = Simulator()
    cluster = _build_cluster(sim, nodes, replication=2)
    rng = random.Random(seed)
    values = [Blob(elements * element_bits // 8, stream_bps)
              for _ in range(values_count)]
    for value in values:
        cluster.place(value, shards=2)

    def replica_counts() -> Dict[str, int]:
        counts = {node.name: 0 for node in cluster.nodes}
        for placement in cluster.placements:
            for shard in placement.shards:
                for name in shard.replicas:
                    counts[name] = counts.get(name, 0) + 1
        return counts

    before = replica_counts()
    # A couple of paced readers keep running across the join, showing
    # rebalance traffic rides the background class under them.
    violations = [0, 0]
    offsets = [rng.uniform(0.0, 0.02) for _ in range(2)]

    def reader(idx: int):
        yield Delay(offsets[idx])
        stream = cluster.open_read(
            values[idx], stream_bps, label=f"reader-{idx}",
            priority=Priority.INTERACTIVE, queue_timeout_s=1.0)
        with stream:
            start = sim.now.seconds
            for n in range(elements):
                ideal = start + n * 0.04
                now = sim.now.seconds
                if now < ideal:
                    yield Delay(ideal - now)
                yield from stream.read(element_bits)
                if sim.now.seconds > ideal + 0.04 + 1e-9:
                    violations[idx] += 1

    from repro.cluster.node import StorageNode

    moved = [0]

    def join_and_rebalance():
        yield Delay(0.1)
        cluster.add_node(StorageNode(sim, f"node-{nodes}"))
        moved[0] = yield from cluster.repair.rebalance()

    for idx in range(2):
        sim.spawn(reader(idx), name=f"reader-{idx}")
    sim.spawn(join_and_rebalance(), name="join-rebalance")
    end = sim.run()
    after = replica_counts()
    joined = after.get(f"node-{nodes}", 0)
    under = len(cluster.under_replicated())
    _drain(sim, cluster)
    return {
        "nodes_before": nodes,
        "nodes_after": nodes + 1,
        "moved_shards": moved[0],
        "replicas_on_new_node": joined,
        "max_replicas_before": max(before.values()),
        "max_replicas_after": max(after.values()),
        "reader_qos_violations": sum(violations),
        "under_replicated": under,
        "virtual_seconds": round(end.seconds, 3),
        "stranded_processes": sim.live_processes,
    }


SCENARIOS: Dict[str, object] = {
    "read-storm": read_storm,
    "node-kill": node_kill,
    "rebalance": rebalance,
}


def summary_line(name: str, facts: Dict[str, object]) -> str:
    """One deterministic line per run, for rerun diffing in CI."""
    keys: List[str] = sorted(facts)
    body = " ".join(f"{key}={facts[key]}" for key in keys)
    return f"cluster {name}: {body}"
