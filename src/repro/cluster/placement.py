"""Sharded, replicated placement across storage nodes.

The single-pool :class:`~repro.storage.placement.PlacementManager` makes
placement client-visible on one machine; this module scales the same
idea out.  A value is split into contiguous shards, each shard is placed
on the R highest-rendezvous-weight nodes
(:mod:`repro.cluster.hashing`), and reads are routed to the least-loaded
*live* replica — queue-depth aware, through each node's
:class:`~repro.admission.controller.AdmissionController`.

Failover is the point: a :class:`ClusterStream` wraps every span read in
:func:`~repro.faults.recovery.with_retries`, so when the serving node
dies mid-stream (its scheduler fails the request with a
:class:`~repro.errors.FaultError`) the retry reconnects to a surviving
replica and the client sees latency, not an error — the paper's "copy
… so time-consuming as to destroy any sense of interactivity" replaced
by a placement that already holds the copy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.admission.controller import Priority, QoSContract
from repro.cluster import hashing
from repro.cluster.node import StorageNode
from repro.errors import (
    AdmissionError,
    ClusterError,
    FaultError,
    NodeDownError,
    OutOfSpaceError,
    PlacementError,
)
from repro.faults.recovery import RetryPolicy, with_retries
from repro.net.channel import Reservation
from repro.sim import Delay, Simulator
from repro.storage.extents import Extent
from repro.values.base import MediaValue


@dataclass
class ClusterShard:
    """One contiguous slice of a value, replicated across nodes."""

    key: str
    index: int
    offset: int                      # byte offset within the value
    nbytes: int
    replicas: Dict[str, Extent] = field(default_factory=dict)
    #: node name -> count of ClusterStreams currently connected to that
    #: replica.  RepairManager trim/rebalance must not free an extent a
    #: live reader is positioned on; a busy replica defers its trim
    #: until the last reader detaches (see RepairManager._trim_shard).
    readers: Dict[str, int] = field(default_factory=dict)

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


@dataclass
class ClusterPlacement:
    """Where one value's shards live across the cluster."""

    value_id: int
    key: str
    nbytes: int
    replication: int
    shards: List[ClusterShard]
    #: the R the client declared at place() time.  ``replication`` may
    #: be raised above it temporarily (RepairManager.boost, flash
    #: crowds) but must return to this value once the crowd passes —
    #: the watch layer's teardown probe holds the cluster to it.
    declared_replication: int = 0
    #: authoritative content version.  Bumped by
    #: ClusterPlacementManager.bump_version when the source value
    #: changes; caches tag every block with the version they filled at
    #: and must never serve a block whose tag lags this number.
    version: int = 0

    def shard_at(self, byte_offset: int) -> ClusterShard:
        index = min(byte_offset // self.shards[0].nbytes,
                    len(self.shards) - 1)
        shard = self.shards[index]
        if not shard.offset <= byte_offset < shard.end:  # uneven last shard
            for shard in self.shards:
                if shard.offset <= byte_offset < shard.end:
                    break
        return shard


class ClusterStream:
    """A failover-capable read stream over one placed value.

    Satisfies the ``io_stream`` read protocol: ``read(bits)`` is a DES
    subroutine.  The stream admits itself on the serving node's
    controller (holding a NIC reservation for its contracted rate) and
    re-admits on a surviving replica whenever the current node dies, the
    reservation is preempted, or a span read fails with a
    :class:`~repro.errors.FaultError`.
    """

    def __init__(self, cluster: "ClusterPlacementManager",
                 placement: ClusterPlacement, bps: float, label: str,
                 priority: Priority, queue_timeout_s: float,
                 min_fraction: float = 1.0) -> None:
        self.cluster = cluster
        self.simulator = cluster.simulator
        self.placement = placement
        self.bps = bps
        self.label = label
        self.priority = priority
        self.queue_timeout_s = queue_timeout_s
        #: degraded-service floor forwarded into the per-node QoS
        #: contract: 1.0 (default) keeps the historical all-or-nothing
        #: admission; below 1.0 a congested failover target may admit
        #: the stream at reduced rate instead of refusing it.
        self.min_fraction = min_fraction
        self.bits_read = 0
        self.failovers = 0
        self.closed = False
        self._pos_bits = 0
        self._node: Optional[StorageNode] = None
        self._reservation: Optional[Reservation] = None
        self._shard: Optional[ClusterShard] = None
        self._lost = False

    @property
    def serving_node(self) -> Optional[str]:
        return self._node.name if self._node is not None else None

    @property
    def exhausted(self) -> bool:
        return self._pos_bits >= self.placement.nbytes * 8

    def seek(self, bit_offset: int) -> None:
        """Reposition the stream (cache tiers read-through at an offset)."""
        if not 0 <= bit_offset <= self.placement.nbytes * 8:
            raise ClusterError(
                f"seek to bit {bit_offset} outside {self.placement.key!r}"
            )
        self._pos_bits = bit_offset

    def read(self, bits: int, deadline: Optional[float] = None) -> Generator:
        """DES subroutine: read ``bits`` from the stream position."""
        if self.closed:
            raise ClusterError(f"stream {self.label!r} is closed")
        total_bits = self.placement.nbytes * 8
        if self._pos_bits + bits > total_bits:
            raise ClusterError(
                f"stream {self.label!r} read past end of "
                f"{self.placement.key!r} ({self._pos_bits + bits} of "
                f"{total_bits} bits)"
            )
        remaining = bits
        while remaining > 0:
            shard = self.placement.shard_at(self._pos_bits // 8)
            span = min(remaining, shard.end * 8 - self._pos_bits)
            yield from self._read_span(shard, span, deadline)
            remaining -= span
        self.bits_read += bits
        self.cluster._m_reads.inc()
        self.cluster._m_read_bits.inc(bits)

    def _read_span(self, shard: ClusterShard, bits: int,
                   deadline: Optional[float]) -> Generator:
        def attempt() -> Generator:
            yield from self._ensure(shard)
            node = self._node
            extent = shard.replicas.get(node.name)
            if extent is None:
                # The replica vanished between routing and reading
                # (trimmed or rebalanced away): treat the connection as
                # lost so the retry re-routes to a surviving replica.
                self._lost = True
                raise NodeDownError(
                    f"replica of {shard.key!r} on {node.name!r} was "
                    f"removed mid-stream"
                )
            byte_off = self._pos_bits // 8 - shard.offset
            span_bytes = (bits + 7) // 8
            version = self.placement.version
            cache = node.block_cache
            if (cache is not None
                    and cache.get(shard.key, byte_off, span_bytes, version)):
                # Block-cache hit: the extent bytes are already in node
                # memory, so the read skips the disk queue entirely and
                # streams out at NIC burst rate.
                yield Delay(bits / node.nic.capacity_bps)
                node.account_read(bits)
                return
            position = node.position_of(extent, byte_off)
            try:
                yield from node.scheduler.read(position, bits, deadline)
            except FaultError:
                # The serving node (or its scheduler) died under us:
                # mark the connection lost so the retry reconnects.
                self._lost = True
                raise
            node.account_read(bits)
            if cache is not None:
                cache.put(shard.key, byte_off, span_bytes, version)

        yield from with_retries(self.simulator, attempt,
                                self.cluster.retry_policy, label=self.label)
        self._pos_bits += bits

    def _ensure(self, shard: ClusterShard) -> Generator:
        """Connect (or reconnect) to the best live replica of ``shard``."""
        if (self._shard is shard and self._node is not None
                and not self._lost and self._node.available
                and self._reservation is not None
                and not self._reservation.released
                and not self._reservation.preempted):
            return
        prev = (self._node.name
                if self._shard is shard and self._node is not None else None)
        self._disconnect()
        candidates = self.cluster._route(shard)
        if not candidates:
            raise NodeDownError(
                f"no live replica of shard {shard.key!r} "
                f"(placed on {sorted(shard.replicas)})"
            )
        last_error: Optional[BaseException] = None
        for node in candidates:
            contract = QoSContract(self.bps, self.priority,
                                   min_fraction=self.min_fraction,
                                   queue_timeout_s=max(self.queue_timeout_s,
                                                       0.001))
            try:
                if self.queue_timeout_s > 0:
                    reservation = yield from node.admission.admit(
                        contract, label=self.label)
                else:
                    reservation = node.admission.try_admit(
                        contract, label=self.label)
            except AdmissionError as exc:
                last_error = exc
                continue
            self._node, self._reservation = node, reservation
            self._shard, self._lost = shard, False
            shard.readers[node.name] = shard.readers.get(node.name, 0) + 1
            if prev is not None and node.name != prev:
                self.failovers += 1
                self.cluster._note_failover(self.label, prev, node.name)
            return
        raise NodeDownError(
            f"every live replica of shard {shard.key!r} refused admission "
            f"for {self.label!r}"
        ) from last_error

    def _disconnect(self) -> None:
        if self._node is not None and self._shard is not None:
            shard, name = self._shard, self._node.name
            left = shard.readers.get(name, 0) - 1
            if left > 0:
                shard.readers[name] = left
            else:
                shard.readers.pop(name, None)
                # A trim that found this replica busy is waiting for us.
                self.cluster.repair.reader_detached(shard)
        if self._reservation is not None and not self._reservation.released:
            self._reservation.release()
        self._node = None
        self._reservation = None
        self._shard = None

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._disconnect()

    def __enter__(self) -> "ClusterStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ClusterStream({self.label!r} on {self.serving_node!r}, "
                f"{self.bits_read} bits, {self.failovers} failovers)")


class ClusterPlacementManager:
    """Shards values across nodes, routes reads, tracks replica health."""

    def __init__(self, simulator: Simulator, replication: int = 2,
                 repair_bps_cap: float = 12_000_000.0,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        if replication < 1:
            raise ClusterError(f"replication must be >= 1, got {replication}")
        self.simulator = simulator
        self.replication = replication
        #: backoff for failover reconnects: short base so a replica
        #: switch costs milliseconds, enough attempts to ride out repair.
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=6, base_delay_s=0.005, max_delay_s=0.25)
        self._nodes: Dict[str, StorageNode] = {}
        self._placements: Dict[int, ClusterPlacement] = {}
        self._keys = itertools.count(1)
        self.failovers = 0
        self._decisions = simulator.obs.decisions
        metrics = simulator.obs.metrics
        self._m_placements = metrics.counter("cluster.placements")
        self._m_reads = metrics.counter("cluster.reads")
        self._m_read_bits = metrics.counter("cluster.read_bits")
        self._m_failovers = metrics.counter("cluster.failovers")
        self._m_node_deaths = metrics.counter("cluster.node_deaths")
        self._m_node_restores = metrics.counter("cluster.node_restores")
        self._m_nodes_live = metrics.gauge("cluster.nodes_live")
        self._m_under_replicated = metrics.gauge("cluster.under_replicated")
        self._m_version_bumps = metrics.counter("cluster.version_bumps")
        self._version_listeners: List = []
        from repro.cluster.repair import RepairManager
        self.repair = RepairManager(self, repair_bps_cap)

    # -- membership ----------------------------------------------------------
    def add_node(self, node: StorageNode) -> StorageNode:
        if node.name in self._nodes:
            raise ClusterError(f"node {node.name!r} already registered")
        self._nodes[node.name] = node
        node.on_down = self._node_down
        node.on_up = self._node_up
        self._refresh_health()
        return node

    def node(self, name: str) -> StorageNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise ClusterError(f"unknown node {name!r}") from None

    @property
    def nodes(self) -> List[StorageNode]:
        return [self._nodes[name] for name in sorted(self._nodes)]

    @property
    def live_nodes(self) -> List[StorageNode]:
        return [n for n in self.nodes if n.available]

    def kill_node(self, name: str) -> None:
        self.node(name).kill()

    def restore_node(self, name: str) -> None:
        self.node(name).restore()

    def shutdown(self) -> None:
        """Scenario teardown: stop repair and every node's server process."""
        self.repair.stop()
        for node in self.nodes:
            node.stop()

    # -- placement -----------------------------------------------------------
    def place(self, value: MediaValue, key: Optional[str] = None,
              shards: int = 1,
              replication: Optional[int] = None) -> ClusterPlacement:
        """Shard a value and allocate R replicas of each shard."""
        vid = id(value)
        if vid in self._placements:
            raise PlacementError("value is already placed in the cluster")
        r = self.replication if replication is None else replication
        names = sorted(self._nodes)
        if r < 1 or r > len(names):
            raise ClusterError(
                f"replication {r} needs {r} nodes, have {len(names)}"
            )
        nbytes = max(1, (value.data_size_bits() + 7) // 8)
        shards = max(1, min(shards, nbytes))
        key = key if key is not None else f"value-{next(self._keys)}"
        shard_nbytes = -(-nbytes // shards)
        placed: List[ClusterShard] = []
        allocated: List[Tuple[StorageNode, Extent]] = []
        try:
            for index in range(shards):
                offset = index * shard_nbytes
                size = min(shard_nbytes, nbytes - offset)
                shard = ClusterShard(f"{key}#{index}", index, offset, size)
                for name in hashing.rank(shard.key, names):
                    if len(shard.replicas) == r:
                        break
                    node = self._nodes[name]
                    if node.device.allocator.largest_free_extent < size:
                        continue
                    extent = node.device.allocate(size)
                    shard.replicas[name] = extent
                    allocated.append((node, extent))
                if len(shard.replicas) < r:
                    raise OutOfSpaceError(
                        f"cannot place {r} replicas of shard {shard.key!r} "
                        f"({size} bytes) across {len(names)} nodes"
                    )
                placed.append(shard)
        except BaseException:
            for node, extent in allocated:
                node.device.free(extent)
            raise
        placement = ClusterPlacement(vid, key, nbytes, r, placed,
                                     declared_replication=r)
        self._placements[vid] = placement
        self._m_placements.inc()
        self._refresh_health()
        return placement

    def remove(self, value: MediaValue) -> None:
        placement = self.placement_of(value)
        for shard in placement.shards:
            for name, extent in shard.replicas.items():
                self._nodes[name].device.free(extent)
        del self._placements[placement.value_id]
        self._refresh_health()

    def placement_of(self, value: MediaValue) -> ClusterPlacement:
        try:
            return self._placements[id(value)]
        except KeyError:
            raise PlacementError("value has no cluster placement") from None

    def is_placed(self, value: MediaValue) -> bool:
        return id(value) in self._placements

    def bump_version(self, value: MediaValue) -> int:
        """The source value changed: advance the authoritative version.

        Every cache layered over this placement is told to drop the
        blocks it holds for the old version — the coherence contract is
        that no cache ever serves bytes whose version tag lags the
        placement's (the watch layer's cache-coherence probe re-derives
        exactly this).
        """
        placement = self.placement_of(value)
        placement.version += 1
        self._m_version_bumps.inc()
        for listener in self._version_listeners:
            listener(placement)
        return placement.version

    def add_version_listener(self, listener) -> None:
        """Register a callable invoked with the placement on each bump."""
        self._version_listeners.append(listener)

    @property
    def placements(self) -> List[ClusterPlacement]:
        return list(self._placements.values())

    # -- reads ---------------------------------------------------------------
    def open_read(self, value: MediaValue, bps: float,
                  label: str = "cluster-read",
                  priority: Priority = Priority.STANDARD,
                  queue_timeout_s: float = 0.0,
                  min_fraction: float = 1.0) -> ClusterStream:
        """A failover-capable stream over a placed value.

        With ``queue_timeout_s`` > 0 admission may queue in virtual time
        (bounded by the timeout); 0 means fail-fast to the next replica.
        ``min_fraction`` < 1.0 lets a congested replica admit the stream
        degraded (at the floor rate) rather than refuse it outright.
        """
        return ClusterStream(self, self.placement_of(value), bps, label,
                             priority, queue_timeout_s, min_fraction)

    def _route(self, shard: ClusterShard,
               exclude: Tuple[str, ...] = ()) -> List[StorageNode]:
        """Live replica holders, least-loaded first (queue depth, util).

        ``load_key`` must be built from live O(1) counters (admission
        queue depth, disk queue depth, reservation utilization) — never
        from the metrics snapshot, whose Channel traffic accounting is
        batched behind flush hooks and lags the crowd by a flush
        interval.  Ranking on the snapshot routes every new reader to
        the replica that *was* idle, saturating it.
        """
        nodes = [self._nodes[name] for name in sorted(shard.replicas)
                 if name not in exclude and name in self._nodes]
        live = [node for node in nodes if node.available]
        live.sort(key=lambda node: node.load_key)
        return live

    # -- replica health ------------------------------------------------------
    def live_replicas(self, shard: ClusterShard) -> List[str]:
        return [name for name in sorted(shard.replicas)
                if name in self._nodes and self._nodes[name].available]

    def under_replicated(self) -> List[Tuple[ClusterPlacement, ClusterShard]]:
        return [(placement, shard)
                for placement in self._placements.values()
                for shard in placement.shards
                if len(self.live_replicas(shard)) < placement.replication]

    def over_replicated(self) -> List[Tuple[ClusterPlacement, ClusterShard]]:
        return [(placement, shard)
                for placement in self._placements.values()
                for shard in placement.shards
                if len(self.live_replicas(shard)) > placement.replication]

    def _refresh_health(self) -> None:
        self._m_nodes_live.set(len(self.live_nodes))
        self._m_under_replicated.set(len(self.under_replicated()))

    # -- event hooks ---------------------------------------------------------
    def _node_down(self, node: StorageNode) -> None:
        self._m_node_deaths.inc()
        self._refresh_health()
        if self._decisions.enabled:
            self._decisions.emit("node-down", node.name, actor="cluster",
                                 under_replicated=len(self.under_replicated()))
        tracer = self.simulator.obs.tracer
        if tracer.enabled:
            tracer.instant("cluster:node-down", "cluster", node=node.name)
        self.repair.kick()

    def _node_up(self, node: StorageNode) -> None:
        self._m_node_restores.inc()
        self._refresh_health()
        if self._decisions.enabled:
            self._decisions.emit("node-up", node.name, actor="cluster")
        tracer = self.simulator.obs.tracer
        if tracer.enabled:
            tracer.instant("cluster:node-up", "cluster", node=node.name)
        self.repair.kick()

    def _note_failover(self, label: str, old: str, new: str) -> None:
        self.failovers += 1
        self._m_failovers.inc()
        if self._decisions.enabled:
            self._decisions.emit("failover", label, actor="cluster",
                                 src=old, dst=new)
        tracer = self.simulator.obs.tracer
        if tracer.enabled:
            tracer.instant("cluster:failover", "cluster",
                           stream=label, src=old, dst=new)

    # -- facts ---------------------------------------------------------------
    def node_read_bits(self) -> Dict[str, int]:
        return {name: self._nodes[name].bits_read
                for name in sorted(self._nodes)}

    def __repr__(self) -> str:
        return (f"ClusterPlacementManager({len(self._nodes)} nodes "
                f"({len(self.live_nodes)} live), "
                f"{len(self._placements)} values, R={self.replication})")
