"""Affine world-time/object-time mappings.

A ``MediaValue`` (paper section 4.1) owns a mapping between world time and
its object-time axis and exposes ``WorldToObject``, ``ObjectToWorld``,
``Scale`` and ``Translate``.  ``TimeMapping`` implements that contract for
the common case of constant-rate media: object index ``i`` occupies world
time ``start + i / (rate * speed)``.

``Scale(f)`` stretches presentation (``f > 1`` plays slower: each element
occupies more world time), matching the paper's notion of scaling a
temporal sequence.  ``Translate(t)`` shifts the sequence's world-time
origin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.avtime.coords import ObjectTime, WorldTime
from repro.errors import TemporalError


@dataclass(frozen=True, slots=True)
class TimeMapping:
    """Affine mapping between world time and element indices.

    Attributes
    ----------
    rate:
        Native elements per second of the medium (frame rate, sample rate).
    start:
        World time at which object time 0 is presented.
    scale:
        Temporal scale factor; element ``i`` is presented at
        ``start + scale * i / rate``.  ``scale == 2`` is half-speed
        (slow motion), ``scale == 0.5`` double speed.
    """

    rate: float
    start: WorldTime = WorldTime.zero()
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise TemporalError(f"element rate must be positive, got {self.rate}")
        if self.scale <= 0:
            raise TemporalError(f"temporal scale must be positive, got {self.scale}")

    # -- the paper's four methods -------------------------------------
    def world_to_object(self, when: WorldTime) -> ObjectTime:
        """Element index presented at world time ``when`` (floor)."""
        offset = (when - self.start).seconds
        return ObjectTime(int(offset * self.rate / self.scale // 1))

    def object_to_world(self, index: ObjectTime) -> WorldTime:
        """World time at which element ``index`` begins presentation."""
        return self.start + WorldTime(self.scale * index.index / self.rate)

    def scaled(self, factor: float) -> "TimeMapping":
        """Return a mapping with presentation stretched by ``factor``."""
        if factor <= 0:
            raise TemporalError(f"scale factor must be positive, got {factor}")
        return TimeMapping(self.rate, self.start, self.scale * factor)

    def translated(self, delta: WorldTime) -> "TimeMapping":
        """Return a mapping shifted later by ``delta``."""
        return TimeMapping(self.rate, self.start + delta, self.scale)

    # -- derived quantities --------------------------------------------
    @property
    def effective_rate(self) -> float:
        """Elements presented per world-time second under this mapping."""
        return self.rate / self.scale

    def duration_of(self, element_count: int) -> WorldTime:
        """World-time presentation span of ``element_count`` elements."""
        if element_count < 0:
            raise TemporalError(f"element count must be >= 0, got {element_count}")
        return WorldTime(self.scale * element_count / self.rate)

    def element_period(self) -> WorldTime:
        """World time occupied by one element."""
        return WorldTime(self.scale / self.rate)
