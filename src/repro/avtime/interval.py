"""Half-open intervals on the world-time axis and Allen's interval algebra.

Temporal composition (paper section 4.1, Fig. 1) positions each track of a
composite on a shared timeline as a (start, duration) pair.  ``Interval``
represents that span as the half-open interval ``[start, end)`` and
implements the thirteen Allen relations, which the temporal-composition
layer uses to describe and validate track correlations.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.avtime.coords import WorldTime
from repro.errors import TemporalError


class AllenRelation(Enum):
    """The thirteen basic relations of Allen's interval algebra."""

    BEFORE = "before"
    AFTER = "after"
    MEETS = "meets"
    MET_BY = "met-by"
    OVERLAPS = "overlaps"
    OVERLAPPED_BY = "overlapped-by"
    STARTS = "starts"
    STARTED_BY = "started-by"
    DURING = "during"
    CONTAINS = "contains"
    FINISHES = "finishes"
    FINISHED_BY = "finished-by"
    EQUALS = "equals"

    @property
    def inverse(self) -> "AllenRelation":
        return _INVERSES[self]


_INVERSES = {
    AllenRelation.BEFORE: AllenRelation.AFTER,
    AllenRelation.AFTER: AllenRelation.BEFORE,
    AllenRelation.MEETS: AllenRelation.MET_BY,
    AllenRelation.MET_BY: AllenRelation.MEETS,
    AllenRelation.OVERLAPS: AllenRelation.OVERLAPPED_BY,
    AllenRelation.OVERLAPPED_BY: AllenRelation.OVERLAPS,
    AllenRelation.STARTS: AllenRelation.STARTED_BY,
    AllenRelation.STARTED_BY: AllenRelation.STARTS,
    AllenRelation.DURING: AllenRelation.CONTAINS,
    AllenRelation.CONTAINS: AllenRelation.DURING,
    AllenRelation.FINISHES: AllenRelation.FINISHED_BY,
    AllenRelation.FINISHED_BY: AllenRelation.FINISHES,
    AllenRelation.EQUALS: AllenRelation.EQUALS,
}


@dataclass(frozen=True, slots=True)
class Interval:
    """The half-open world-time interval ``[start, start + duration)``.

    Zero-duration intervals are allowed (instantaneous events such as a
    subtitle flash); negative durations are not.
    """

    start: WorldTime
    duration: WorldTime

    def __post_init__(self) -> None:
        if self.duration.is_negative():
            raise TemporalError(f"interval duration must be >= 0, got {self.duration!r}")

    @classmethod
    def between(cls, start: WorldTime, end: WorldTime) -> "Interval":
        if end < start:
            raise TemporalError(f"interval end {end!r} precedes start {start!r}")
        return cls(start, end - start)

    @property
    def end(self) -> WorldTime:
        return self.start + self.duration

    def is_empty(self) -> bool:
        return self.duration.seconds == 0

    def contains_time(self, when: WorldTime) -> bool:
        """Whether ``when`` falls inside the half-open span."""
        return self.start <= when < self.end

    def shifted(self, delta: WorldTime) -> "Interval":
        return Interval(self.start + delta, self.duration)

    def scaled(self, factor: float) -> "Interval":
        """Scale the duration about the start point (paper's ``Scale``)."""
        if factor < 0:
            raise TemporalError(f"scale factor must be >= 0, got {factor}")
        return Interval(self.start, self.duration * factor)

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """Overlapping span, or ``None`` when the spans are disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if hi < lo or hi == lo:
            return None
        return Interval.between(lo, hi)

    def union_span(self, other: "Interval") -> "Interval":
        """Smallest interval covering both (the timeline extent rule)."""
        lo = min(self.start, other.start)
        hi = max(self.end, other.end)
        return Interval.between(lo, hi)

    def relation_to(self, other: "Interval") -> AllenRelation:
        """Classify this interval against ``other`` per Allen's algebra.

        Zero-duration intervals degenerate some relations; ties on
        endpoints are resolved exactly as in the standard algebra.
        """
        s1, e1 = self.start, self.end
        s2, e2 = other.start, other.end
        if s1 == s2 and e1 == e2:
            return AllenRelation.EQUALS
        if e1 < s2:
            return AllenRelation.BEFORE
        if e2 < s1:
            return AllenRelation.AFTER
        if e1 == s2:
            return AllenRelation.MEETS
        if e2 == s1:
            return AllenRelation.MET_BY
        if s1 == s2:
            return AllenRelation.STARTS if e1 < e2 else AllenRelation.STARTED_BY
        if e1 == e2:
            return AllenRelation.FINISHES if s1 > s2 else AllenRelation.FINISHED_BY
        if s2 < s1 and e1 < e2:
            return AllenRelation.DURING
        if s1 < s2 and e2 < e1:
            return AllenRelation.CONTAINS
        return AllenRelation.OVERLAPS if s1 < s2 else AllenRelation.OVERLAPPED_BY

    def __repr__(self) -> str:
        return f"Interval({self.start.seconds:g}s..{self.end.seconds:g}s)"
