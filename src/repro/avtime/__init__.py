"""Temporal coordinate systems for AV values (paper section 4.1).

The ``MediaValue`` class of the paper distinguishes two temporal coordinate
systems:

* **world time** — a media-independent time axis measured in seconds; the
  units are fixed by the framework.
* **object time** — a media-dependent axis whose units are a subclass
  responsibility; e.g. video measures object time in *timecode* (frame
  numbers at 1/30 s granularity), audio in sample numbers.

This package provides the two coordinate types, SMPTE-style timecode,
intervals on the world-time axis, and the affine world/object mappings that
implement the paper's ``WorldToObject`` / ``ObjectToWorld`` / ``Scale`` /
``Translate`` methods.
"""

from repro.avtime.coords import ObjectTime, WorldTime
from repro.avtime.interval import AllenRelation, Interval
from repro.avtime.mapping import TimeMapping
from repro.avtime.timecode import Timecode

__all__ = ["WorldTime", "ObjectTime", "Timecode", "Interval", "AllenRelation", "TimeMapping"]
