"""SMPTE-style timecode.

The paper gives video timecode as the canonical example of object time: "a
subclass dealing with video could measure object time using video 'timecode'
(where the smallest unit is 1/30th of a second)".  ``Timecode`` converts
between ``HH:MM:SS:FF`` strings, frame counts and world time for an
arbitrary integer frame rate (non-drop-frame).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.avtime.coords import WorldTime
from repro.errors import TemporalError

_TIMECODE_RE = re.compile(r"^(\d{2}):(\d{2}):(\d{2}):(\d{2})$")


@dataclass(frozen=True, slots=True)
class Timecode:
    """A non-drop-frame timecode at an integer frame rate.

    Attributes
    ----------
    frames:
        Total frame count since timecode zero.
    rate:
        Frames per second (default 30, the paper's smallest video unit).
    """

    frames: int
    rate: int = 30

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise TemporalError(f"timecode rate must be positive, got {self.rate}")
        if self.frames < 0:
            raise TemporalError(f"timecode frame count must be >= 0, got {self.frames}")

    # -- constructors ------------------------------------------------------
    @classmethod
    def parse(cls, text: str, rate: int = 30) -> "Timecode":
        """Parse an ``HH:MM:SS:FF`` string."""
        match = _TIMECODE_RE.match(text)
        if match is None:
            raise TemporalError(f"malformed timecode {text!r} (expected HH:MM:SS:FF)")
        hh, mm, ss, ff = (int(g) for g in match.groups())
        if mm >= 60 or ss >= 60 or ff >= rate:
            raise TemporalError(f"timecode fields out of range in {text!r} at rate {rate}")
        total = ((hh * 60 + mm) * 60 + ss) * rate + ff
        return cls(total, rate)

    @classmethod
    def from_world(cls, when: WorldTime, rate: int = 30) -> "Timecode":
        """Timecode of the frame being displayed at world time ``when``."""
        if when.is_negative():
            raise TemporalError(f"cannot form a timecode from negative time {when!r}")
        return cls(int(when.seconds * rate), rate)

    # -- conversions ---------------------------------------------------
    def to_world(self) -> WorldTime:
        return WorldTime(self.frames / self.rate)

    @property
    def fields(self) -> tuple[int, int, int, int]:
        """(hours, minutes, seconds, frames) fields."""
        ff = self.frames % self.rate
        total_seconds = self.frames // self.rate
        ss = total_seconds % 60
        mm = (total_seconds // 60) % 60
        hh = total_seconds // 3600
        return hh, mm, ss, ff

    def __str__(self) -> str:
        hh, mm, ss, ff = self.fields
        return f"{hh:02d}:{mm:02d}:{ss:02d}:{ff:02d}"

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: "Timecode") -> "Timecode":
        if not isinstance(other, Timecode):
            return NotImplemented
        if other.rate != self.rate:
            raise TemporalError(f"cannot add timecodes at different rates ({self.rate} vs {other.rate})")
        return Timecode(self.frames + other.frames, self.rate)

    def __sub__(self, other: "Timecode") -> "Timecode":
        if not isinstance(other, Timecode):
            return NotImplemented
        if other.rate != self.rate:
            raise TemporalError(f"cannot subtract timecodes at different rates ({self.rate} vs {other.rate})")
        if other.frames > self.frames:
            raise TemporalError("timecode subtraction would be negative")
        return Timecode(self.frames - other.frames, self.rate)
