"""World-time and object-time coordinate values.

``WorldTime`` is a thin, totally ordered wrapper around seconds (stored as a
``float``).  ``ObjectTime`` is an integer index into a media value's element
sequence (frame number, sample number, text-item number).  Keeping them as
distinct types catches the classic unit bug — passing a frame number where
seconds are expected — at the API boundary rather than deep inside a stream
engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import total_ordering
from typing import Union

from repro.errors import TemporalError

Number = Union[int, float]


@total_ordering
@dataclass(frozen=True, slots=True)
class WorldTime:
    """A point (or span, when used as a duration) on the world-time axis.

    Units are seconds, as prescribed by the framework's ``MediaValue``
    class.  Instances are immutable and support arithmetic that stays in
    the world-time domain: ``WorldTime + WorldTime``, ``WorldTime -
    WorldTime``, scaling by a plain number, and division by either a number
    (yielding ``WorldTime``) or another ``WorldTime`` (yielding a unitless
    ratio).
    """

    seconds: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.seconds):
            raise TemporalError(f"world time must be finite, got {self.seconds!r}")

    # -- constructors -----------------------------------------------------
    @classmethod
    def zero(cls) -> "WorldTime":
        return cls(0.0)

    @classmethod
    def from_ms(cls, milliseconds: Number) -> "WorldTime":
        return cls(milliseconds / 1000.0)

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other: "WorldTime") -> "WorldTime":
        if not isinstance(other, WorldTime):
            return NotImplemented
        return WorldTime(self.seconds + other.seconds)

    def __sub__(self, other: "WorldTime") -> "WorldTime":
        if not isinstance(other, WorldTime):
            return NotImplemented
        return WorldTime(self.seconds - other.seconds)

    def __mul__(self, factor: Number) -> "WorldTime":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        return WorldTime(self.seconds * factor)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["WorldTime", Number]):
        if isinstance(other, WorldTime):
            if other.seconds == 0:
                raise TemporalError("division by zero world time")
            return self.seconds / other.seconds
        if isinstance(other, (int, float)):
            if other == 0:
                raise TemporalError("division of world time by zero")
            return WorldTime(self.seconds / other)
        return NotImplemented

    def __neg__(self) -> "WorldTime":
        return WorldTime(-self.seconds)

    def __abs__(self) -> "WorldTime":
        return WorldTime(abs(self.seconds))

    # -- ordering ----------------------------------------------------------
    def __lt__(self, other: "WorldTime") -> bool:
        if not isinstance(other, WorldTime):
            return NotImplemented
        return self.seconds < other.seconds

    # -- conversions ---------------------------------------------------
    @property
    def ms(self) -> float:
        return self.seconds * 1000.0

    def is_negative(self) -> bool:
        return self.seconds < 0

    def __repr__(self) -> str:
        return f"WorldTime({self.seconds:g}s)"


@total_ordering
@dataclass(frozen=True, slots=True)
class ObjectTime:
    """A point on a media value's object-time axis.

    Object time is an integer element index; the meaning of one unit is a
    media-type responsibility (one video frame, one audio sample, one text
    item).  Negative indices are permitted as *relative* offsets but most
    APIs validate against a value's element count.
    """

    index: int

    def __post_init__(self) -> None:
        if not isinstance(self.index, int):
            raise TemporalError(f"object time must be an integer index, got {self.index!r}")

    @classmethod
    def zero(cls) -> "ObjectTime":
        return cls(0)

    def __add__(self, other: "ObjectTime") -> "ObjectTime":
        if not isinstance(other, ObjectTime):
            return NotImplemented
        return ObjectTime(self.index + other.index)

    def __sub__(self, other: "ObjectTime") -> "ObjectTime":
        if not isinstance(other, ObjectTime):
            return NotImplemented
        return ObjectTime(self.index - other.index)

    def __lt__(self, other: "ObjectTime") -> bool:
        if not isinstance(other, ObjectTime):
            return NotImplemented
        return self.index < other.index

    def __int__(self) -> int:
        return self.index

    def __repr__(self) -> str:
        return f"ObjectTime({self.index})"
