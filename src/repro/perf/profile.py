"""cProfile-based hotspot reporting over the named scenario registries.

A scenario name is resolved across the CLI registries in order — trace
scenarios (:mod:`repro.obs.scenarios`), fault scenarios
(:mod:`repro.faults`), overload scenarios (:mod:`repro.admission`),
cluster scenarios (:mod:`repro.cluster`), cache scenarios
(:mod:`repro.cache`), watch scenarios
(:mod:`repro.watch`), soak scenarios (:mod:`repro.soak`), herd
scenarios (:mod:`repro.herd`, names prefixed ``herd-``) — so every
scenario the CLI can run can also be profiled.  Runs execute
under the default observability configuration (metrics on, tracing
off), which is the hot path the optimization work targets.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Callable, Dict, List, Tuple

#: pstats sort keys accepted by the CLI.
SORT_KEYS = ("cumulative", "tottime", "ncalls")


def _registries() -> List[Tuple[str, Dict[str, Callable], Callable]]:
    """(kind, registry, thunk-maker) triples, in resolution order."""
    from repro.admission import SCENARIOS as OVERLOAD_SCENARIOS
    from repro.cache import SCENARIOS as CACHE_SCENARIOS
    from repro.cluster import SCENARIOS as CLUSTER_SCENARIOS
    from repro.faults import SCENARIOS as FAULT_SCENARIOS
    from repro.herd import SCENARIOS as HERD_SCENARIOS
    from repro.obs.scenarios import SCENARIOS as TRACE_SCENARIOS
    from repro.soak import SCENARIOS as SOAK_SCENARIOS
    from repro.watch import SCENARIOS as WATCH_SCENARIOS

    from repro.annotations import SCENARIOS as QUERY_SCENARIOS

    # Query names are prefixed to stay collision-proof as registries
    # grow ("speech" -> "query-speech").
    query_registry = {f"query-{name}": fn
                      for name, fn in QUERY_SCENARIOS.items()}
    # Herd names are prefixed: bare "surge"/"day" already belong to the
    # overload and soak registries.
    herd_registry = {f"herd-{name}": fn
                     for name, fn in HERD_SCENARIOS.items()}
    return [
        ("trace", TRACE_SCENARIOS, lambda fn: fn),
        ("faults", FAULT_SCENARIOS,
         lambda fn: lambda: fn(seed=0, recover=True)),
        ("overload", OVERLOAD_SCENARIOS,
         lambda fn: lambda: fn(seed=0, admission=True)),
        ("cluster", CLUSTER_SCENARIOS,
         lambda fn: lambda: fn(seed=0)),
        ("cache", CACHE_SCENARIOS,
         lambda fn: lambda: fn(seed=0)),
        ("watch", WATCH_SCENARIOS,
         lambda fn: lambda: fn(seed=0)),
        ("soak", SOAK_SCENARIOS,
         lambda fn: lambda: fn(seed=0)),
        ("herd", herd_registry,
         lambda fn: lambda: fn(seed=0)),
        ("query", query_registry,
         lambda fn: lambda: fn(seed=0)),
    ]


def available_scenarios() -> Dict[str, str]:
    """Every profilable scenario name -> the registry it comes from.

    First registry wins on a name collision, matching
    :func:`resolve_scenario`.
    """
    names: Dict[str, str] = {}
    for kind, registry, _ in _registries():
        for name in registry:
            names.setdefault(name, kind)
    return names


def resolve_scenario(name: str) -> Tuple[str, Callable[[], object]]:
    """Resolve ``name`` to (registry kind, zero-argument runner)."""
    for kind, registry, make in _registries():
        if name in registry:
            return kind, make(registry[name])
    options = ", ".join(sorted(available_scenarios()))
    raise KeyError(f"unknown scenario {name!r}; pick one of: {options}")


def profile_scenario(name: str, top: int = 15,
                     sort: str = "cumulative") -> Tuple[str, object]:
    """Run a scenario under cProfile; return (report text, scenario facts).

    The report holds the top-``top`` entries sorted by ``sort``
    (one of ``cumulative``, ``tottime``, ``ncalls``).
    """
    if sort not in SORT_KEYS:
        raise ValueError(f"sort must be one of {SORT_KEYS}, got {sort!r}")
    from repro.obs import scoped

    kind, run = resolve_scenario(name)
    profiler = cProfile.Profile()
    with scoped(tracing=False):
        profiler.enable()
        facts = run()
        profiler.disable()

    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    header = (f"== profile: {name} ({kind} scenario, "
              f"top {top} by {sort}) ==\n")
    return header + buf.getvalue(), facts
