"""Performance tooling: profiling and hotspot reporting.

``python -m repro profile <scenario>`` runs any named scenario (trace,
fault, or overload registry) under :mod:`cProfile` and prints the top-N
hotspots, so optimization PRs can find their targets without guessing.
The measured numbers live in ``BENCH_PERF.json`` (repo root) and are
produced by ``benchmarks/bench_kernel_throughput.py``.
"""

from repro.perf.profile import (
    available_scenarios,
    profile_scenario,
    resolve_scenario,
)

__all__ = ["available_scenarios", "profile_scenario", "resolve_scenario"]
