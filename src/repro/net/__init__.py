"""Network substrate: channels with bandwidth reservation (DESIGN.md §2).

Stands in for the paper's "high-bandwidth networks and protocols
facilitating real-time transfer of digital audio and video (e.g.,
broadband ISDN and ATM)".  Streams crossing the database/application
boundary reserve bandwidth at connection time — the §4.3 semantics where
"this statement would fail if insufficient network bandwidth were
available" — and traffic accounting feeds the Fig. 4 comparison.
"""

from repro.net.channel import Channel, Reservation

__all__ = ["Channel", "Reservation"]
