"""Simulated network channels.

A :class:`Channel` has a total bandwidth capacity and a propagation
latency.  Streams take :class:`Reservation` objects (admission control:
reserving beyond capacity raises
:class:`~repro.errors.AdmissionError` — the paper's connection-time
failure).  Each element transmission takes ``latency + bits/reserved_bps``
virtual seconds and is charged to the channel's traffic accounting, which
the Fig. 4 benchmark reads back as network bytes per configuration.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator

from repro.errors import AdmissionError, ChannelFaultError, PreemptedError
from repro.sim import Delay, Simulator

_reservation_ids = itertools.count(1)


class Reservation:
    """A bandwidth slice of a channel, held by one stream.

    Usable as a context manager: ``with channel.reserve(bps) as r: ...``
    releases the bandwidth on exit even when the body raises, so partial
    allocations cannot strand capacity.
    """

    def __init__(self, channel: "Channel", bps: float, label: str) -> None:
        self.channel = channel
        self.bps = bps
        self.label = label
        self.id = next(_reservation_ids)
        self.bits_transmitted = 0
        self.released = False
        #: set when an admission controller revoked this reservation to
        #: admit higher-priority work; subsequent transfers raise
        #: :class:`~repro.errors.PreemptedError`.
        self.preempted = False
        #: optional callable invoked (once) after release; the admission
        #: controller hooks this to re-pump its wait queue.
        self.on_release = None
        #: how many clients this reservation carries: 1 for an ordinary
        #: stream, n for an aggregate herd cohort admitted in one batch
        #: (see ``AdmissionController.admit_batch``) — preemption and
        #: release accounting charge per client, not per reservation.
        self.cohort_clients = 1

    def _faulted_duration(self, bits: int, duration: float) -> float:
        """Apply the channel's injected loss/jitter model, if armed.

        In ``retransmit`` mode a dropped element is sent again (the link
        layer recovers transparently, at the cost of wire time); in
        ``error`` mode the drop surfaces as
        :class:`~repro.errors.ChannelFaultError` for a higher-level
        retry policy to handle.  Retransmitted bits are charged to the
        channel's traffic accounting like any other traffic.
        """
        faults = self.channel.faults
        if faults is None:
            return duration
        duration += faults.sample_jitter()
        while faults.sample_drop(self.channel.name):
            if faults.mode == "error":
                raise ChannelFaultError(
                    f"transmission of {bits} bits on {self.channel.name!r} dropped"
                )
            self.channel.retransmits += 1
            self.channel._account(bits)
            duration += bits / self.bps + faults.sample_jitter()
        return duration

    def _require_live(self) -> None:
        if self.preempted:
            raise PreemptedError(
                f"reservation {self.label!r} on {self.channel.name!r} was "
                f"preempted for higher-priority work"
            )
        if self.released:
            raise AdmissionError(
                f"reservation {self.label!r} on {self.channel.name!r} was released"
            )

    def transmit(self, bits: int) -> Generator:
        """DES subroutine: occupy the reservation for the transfer time."""
        self._require_live()
        duration = self._faulted_duration(bits, self.channel.latency_s + bits / self.bps)
        if duration > 0:
            yield Delay(duration)
        self.bits_transmitted += bits
        self.channel._account(bits)

    def serialize(self, bits: int) -> Generator:
        """DES subroutine: occupy the sender for serialization time only.

        Propagation latency is *not* charged here — a pipelined sender puts
        the next element on the wire as soon as the previous one has been
        clocked out; delivery happens ``latency_s`` later (the connection
        layer schedules it).
        """
        self._require_live()
        duration = self._faulted_duration(bits, bits / self.bps)
        if duration > 0:
            yield Delay(duration)
        self.bits_transmitted += bits
        self.channel._account(bits)

    @property
    def latency_s(self) -> float:
        return self.channel.latency_s

    def release(self) -> None:
        if not self.released:
            self.released = True
            if not self.channel.debug_leak_releases:
                self.channel._release(self)
            if self.on_release is not None:
                hook, self.on_release = self.on_release, None
                hook(self)

    def __enter__(self) -> "Reservation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"Reservation({self.label!r}, {self.bps:g} b/s on {self.channel.name!r})"


class Channel:
    """A network link with finite capacity and admission control."""

    def __init__(self, simulator: Simulator, capacity_bps: float,
                 latency_s: float = 0.0, name: str = "channel") -> None:
        if capacity_bps <= 0:
            raise AdmissionError(f"channel capacity must be positive, got {capacity_bps}")
        if latency_s < 0:
            raise AdmissionError(f"channel latency must be >= 0, got {latency_s}")
        self.simulator = simulator
        self.capacity_bps = capacity_bps
        self.latency_s = latency_s
        self.name = name
        self._reservations: Dict[int, Reservation] = {}
        self.total_bits = 0
        self.admission_failures = 0
        #: fault-injection hook: a :class:`repro.faults.injector.ChannelFaults`
        #: (seeded loss/jitter model) armed by a FaultInjector, or None.
        self.faults = None
        self.retransmits = 0
        #: seeded-bug hook for the watch layer's invariant-breach demo:
        #: when True, :meth:`Reservation.release` marks the reservation
        #: released but "forgets" to return its bandwidth, so the released
        #: reservation stays registered and ``reserved_bps`` stays
        #: inflated — the leak the reservation-conservation probe catches.
        self.debug_leak_releases = False
        metrics = simulator.obs.metrics
        self._m_bits_sent = metrics.counter("net.bits_sent")
        self._m_admission_failures = metrics.counter("net.admission_failures")
        self._m_utilization = metrics.gauge(f"net.channel.{name}.utilization")
        # Traffic accounting is batched: _account() is one plain int add
        # on total_bits (the exact source of truth); the shared
        # net.bits_sent counter is settled from it by this flush hook
        # whenever the registry is read (see MetricsRegistry.flush).
        self._flushed_bits = 0
        metrics.add_flush_hook(self._flush_traffic)

    def _flush_traffic(self) -> None:
        delta = self.total_bits - self._flushed_bits
        if delta:
            self._m_bits_sent.inc(delta)
            self._flushed_bits = self.total_bits

    # -- admission control ---------------------------------------------------
    @property
    def reserved_bps(self) -> float:
        return sum(r.bps for r in self._reservations.values())

    @property
    def available_bps(self) -> float:
        return self.capacity_bps - self.reserved_bps

    def reserve(self, bps: float, label: str = "stream") -> Reservation:
        """Admit a stream at ``bps``; raises AdmissionError when over capacity."""
        if bps <= 0:
            raise AdmissionError(f"cannot reserve non-positive bandwidth {bps}")
        if bps > self.available_bps + 1e-9:
            self.admission_failures += 1
            self._m_admission_failures.inc()
            raise AdmissionError(
                f"channel {self.name!r}: cannot reserve {bps:g} b/s "
                f"({self.available_bps:g} of {self.capacity_bps:g} available)"
            )
        reservation = Reservation(self, bps, label)
        self._reservations[reservation.id] = reservation
        self._m_utilization.set(self.reserved_bps / self.capacity_bps)
        return reservation

    def _release(self, reservation: Reservation) -> None:
        self._reservations.pop(reservation.id, None)
        self._m_utilization.set(self.reserved_bps / self.capacity_bps)

    def _account(self, bits: int) -> None:
        self.total_bits += bits

    # -- accounting ----------------------------------------------------------
    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8

    def mean_throughput_bps(self) -> float:
        """Average delivered rate since time 0."""
        now = self.simulator.now.seconds
        if now <= 0:
            return 0.0
        return self.total_bits / now

    def __repr__(self) -> str:
        return (
            f"Channel({self.name!r}, {self.reserved_bps:g}/{self.capacity_bps:g} b/s "
            f"reserved, {len(self._reservations)} streams)"
        )
