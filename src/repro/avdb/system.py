"""The AV database system: values + activities + resources (Fig. 3).

The system owns:

* a :class:`~repro.db.Database` for the passive state (objects, queries,
  transactions);
* a :class:`~repro.storage.PlacementManager` over simulated storage
  devices, with media-value placement visible to clients (§3.3);
* a :class:`~repro.avdb.ResourceManager` for shared special hardware;
* the system-wide :class:`~repro.activities.ActivityGraph` in which both
  database-located and application-located activities run;
* per-client network channels.

``make_source`` implements the §4.3 dynamic configuration: "if
SimpleNewscast.videoTrack values use various underlying representations
... then dynamic configuration of dbSource is necessary" — an encoded
value delivered raw becomes a reader+decoder composite; an analog value
becomes a digitizer; a raw value a plain reader.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.activities import ActivityGraph, CompositeActivity, Location, MultiSource
from repro.activities.library import (
    AudioReader,
    TextReader,
    VideoDecoder,
    VideoDigitizer,
    VideoReader,
)
from repro.avdb.resources import ResourceManager
from repro.db.database import Database
from repro.errors import AdmissionError, MediaTypeError
from repro.net.channel import Channel
from repro.quality.negotiate import Negotiator
from repro.sim import Simulator
from repro.storage.devices import Device
from repro.storage.placement import PlacementManager
from repro.streams.sync import JitterModel
from repro.temporal.composite import TemporalComposite
from repro.values.audio import AudioValue
from repro.values.base import MediaValue
from repro.values.text import TextStreamValue
from repro.values.video import EncodedVideoValue, VideoValue

_session_ids = itertools.count(1)


class AVDatabaseSystem:
    """One AV database system instance on one DES kernel."""

    def __init__(self, simulator: Optional[Simulator] = None,
                 database: Optional[Database] = None,
                 name: str = "avdb") -> None:
        self.simulator = simulator if simulator is not None else Simulator()
        # NOT `database or ...`: an empty Database is falsy via __len__.
        # A system-created database shares the simulator's observability
        # context so db.* and sim.* metrics land in one registry.
        self.db = (database if database is not None
                   else Database(obs=self.simulator.obs))
        self.name = name
        self.placement = PlacementManager(self.simulator)
        self.resources = ResourceManager(self.simulator)
        self.graph = ActivityGraph(self.simulator, name)
        self.negotiator = Negotiator()
        #: read-ahead factor for device stream reservations: readers pull
        #: from storage faster than real time so pipeline latency stays
        #: bounded (ablation knob).
        self.readahead = 2.0
        #: the system-wide admission controller, once enabled.
        self.admission = None

    # -- observability ----------------------------------------------------
    @property
    def obs(self):
        """The observability context every layer of this system reports to."""
        return self.simulator.obs

    @property
    def metrics(self):
        """The system-wide metrics registry (sim.*, stream.*, storage.*...)."""
        return self.simulator.obs.metrics

    @property
    def tracer(self):
        return self.simulator.obs.tracer

    # -- storage ---------------------------------------------------------
    def add_storage(self, device: Device) -> Device:
        return self.placement.add_device(device)

    def store_value(self, value: MediaValue,
                    device_name: Optional[str] = None) -> None:
        """Place a media value on a storage device (client-visible)."""
        if device_name is None:
            self.placement.place_auto(value)
        else:
            self.placement.place(value, device_name)

    # -- sessions ----------------------------------------------------------
    def open_session(self, name: Optional[str] = None,
                     channel_bps: float = 100_000_000.0,
                     latency_s: float = 0.001,
                     channel: Optional[Channel] = None):
        """Open a client session over a network channel.

        By default each session gets a dedicated channel sized
        ``channel_bps``; pass ``channel`` to multiplex many sessions over
        one shared trunk instead (the overload workloads do this, with an
        admission controller arbitrating the trunk — see
        :meth:`enable_admission`).
        """
        from repro.session.session import Session
        session_name = name or f"session-{next(_session_ids)}"
        if channel is None:
            channel = Channel(self.simulator, channel_bps, latency_s,
                              name=f"{session_name}-channel")
        return Session(self, session_name, channel)

    def enable_admission(self, channel: Channel, **kwargs):
        """Put an admission controller in front of ``channel``.

        Sessions opened over the same channel route their connection-time
        bandwidth reservations through the controller (priority classes,
        degradation floors, watermark shedding) instead of raw
        first-come-first-served ``channel.reserve``.  Returns the
        controller; it is also available as ``system.admission``.
        """
        from repro.admission.controller import AdmissionController
        self.admission = AdmissionController(self.simulator, channel, **kwargs)
        return self.admission

    # -- dynamic source configuration (§4.3) -------------------------------
    def make_source(self, value: MediaValue, deliver: str = "stored",
                    name: Optional[str] = None,
                    jitter: Optional[JitterModel] = None,
                    register: bool = True):
        """Build a database-located source activity for a stored value.

        ``deliver='stored'`` streams the stored representation (compressed
        values stay compressed on the wire, saving bandwidth);
        ``deliver='raw'`` configures decoding at the database so the
        client receives raw elements.  Analog values always pass through a
        digitizer.  The source takes a device-bandwidth reservation when
        the value is placed.
        """
        if deliver not in ("stored", "raw"):
            raise MediaTypeError(f"deliver must be 'stored' or 'raw', got {deliver!r}")
        source = self._build_source(value, deliver, name, jitter)
        self._attach_io(source, value)
        if register:
            self.graph.add(source)
        return source

    def _build_source(self, value: MediaValue, deliver: str,
                      name: Optional[str], jitter: Optional[JitterModel]):
        if isinstance(value, VideoValue) and value.media_type.analog:
            digitizer = VideoDigitizer(
                self.simulator, name=name, location=Location.DATABASE, jitter=jitter
            )
            digitizer.bind(value)
            return digitizer
        if isinstance(value, EncodedVideoValue) and deliver == "raw":
            # Dynamic configuration: reader + decoder inside one composite.
            composite = CompositeActivity(
                self.simulator, name=name or f"source-{value.media_type.encoding}",
                location=Location.DATABASE,
            )
            reader = VideoReader(
                self.simulator, name=f"{composite.name}.read",
                location=Location.DATABASE, jitter=jitter,
            )
            reader.bind(value)
            decoder = VideoDecoder(
                self.simulator, value.codec, value.width, value.height, value.depth,
                name=f"{composite.name}.decode", location=Location.DATABASE,
            )
            composite.install(reader)
            composite.install(decoder)
            # Inner connection (reader -> decoder) and the raw export.  The
            # inner link is private wiring, not a graph-level connection.
            from repro.activities.ports import Connection
            Connection(self.simulator, reader.port("video_out"),
                       decoder.port("video_in"))
            composite.export(decoder.port("video_out"), "out")
            composite._io_reader = reader  # device reservation target
            return composite
        if isinstance(value, VideoValue):
            reader = VideoReader(
                self.simulator, name=name, location=Location.DATABASE, jitter=jitter
            )
            reader.bind(value)
            return reader
        if isinstance(value, AudioValue):
            reader = AudioReader(
                self.simulator, name=name, location=Location.DATABASE, jitter=jitter
            )
            reader.bind(value)
            return reader
        if isinstance(value, TextStreamValue):
            reader = TextReader(
                self.simulator, name=name, location=Location.DATABASE, jitter=jitter
            )
            reader.bind(value)
            return reader
        raise MediaTypeError(
            f"no source configuration for {type(value).__name__}"
        )

    def _attach_io(self, source, value: MediaValue) -> None:
        """Reserve device bandwidth for a placed value's reader.

        A real-time stream needs at least the value's own data rate from
        its device; below that, admission fails (the §3.3 scheduling
        failure) rather than handing out an underrunning reservation.
        Above the floor, the reader takes up to ``readahead x`` the rate
        so pipeline latency stays a small constant.
        """
        if not self.placement.is_placed(value):
            return
        device = self.placement.device_of(value)
        demand = value.data_rate_bps()
        if device.available_bps + 1e-9 < demand:
            device.admission_failures += 1
            device._m_admission_failures.inc()
            raise AdmissionError(
                f"device {device.name!r} cannot sustain a {demand:g} b/s "
                f"stream ({device.available_bps:g} b/s available)"
            )
        bps = min(demand * self.readahead, device.available_bps)
        reservation = device.reserve(bps, label=f"{getattr(source, 'name', 'source')}")
        target = getattr(source, "_io_reader", source)
        target.io_stream = reservation

    def make_multisource(self, composite_value: TemporalComposite,
                         deliver: str = "stored",
                         name: Optional[str] = None,
                         jitter_factory=None,
                         resync_interval: Optional[int] = None) -> MultiSource:
        """A MultiSource with one component source per track (§4.3).

        The returned composite is bound to ``composite_value`` and
        maintains synchronization of its components through its sync
        group (optionally actively, via ``resync_interval``).
        """
        multi = MultiSource(
            self.simulator, name=name, location=Location.DATABASE,
            resync_interval=resync_interval,
        )
        self.graph.add(multi)
        for track in composite_value.track_names:
            value = composite_value.value(track)
            jitter = jitter_factory(track) if jitter_factory is not None else None
            component = self.make_source(
                value, deliver=deliver, name=f"{multi.name}.{track}",
                jitter=jitter, register=False,
            )
            multi.install(component, track=track)
        multi._bound = composite_value
        return multi

    # -- convenience ---------------------------------------------------------
    def run(self, until=None):
        return self.simulator.run(until)

    def __repr__(self) -> str:
        return (
            f"AVDatabaseSystem({self.name!r}, {len(self.db)} objects, "
            f"{len(self.placement.devices)} devices, "
            f"{len(self.graph.activities)} activities)"
        )
