"""Shared special-purpose device management (paper §3.3).

"Certain devices are very expensive (e.g., digital video effects
processors) and it is more cost-effective if they can be shared by
different clients."  The database therefore owns pools of shared devices;
creating an activity that needs one either *allocates* (fail-fast — the
paper's "if insufficient resources were available this statement would
fail") or *acquires* (queued, for clients willing to wait; benchmark C6
measures those waits).
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.errors import DeviceBusyError, ResourceError
from repro.sim import Acquire, SimResource, Simulator


class SharedDevicePool:
    """A counted pool of one kind of shared device (mixers, DVEs...)."""

    def __init__(self, simulator: Simulator, kind: str, count: int) -> None:
        if count <= 0:
            raise ResourceError(f"device pool {kind!r} needs count >= 1, got {count}")
        self.kind = kind
        self.count = count
        self._resource = SimResource(simulator, count, name=kind)
        self.allocation_failures = 0

    @property
    def available(self) -> int:
        return self._resource.available

    @property
    def in_use(self) -> int:
        return self._resource.in_use

    @property
    def wait_count(self) -> int:
        return self._resource.wait_count

    def allocate(self) -> "DeviceLease":
        """Fail-fast allocation (the §4.3 statement-fails semantics)."""
        if self._resource.would_block():
            self.allocation_failures += 1
            raise DeviceBusyError(
                f"no {self.kind!r} device available "
                f"({self.in_use}/{self.count} in use)"
            )
        self._resource.in_use += 1
        self._resource.grant_count += 1
        return DeviceLease(self)

    def acquire(self) -> Generator:
        """DES subroutine: queue until a device frees up."""
        yield Acquire(self._resource)
        return DeviceLease(self, acquired=True)

    def _release(self) -> None:
        self._resource._release(1)


class DeviceLease:
    """Holds one unit of a pool until released.

    Usable as a context manager: ``with pool.allocate() as lease: ...``
    gives the unit back on exit even when the body raises (exit is
    idempotent; an explicit double ``release()`` still errors).
    """

    def __init__(self, pool: SharedDevicePool, acquired: bool = False) -> None:
        self.pool = pool
        self.acquired = acquired
        self.released = False

    def release(self) -> None:
        if self.released:
            raise ResourceError(f"{self.pool.kind!r} lease already released")
        self.released = True
        self.pool._release()

    def __enter__(self) -> "DeviceLease":
        return self

    def __exit__(self, *exc_info) -> None:
        if not self.released:
            self.release()

    def __repr__(self) -> str:
        state = "released" if self.released else "held"
        return f"DeviceLease({self.pool.kind!r}, {state})"


class ResourceManager:
    """All shared device pools of one AV database system."""

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator
        self._pools: Dict[str, SharedDevicePool] = {}

    def add_pool(self, kind: str, count: int) -> SharedDevicePool:
        if kind in self._pools:
            raise ResourceError(f"device pool {kind!r} already exists")
        pool = SharedDevicePool(self.simulator, kind, count)
        self._pools[kind] = pool
        return pool

    def pool(self, kind: str) -> SharedDevicePool:
        try:
            return self._pools[kind]
        except KeyError:
            raise ResourceError(
                f"no device pool {kind!r} (pools: {sorted(self._pools)})"
            ) from None

    def has_pool(self, kind: str) -> bool:
        return kind in self._pools

    def pools(self) -> List[SharedDevicePool]:
        return list(self._pools.values())

    def allocate(self, kind: str) -> DeviceLease:
        return self.pool(kind).allocate()
