"""The integrated AV database system (paper §3.1 definition 4, Fig. 3).

"An AV database system is a software/hardware entity managing a
collection of AV values and AV activities. ... Clients (applications)
issue requests to the database.  Certain requests, such as queries, may
return references to AV values ... Other requests cause AV values to be
produced, consumed and processed.  These requests involve AV activities,
which may exist within the client or within the database system."

:class:`AVDatabaseSystem` composes the substrates: the object database
(passive state), the placement manager and simulated devices (storage),
shared special-purpose hardware with allocation control, the activity
graph (active state) and per-client network channels.
"""

from repro.avdb.resources import ResourceManager, SharedDevicePool
from repro.avdb.system import AVDatabaseSystem

__all__ = ["AVDatabaseSystem", "ResourceManager", "SharedDevicePool"]
