"""The annotation store: typed annotations persisted through the db tier.

Annotations are ordinary ``Annotation``-class objects in the object
database — written through :class:`~repro.db.transactions.Transaction`
(strict 2PL, wait-die), durable through whatever store the
:class:`~repro.db.database.Database` was built on (in-memory, WAL, or
the slotted-page :mod:`repro.db.pages` backend).  What makes them
*queryable* is the derived interval index: the store registers a router
with :meth:`Database.attach_index`, so every committed insert/update/
delete also lands in a per-``(value_id, track)``
:class:`~repro.annotations.intervals.IntervalIndex` — commit and index
can never drift, because both happen in :meth:`Database._reindex`.

Concurrency protocol (the part the paper leaves implicit):

* every writer takes an EXCLUSIVE lock on the *track sentinel* — a
  logical OID derived from ``sha256(value_id/track)`` — before its
  per-annotation locks;
* every index-backed scan takes the sentinel SHARED plus SHARED locks on
  each posting it yields (via the B-tree scan's ``on_visit`` hook).

Under wait-die, a younger writer that hits a scan's sentinel dies
(aborts, retriable) instead of mutating the tree under the iterator; an
older writer waits.  The B-tree's mutation-counter guard backstops the
protocol: an unlocked writer makes the scan raise rather than yield
from a restructured tree.

``bulk_load`` is the corpus path: chunked ``commit_ops`` straight into
the object store plus an O(n) bottom-up build of each track's interval
index — the only way a million-annotation corpus loads in seconds.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from repro.annotations.intervals import IntervalIndex
from repro.annotations.model import Annotation, AnnotationType, Payload
from repro.db.database import Database
from repro.db.locks import LockMode
from repro.db.objects import DBObject, OID
from repro.db.schema import AttributeSpec, ClassDef
from repro.db.store import OP_INSERT, Op
from repro.db.transactions import Transaction
from repro.errors import AnnotationError
from repro.obs import Obs, attach

__all__ = ["AnnotationStore", "TrackStats", "track_sentinel"]

TrackKey = Tuple[str, str]


def track_sentinel(value_id: str, track: str) -> OID:
    """The logical OID a track's scans and writers arbitrate through.

    Derived with SHA-256 (never ``hash()``, which is salted per process)
    so the sentinel is stable across runs and processes.
    """
    digest = hashlib.sha256(f"{value_id}/{track}".encode()).digest()
    return OID("AnnotationTrack", int.from_bytes(digest[:8], "big") >> 1)


@dataclass(frozen=True)
class TrackStats:
    """Planner-facing summary of one (value_id, track) index."""

    count: int
    min_start: float
    max_end: float
    sum_len: float

    @property
    def extent(self) -> float:
        return max(self.max_end - self.min_start, 0.0)

    @property
    def avg_len(self) -> float:
        return self.sum_len / self.count if self.count else 0.0


class _IntervalRouter:
    """Derived-index target: routes interval keys to per-track indexes."""

    def __init__(self, store: "AnnotationStore") -> None:
        self._store = store

    def insert(self, key, oid: OID) -> None:
        if key is None:
            return
        value_id, track, start, end = key
        self._store._track_index(value_id, track).add(start, end, oid)
        self._store._sum_len[(value_id, track)] += end - start
        self._store._total += 1

    def remove(self, key, oid: OID) -> None:
        if key is None:
            return
        value_id, track, start, end = key
        index = self._store._tracks.get((value_id, track))
        if index is None:
            return
        before = len(index)
        index.discard(start, end, oid)
        if len(index) < before:
            self._store._sum_len[(value_id, track)] -= end - start
            self._store._total -= 1

    def clear(self) -> None:
        self._store._tracks.clear()
        self._store._sum_len.clear()
        self._store._total = 0


def _interval_key(obj: DBObject):
    attrs = obj.attributes
    return (attrs["value_id"], attrs["track"], attrs["start"], attrs["end"])


class AnnotationStore:
    """Typed annotations + per-track interval indexes over a Database."""

    CLASS_NAME = "Annotation"

    def __init__(self, db: Optional[Database] = None,
                 obs: Optional[Obs] = None, min_degree: int = 16) -> None:
        self.obs = attach(obs)
        self.db = db if db is not None else Database(obs=self.obs)
        self._min_degree = min_degree
        self._types: Dict[str, AnnotationType] = {}
        self._tracks: Dict[TrackKey, IntervalIndex] = {}
        self._sum_len: Dict[TrackKey, float] = {}
        self._total = 0
        if self.CLASS_NAME not in self.db.schema:
            self.db.define_class(ClassDef(self.CLASS_NAME, attributes=[
                AttributeSpec("value_id", str, required=True),
                AttributeSpec("track", str, required=True),
                AttributeSpec("atype", str, required=True),
                AttributeSpec("start", float, required=True),
                AttributeSpec("end", float, required=True),
                AttributeSpec("payload", tuple),
            ]))
        self.db.attach_index("annotations.intervals", self.CLASS_NAME,
                             _IntervalRouter(self), _interval_key)
        metrics = self.obs.metrics
        self._m_added = metrics.counter("annotations.added")
        self._m_removed = metrics.counter("annotations.removed")
        self._m_bulk = metrics.counter("annotations.bulk_loaded")
        self._m_scans = metrics.counter("annotations.track_scans")

    # -- types -----------------------------------------------------------
    def define_type(self, atype: AnnotationType) -> AnnotationType:
        if atype.name in self._types:
            raise AnnotationError(
                f"annotation type {atype.name!r} already defined")
        self._types[atype.name] = atype
        return atype

    def type(self, name: str) -> AnnotationType:
        try:
            return self._types[name]
        except KeyError:
            raise AnnotationError(f"unknown annotation type {name!r}") from None

    def types(self) -> List[str]:
        return sorted(self._types)

    # -- writes ----------------------------------------------------------
    def _check_interval(self, start: float, end: float) -> None:
        if not (isinstance(start, float) and isinstance(end, float)):
            raise AnnotationError("interval endpoints must be floats")
        if not start < end:
            raise AnnotationError(
                f"annotation interval [{start!r}, {end!r}) must have "
                f"start < end (zero-length annotations are not allowed)")

    def annotate(self, value_id: str, track: str, atype: str,
                 start: float, end: float,
                 payload: Union[Mapping[str, Any], Payload, None] = None,
                 tx: Optional[Transaction] = None) -> OID:
        """Insert one annotation (autocommits unless given a transaction)."""
        self._check_interval(start, end)
        canonical = self.type(atype).validate_payload(payload)
        if tx is None:
            with self.db.begin() as own:
                return self.annotate(value_id, track, atype, start, end,
                                     canonical, tx=own)
        # Sentinel first, per-annotation lock second — the fixed order
        # every writer and scan shares, so wait-die sees the conflict at
        # the track granularity before any tree state is at risk.
        tx.lock(track_sentinel(value_id, track), LockMode.EXCLUSIVE)
        oid = tx.insert(self.CLASS_NAME, value_id=value_id, track=track,
                        atype=atype, start=start, end=end, payload=canonical)
        self._m_added.inc()
        return oid

    def remove(self, oid: OID, tx: Optional[Transaction] = None) -> None:
        """Delete one annotation (autocommits unless given a transaction)."""
        if tx is None:
            with self.db.begin() as own:
                self.remove(oid, tx=own)
            return
        ann = Annotation.from_object(tx.read(oid))
        tx.lock(track_sentinel(ann.value_id, ann.track), LockMode.EXCLUSIVE)
        tx.delete(oid)
        self._m_removed.inc()

    # -- reads -----------------------------------------------------------
    def get(self, oid: OID) -> Annotation:
        """Non-transactional read of the latest committed snapshot."""
        return Annotation.from_object(self.db.get(oid))

    def read(self, oid: OID, tx: Transaction) -> Annotation:
        return Annotation.from_object(tx.read(oid))

    def __len__(self) -> int:
        return self._total

    def tracks(self) -> List[TrackKey]:
        return sorted(self._tracks)

    def tracks_of(self, value_id: str) -> List[TrackKey]:
        return sorted(key for key in self._tracks if key[0] == value_id)

    def track_stats(self, value_id: str, track: str) -> TrackStats:
        index = self._tracks.get((value_id, track))
        if index is None or not len(index):
            return TrackStats(0, 0.0, 0.0, 0.0)
        return TrackStats(len(index), index.min_start(), index.max_end(),
                          self._sum_len[(value_id, track)])

    def _track_index(self, value_id: str, track: str) -> IntervalIndex:
        key = (value_id, track)
        index = self._tracks.get(key)
        if index is None:
            index = IntervalIndex(self.CLASS_NAME,
                                  f"__interval__/{value_id}/{track}",
                                  self._min_degree)
            self._tracks[key] = index
            self._sum_len[key] = 0.0
        return index

    def track_index(self, value_id: str, track: str) -> IntervalIndex:
        """The live interval index of one track (read-only to callers)."""
        index = self._tracks.get((value_id, track))
        if index is None:
            raise AnnotationError(f"no annotations on {value_id}/{track}")
        return index

    def scan_track(self, value_id: str, track: str,
                   tx: Optional[Transaction] = None,
                   lo: Optional[float] = None, hi: Optional[float] = None
                   ) -> Iterator[Annotation]:
        """Ordered scan of one track, read-locked when ``tx`` is given.

        With a transaction, the sentinel is locked SHARED up front and
        each posting is locked SHARED as the scan reaches it (the B-tree
        ``on_visit`` hook) — held to commit under strict 2PL, so a
        concurrent younger writer dies under wait-die instead of
        mutating the tree mid-scan.
        """
        index = self._tracks.get((value_id, track))
        if index is None:
            return iter(())
        self._m_scans.inc()
        on_visit = None
        if tx is not None:
            tx.lock(track_sentinel(value_id, track), LockMode.SHARED)

            def on_visit(key, oids, _tx=tx):
                for oid in oids:
                    _tx.lock(oid, LockMode.SHARED)

        reader = tx.read if tx is not None else self.db.get
        return (Annotation.from_object(reader(oid))
                for lo_key, oids in index.scan(
                    lo=None if lo is None else (lo,),
                    hi=None if hi is None else (hi,),
                    include_hi=False, on_visit=on_visit)
                for oid in oids)

    # -- bulk corpus loading --------------------------------------------
    def bulk_load(self, rows: Iterable[Tuple[str, str, str, float, float,
                                             Payload]],
                  chunk: int = 50_000) -> int:
        """Load many annotations fast: chunked commits + O(n) index builds.

        Rows are ``(value_id, track, atype, start, end, payload)`` with
        the payload already in canonical sorted-pairs form.  The load is
        validated per row (type registered, start < end) but skips the
        per-object schema walk and per-row locking of the transactional
        path — this is a corpus loader for a store without concurrent
        writers, not an online write path.  Indexes for *fresh* tracks
        are built bottom-up; tracks that already have postings fall back
        to per-key inserts.
        """
        pending: List[Op] = []
        per_track: Dict[TrackKey, List[Tuple[float, float, int, OID]]] = {}
        store = self.db._store
        loaded = 0

        def flush() -> None:
            if pending:
                store.commit_ops(next(self.db._tx_ids), list(pending))
                self.db.stats["commits"] += 1
                pending.clear()

        for value_id, track, atype, start, end, payload in rows:
            if atype not in self._types:
                raise AnnotationError(f"unknown annotation type {atype!r}")
            self._check_interval(start, end)
            oid = store.next_oid(self.CLASS_NAME)
            pending.append((OP_INSERT, DBObject(oid, {
                "value_id": value_id, "track": track, "atype": atype,
                "start": start, "end": end, "payload": payload})))
            per_track.setdefault((value_id, track), []).append(
                (start, end, oid.serial, oid))
            loaded += 1
            if len(pending) >= chunk:
                flush()
        flush()

        for (value_id, track), entries in sorted(per_track.items()):
            entries.sort()
            index = self._track_index(value_id, track)
            if len(index):
                for start, end, _, oid in entries:
                    index.add(start, end, oid)
            else:
                index.bulk_load(((start, end, serial), (oid,))
                                for start, end, serial, oid in entries)
            self._sum_len[(value_id, track)] += sum(
                end - start for start, end, _, _ in entries)
            self._total += len(entries)
        self._m_bulk.inc(loaded)
        return loaded
