"""Named, seeded annotation-query scenarios for the CLI and CI.

Each scenario builds a fresh store, loads a pinned corpus, runs a
battery of temporal queries **three ways** — planner-chosen, forced
index, forced scan — and cross-checks that every way returned the
identical rows.  The returned facts are pure data (counts, plan modes,
corpus fingerprint, agreement flags): no wall-clock anywhere, so two
runs of the same seed print byte-identical output — the contract the
CI determinism job diffs.

* ``speech`` — Cassidy & Bird's running examples: words during a
  window, phones overlapping it, speaker turns before/after a cut
  point, and the classic track join "words during speaker turns".
* ``dance`` — the dance-video flavor: gestures overlapping scene
  sections, payload-filtered retrieval, and exact ``meets`` cuts laid
  down by hand through the transactional write path.
* ``planner`` — the cost model on stage: the same store answering a
  pinned narrow window (index wins) and an unpinned whole-extent
  predicate (scan wins), with both estimates in the facts.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.annotations.corpus import (CorpusSpec, corpus_fingerprint,
                                      load_corpus)
from repro.annotations.query import (AQ, AnnotationJoin, AnnotationQuery,
                                     run, run_join)
from repro.annotations.store import AnnotationStore
from repro.obs import current

__all__ = ["SCENARIOS", "dance", "planner", "speech", "summary_line"]


def _run_checked(store: AnnotationStore, queries: List[AnnotationQuery],
                 joins: List[AnnotationJoin], mode: str,
                 facts: Dict[str, object]) -> None:
    """Run the battery in ``mode``, cross-check against both forced paths."""
    plans: List[str] = []
    agree = True
    for i, query in enumerate(queries, start=1):
        chosen = run(store, query, mode=mode)
        index_rows = run(store, query, mode="index").rows
        scan_rows = run(store, query, mode="scan").rows
        agree = agree and chosen.rows == index_rows == scan_rows
        plans.append(chosen.plan.mode)
        facts[f"q{i}_rows"] = len(chosen.rows)
    for i, join in enumerate(joins, start=1):
        chosen = run_join(store, join, mode=mode)
        index_rows = run_join(store, join, mode="index").rows
        scan_rows = run_join(store, join, mode="scan").rows
        agree = agree and chosen.rows == index_rows == scan_rows
        plans.append(chosen.plan.mode)
        facts[f"join{i}_pairs"] = len(chosen.rows)
    facts["plans"] = ",".join(plans)
    facts["all_agree"] = agree
    facts["queries"] = len(queries) + len(joins)


def _finish(facts: Dict[str, object]) -> Dict[str, object]:
    metrics = current().metrics
    facts["plans_index"] = metrics.counter("annotations.plans_index").value
    facts["plans_scan"] = metrics.counter("annotations.plans_scan").value
    return facts


def speech(seed: int = 0, mode: str = "auto") -> Dict[str, object]:
    """Annotated-speech retrieval: window predicates plus the turn join."""
    store = AnnotationStore()
    spec = CorpusSpec(seed=seed, values=40, annotations=6000,
                      duration_s=120.0)
    facts: Dict[str, object] = dict(load_corpus(store, spec))
    facts["fingerprint"] = corpus_fingerprint(spec)[:12]
    # Hand-laid exact cuts so ``meets`` has guaranteed hits: a turn
    # ending exactly where the query window opens, through the
    # transactional write path (sentinel + wait-die discipline).
    store.annotate("value-00000", "audio", "turn", 30.0, 45.0,
                   {"label": "turn-live"})
    store.annotate("value-00000", "audio", "turn", 45.0, 60.0,
                   {"label": "turn-live"})
    value, track = "value-00000", "audio"
    queries = [
        AQ.on(value, track).of_type("word").during(10.0, 40.0),
        AQ.on(value, track).of_type("phone").overlaps(20.0, 22.0),
        AQ.on(value, track).of_type("turn").before(45.0),
        AQ.on(value, track).after(110.0),
        AQ.on(value, track).meets(45.0, 60.0),
        AQ.of_type("scene").during(0.0, 15.0),
    ]
    joins = [AnnotationJoin(AQ.on(value, track).of_type("word"), "during",
                            AQ.on(value, track).of_type("turn"))]
    _run_checked(store, queries, joins, mode, facts)
    return _finish(facts)


def dance(seed: int = 0, mode: str = "auto") -> Dict[str, object]:
    """Dance-video semantics: gestures vs scenes, payload filters, cuts."""
    store = AnnotationStore()
    spec = CorpusSpec(seed=seed + 17, values=30, annotations=5000,
                      duration_s=180.0, tracks=("video", "motion"))
    facts: Dict[str, object] = dict(load_corpus(store, spec))
    facts["fingerprint"] = corpus_fingerprint(spec)[:12]
    store.annotate("value-00001", "video", "scene", 60.0, 90.0,
                   {"label": "scene-live"})
    store.annotate("value-00001", "video", "gesture", 55.0, 60.0,
                   {"label": "gesture-cut"})
    value = "value-00001"
    queries = [
        AQ.on(value, "video").of_type("gesture").overlaps(60.0, 90.0),
        AQ.on(value).of_type("scene").during(30.0, 170.0),
        AQ.on(value, "video").meets(60.0, 90.0),
        AQ.of_type("gesture").where(label="gesture-003").during(0.0, 180.0),
        AQ.on(value, "motion").before(20.0),
    ]
    joins = [AnnotationJoin(AQ.on(value, "video").of_type("gesture"),
                            "overlaps",
                            AQ.on(value, "video").of_type("scene"))]
    _run_checked(store, queries, joins, mode, facts)
    return _finish(facts)


def planner(seed: int = 0, mode: str = "auto") -> Dict[str, object]:
    """The cost model choosing differently for narrow vs broad queries."""
    store = AnnotationStore()
    spec = CorpusSpec(seed=seed + 31, values=60, annotations=12000,
                      duration_s=300.0)
    facts: Dict[str, object] = dict(load_corpus(store, spec))
    facts["fingerprint"] = corpus_fingerprint(spec)[:12]
    narrow = AQ.on("value-00000", "audio").of_type("word").during(10.0, 14.0)
    broad = AQ.of_type("word").overlaps(0.0, 300.0)
    queries = [narrow, broad]
    _run_checked(store, queries, [], mode, facts)
    narrow_plan = run(store, narrow).plan
    broad_plan = run(store, broad).plan
    facts["narrow_mode"] = narrow_plan.mode
    facts["narrow_est_index"] = round(narrow_plan.est_index, 1)
    facts["narrow_est_scan"] = round(narrow_plan.est_scan, 1)
    facts["broad_mode"] = broad_plan.mode
    facts["broad_est_index"] = round(broad_plan.est_index, 1)
    facts["broad_est_scan"] = round(broad_plan.est_scan, 1)
    return _finish(facts)


SCENARIOS: Dict[str, Callable[..., Dict[str, object]]] = {
    "speech": speech,
    "dance": dance,
    "planner": planner,
}


def summary_line(name: str, facts: Dict[str, object]) -> str:
    """One deterministic line per run (greppable, diffable in CI)."""
    return (f"query {name}: n={facts['annotations']} "
            f"queries={facts['queries']} plans={facts['plans']} "
            f"agree={facts['all_agree']}")
