"""A start-keyed B-tree with max-end augmentation for interval queries.

The classic interval-tree trick (CLRS §14.3) grafted onto
:class:`repro.db.btree.BTreeIndex`: keys are ``(start, end, serial)``
triples — unique per annotation, so key order *is* the deterministic
result order — and every node memoizes the maximum ``end`` in its
subtree.  A window query descends the tree pruning any subtree whose
``max_end`` cannot reach the window, giving O(log n + k) retrieval.

Keeping the augmentation exact through top-down splits, borrows and
merges is where hand-rolled interval trees rot.  Here the memo is
*lazy*: each node stamps the tree's mutation counter (``_mods``) when
its ``max_end`` is computed, and any later mutation bumps the counter,
invalidating every memo at once.  The first query after a write
recomputes along its path (worst case O(n), amortized over the batch of
writes); every query after that is O(log n + k) again.  Correctness
never depends on write-path bookkeeping — the memo is recomputed from
the tree itself whenever it is stale.

Tuple-key bound trick used throughout: a 1-tuple ``(t,)`` compares
*below* every ``(t, end, serial)`` triple (shorter prefix sorts first),
so it serves as an inclusive lower / exclusive upper bound on ``start``
without inventing sentinel end/serial values.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.db.btree import BTreeIndex, _Node
from repro.db.objects import OID
from repro.errors import AnnotationError

__all__ = ["IntervalIndex", "IntervalKey"]

#: (start, end, serial) — serial breaks ties so keys are unique.
IntervalKey = Tuple[float, float, int]

_NEG_INF = float("-inf")
_POS_INF = float("inf")


class _IntervalNode(_Node):
    __slots__ = ("max_end", "aug_mods")

    def __init__(self) -> None:
        super().__init__()
        self.max_end: float = _NEG_INF
        self.aug_mods: int = -1  # never equal to a live mod counter


class IntervalIndex(BTreeIndex):
    """(start, end, serial) -> {oid} with pruned window descent."""

    node_class = _IntervalNode

    def __init__(self, class_name: str = "Annotation",
                 attribute: str = "__interval__",
                 min_degree: int = 16) -> None:
        super().__init__(class_name, attribute, min_degree)

    # -- posting maintenance --------------------------------------------
    def add(self, start: float, end: float, oid: OID) -> None:
        if not start < end:
            raise AnnotationError(
                f"interval [{start!r}, {end!r}) must have start < end")
        self.insert((start, end, oid.serial), oid)

    def discard(self, start: float, end: float, oid: OID) -> None:
        self.remove((start, end, oid.serial), oid)

    def clear(self) -> None:
        self.__init__(self.class_name, self.attribute, self._t)

    # -- augmentation ----------------------------------------------------
    def _max_end(self, node: _IntervalNode) -> float:
        if node.aug_mods != self._mods:
            best = _NEG_INF
            for key in node.keys:
                if key[1] > best:
                    best = key[1]
            for child in node.children:
                child_best = self._max_end(child)
                if child_best > best:
                    best = child_best
            node.max_end = best
            node.aug_mods = self._mods
        return node.max_end

    def max_end(self) -> float:
        """Largest interval end in the index (-inf when empty)."""
        return self._max_end(self._root)

    def min_start(self) -> float:
        """Smallest interval start in the index (+inf when empty)."""
        key = self.min_key()
        return _POS_INF if key is None else key[0]

    # -- window walks ----------------------------------------------------
    # Every walk yields (key, sorted-oid-tuple) in ascending key order
    # and re-checks the mutation counter before each yield, exactly like
    # BTreeIndex.scan — an in-flight walk outliving a write is a bug in
    # the caller's locking, and we refuse to paper over it.
    def _guard(self, expected: int) -> None:
        if self._mods != expected:
            raise AnnotationError(
                "interval index mutated during an in-flight window walk")

    def overlapping(self, lo: float, hi: float
                    ) -> Iterator[Tuple[IntervalKey, Tuple[OID, ...]]]:
        """Intervals sharing at least an instant with ``[lo, hi)``."""
        return self._overlap_walk(self._root, lo, hi, self._mods)

    def _overlap_walk(self, node: _IntervalNode, lo: float, hi: float,
                      expected: int
                      ) -> Iterator[Tuple[IntervalKey, Tuple[OID, ...]]]:
        if self._max_end(node) <= lo:
            return  # nothing below can reach past the window's start
        children = node.children
        for i, key in enumerate(node.keys):
            if children and self._max_end(children[i]) > lo:
                yield from self._overlap_walk(children[i], lo, hi, expected)
            if key[0] >= hi:
                return  # this key and everything rightward starts too late
            if key[1] > lo:
                self._guard(expected)
                yield key, tuple(sorted(node.buckets[i]))
        if children and self._max_end(children[-1]) > lo:
            yield from self._overlap_walk(children[-1], lo, hi, expected)

    def during(self, lo: float, hi: float
               ) -> Iterator[Tuple[IntervalKey, Tuple[OID, ...]]]:
        """Intervals contained in ``[lo, hi)``: starts in range + end test."""
        for key, oids in self.scan(lo=(lo,), hi=(hi,), include_hi=False):
            if key[1] <= hi:
                yield key, oids

    def before(self, lo: float
               ) -> Iterator[Tuple[IntervalKey, Tuple[OID, ...]]]:
        """Intervals ending at or before ``lo`` (they also start below it)."""
        for key, oids in self.scan(hi=(lo,), include_hi=False):
            if key[1] <= lo:
                yield key, oids

    def after(self, hi: float
              ) -> Iterator[Tuple[IntervalKey, Tuple[OID, ...]]]:
        """Intervals starting at or after ``hi``."""
        return self.scan(lo=(hi,))

    def meets(self, lo: float, hi: float
              ) -> Iterator[Tuple[IntervalKey, Tuple[OID, ...]]]:
        """Intervals touching the window exactly: end == lo or start == hi.

        The two sides are disjoint (end == lo forces start < lo, and
        start == hi forces start >= hi > lo), and every left-side key
        starts below every right-side key, so chaining preserves order.
        """
        yield from self._ending_at_walk(self._root, lo, self._mods)
        yield from self.scan(lo=(hi,), hi=(hi, _POS_INF, 0))

    def _ending_at_walk(self, node: _IntervalNode, lo: float, expected: int
                        ) -> Iterator[Tuple[IntervalKey, Tuple[OID, ...]]]:
        if self._max_end(node) < lo:
            return
        children = node.children
        for i, key in enumerate(node.keys):
            if children and self._max_end(children[i]) >= lo:
                yield from self._ending_at_walk(children[i], lo, expected)
            if key[0] >= lo:
                return  # start >= lo implies end > lo: no exact touch right
            if key[1] == lo:
                self._guard(expected)
                yield key, tuple(sorted(node.buckets[i]))
        if children and self._max_end(children[-1]) >= lo:
            yield from self._ending_at_walk(children[-1], lo, expected)

    def window(self, op: str, lo: float, hi: float
               ) -> Iterator[Tuple[IntervalKey, Tuple[OID, ...]]]:
        """Dispatch one of the five window operators by name."""
        if op == "overlaps":
            return self.overlapping(lo, hi)
        if op == "during":
            return self.during(lo, hi)
        if op == "before":
            return self.before(lo)
        if op == "after":
            return self.after(hi)
        if op == "meets":
            return self.meets(lo, hi)
        raise AnnotationError(f"unknown window operator {op!r}")
