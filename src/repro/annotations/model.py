"""Typed annotations over half-open intervals of AV values.

An *annotation* attaches typed, structured content to a time slice
``[start, end)`` of one track of an AV value (or temporal composite):
a recognized word, a phone, a speaker turn, a dance gesture, a scene
boundary.  The model follows *Querying Databases of Annotated Speech*
(Cassidy & Bird): annotations live on named tracks, carry a type drawn
from a registered :class:`AnnotationType`, and a small attribute payload
validated against that type's field schema — the typed-annotation
semantics of the dance-video annotation work in PAPERS.md.

Intervals are half-open and strictly positive (``start < end``), the
same convention as :mod:`repro.avtime`.  The five *window predicates*
the query surface exposes are retrieval semantics over a query window
``[lo, hi)`` — deliberately looser than Allen's thirteen exact relations
(which remain in :mod:`repro.avtime.interval`):

========  =====================================  =======================
operator  meaning                                condition
========  =====================================  =======================
overlaps  shares at least an instant             ``s < hi and e > lo``
during    contained in the window                ``lo <= s and e <= hi``
before    ends at or before the window opens     ``e <= lo``
after     starts at or after the window closes   ``s >= hi``
meets     touches an endpoint exactly            ``e == lo or s == hi``
========  =====================================  =======================

Every predicate is a pure function of ``(s, e, lo, hi)``; the scan
executor applies them row-by-row and the interval index answers the
same questions by pruned descent — byte-identical result sets is a
tested invariant, not an aspiration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Tuple, Union

from repro.db.objects import DBObject, OID
from repro.errors import AnnotationError

__all__ = [
    "Annotation",
    "AnnotationType",
    "FieldSpec",
    "WINDOW_OPS",
    "op_after",
    "op_before",
    "op_during",
    "op_meets",
    "op_overlaps",
]

Payload = Tuple[Tuple[str, Any], ...]


# -- window predicates ----------------------------------------------------
def op_overlaps(s: float, e: float, lo: float, hi: float) -> bool:
    return s < hi and e > lo


def op_during(s: float, e: float, lo: float, hi: float) -> bool:
    return lo <= s and e <= hi


def op_before(s: float, e: float, lo: float, hi: float) -> bool:
    return e <= lo


def op_after(s: float, e: float, lo: float, hi: float) -> bool:
    return s >= hi


def op_meets(s: float, e: float, lo: float, hi: float) -> bool:
    return e == lo or s == hi


WINDOW_OPS = {
    "overlaps": op_overlaps,
    "during": op_during,
    "before": op_before,
    "after": op_after,
    "meets": op_meets,
}


@dataclass(frozen=True)
class FieldSpec:
    """One payload field of an annotation type."""

    name: str
    type: type = str
    required: bool = False


@dataclass(frozen=True)
class AnnotationType:
    """A named annotation type with a payload field schema."""

    name: str
    fields: Tuple[FieldSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise AnnotationError("annotation type needs a name")
        names = [spec.name for spec in self.fields]
        if len(names) != len(set(names)):
            raise AnnotationError(
                f"annotation type {self.name!r} repeats a payload field")

    def validate_payload(
            self, payload: Union[Mapping[str, Any],
                                 Iterable[Tuple[str, Any]], None]) -> Payload:
        """Validate and canonicalize a payload to sorted (name, value) pairs.

        The canonical tuple form is what gets stored: hashable, ordered,
        and cheap — a million-row corpus cannot afford a dict per row.
        """
        items: Dict[str, Any] = dict(payload or {})
        specs = {spec.name: spec for spec in self.fields}
        for key, value in items.items():
            spec = specs.get(key)
            if spec is None:
                raise AnnotationError(
                    f"type {self.name!r} has no payload field {key!r}")
            if not isinstance(value, spec.type):
                raise AnnotationError(
                    f"payload field {key!r} of type {self.name!r} wants "
                    f"{spec.type.__name__}, got {type(value).__name__}")
        for spec in self.fields:
            if spec.required and spec.name not in items:
                raise AnnotationError(
                    f"type {self.name!r} requires payload field "
                    f"{spec.name!r}")
        return tuple(sorted(items.items()))


@dataclass(frozen=True)
class Annotation:
    """One committed annotation, hydrated from its ``DBObject`` snapshot."""

    oid: OID
    value_id: str
    track: str
    atype: str
    start: float
    end: float
    payload: Payload = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def payload_dict(self) -> Dict[str, Any]:
        return dict(self.payload)

    @property
    def sort_key(self) -> Tuple[str, str, float, float, int]:
        """The one total order every execution path sorts by."""
        return (self.value_id, self.track, self.start, self.end,
                self.oid.serial)

    def to_row(self) -> str:
        """A canonical single-line rendering (used for byte comparisons)."""
        fields = " ".join(f"{k}={v!r}" for k, v in self.payload)
        return (f"{self.value_id}/{self.track} "
                f"[{self.start:.6f},{self.end:.6f}) {self.atype}"
                + (f" {fields}" if fields else ""))

    @classmethod
    def from_object(cls, obj: DBObject) -> "Annotation":
        attrs = obj.attributes
        return cls(oid=obj.oid, value_id=attrs["value_id"],
                   track=attrs["track"], atype=attrs["atype"],
                   start=attrs["start"], end=attrs["end"],
                   payload=attrs.get("payload") or ())
