"""Declarative temporal queries over the annotation store.

A query is a frozen value — built fluently, executed by whichever path
the planner picks::

    q = (AQ.on("newscast-3", "audio").of_type("word")
           .during(10.0, 25.0).where(speaker="anchor"))
    result = run(store, q)            # planner chooses index vs scan
    result = run(store, q, mode="scan")   # forced, for cross-checking

Both execution paths return *the same rows in the same order* — sorted
by ``(value_id, track, start, end, serial)``.  The index path gets that
order for free (tracks visited in sorted order, each track's walk is in
key order); the scan path sorts.  Equality of the two is a property
test and a benchmark assertion, which is what lets the planner be a
pure performance decision.

Track joins (Cassidy & Bird's cross-tier queries: "words during this
speaker turn", "gestures overlapping a music beat") pair a left query
with a right side and one of the five relations, evaluated left-row by
left-row: the index path turns each left interval into a pruned window
probe of the right side's tracks, the scan path nested-loops.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterator, List, Optional, Tuple

from repro.annotations.model import WINDOW_OPS, Annotation, Payload
from repro.annotations.store import AnnotationStore, TrackKey, track_sentinel
from repro.db.locks import LockMode
from repro.db.transactions import Transaction
from repro.errors import AnnotationError

__all__ = ["AQ", "AnnotationJoin", "AnnotationQuery", "QueryResult",
           "run", "run_join"]


@dataclass(frozen=True)
class AnnotationQuery:
    """One declarative annotation query (all fields optional)."""

    value_id: Optional[str] = None
    track: Optional[str] = None
    atype: Optional[str] = None
    op: Optional[str] = None
    lo: float = 0.0
    hi: float = 0.0
    payload: Payload = ()
    label: str = ""

    # -- fluent builders (each returns a new frozen query) ---------------
    def on(self, value_id: Optional[str] = None,
           track: Optional[str] = None) -> "AnnotationQuery":
        return replace(self, value_id=value_id, track=track)

    def of_type(self, atype: str) -> "AnnotationQuery":
        return replace(self, atype=atype)

    def where(self, **payload: Any) -> "AnnotationQuery":
        merged = dict(self.payload)
        merged.update(payload)
        return replace(self, payload=tuple(sorted(merged.items())))

    def named(self, label: str) -> "AnnotationQuery":
        return replace(self, label=label)

    def _window(self, op: str, lo: float, hi: float) -> "AnnotationQuery":
        if not lo < hi:
            raise AnnotationError(
                f"query window [{lo!r}, {hi!r}) must have lo < hi")
        return replace(self, op=op, lo=lo, hi=hi)

    def overlaps(self, lo: float, hi: float) -> "AnnotationQuery":
        return self._window("overlaps", lo, hi)

    def during(self, lo: float, hi: float) -> "AnnotationQuery":
        return self._window("during", lo, hi)

    def meets(self, lo: float, hi: float) -> "AnnotationQuery":
        return self._window("meets", lo, hi)

    def before(self, t: float) -> "AnnotationQuery":
        return replace(self, op="before", lo=t, hi=t)

    def after(self, t: float) -> "AnnotationQuery":
        return replace(self, op="after", lo=t, hi=t)

    # -- description (decision-log subject, CLI output) ------------------
    def describe(self) -> str:
        parts = []
        where = self.value_id or "*"
        if self.track:
            where += f"/{self.track}"
        elif self.value_id:
            where += "/*"
        parts.append(where)
        if self.atype:
            parts.append(f"type={self.atype}")
        if self.op in ("before", "after"):
            parts.append(f"{self.op} {self.lo:g}")
        elif self.op:
            parts.append(f"{self.op} [{self.lo:g},{self.hi:g})")
        for key, value in self.payload:
            parts.append(f"{key}={value!r}")
        return self.label or " ".join(parts)

    # -- residual predicate ----------------------------------------------
    def _matches_residual(self, attrs: dict) -> bool:
        """Everything but the temporal clause (used by the index path)."""
        if self.atype is not None and attrs["atype"] != self.atype:
            return False
        if self.payload:
            have = dict(attrs.get("payload") or ())
            for key, value in self.payload:
                if key not in have or have[key] != value:
                    return False
        return True

    def matches(self, attrs: dict) -> bool:
        """The full row predicate (the scan path's only tool)."""
        if self.value_id is not None and attrs["value_id"] != self.value_id:
            return False
        if self.track is not None and attrs["track"] != self.track:
            return False
        if not self._matches_residual(attrs):
            return False
        if self.op is not None:
            return WINDOW_OPS[self.op](attrs["start"], attrs["end"],
                                       self.lo, self.hi)
        return True


#: Entry point for fluent construction: ``AQ.on(...).during(...)``.
AQ = AnnotationQuery()


@dataclass(frozen=True)
class AnnotationJoin:
    """``left REL right``: pair left rows with related right rows."""

    left: AnnotationQuery
    relation: str
    right: AnnotationQuery

    def __post_init__(self) -> None:
        if self.relation not in WINDOW_OPS:
            raise AnnotationError(
                f"unknown join relation {self.relation!r}; "
                f"pick one of {sorted(WINDOW_OPS)}")
        if self.right.op is not None:
            raise AnnotationError(
                "the right side of a join takes its window from each "
                "left row; drop its temporal clause")

    def describe(self) -> str:
        return (f"{self.left.describe()} {self.relation.upper()} "
                f"{self.right.describe()}")


@dataclass
class QueryResult:
    """Rows plus the execution facts the caller/benchmarks inspect."""

    rows: List[Any]
    mode: str
    examined: int = 0
    plan: Optional[Any] = None  # the planner's PlanDecision

    @property
    def matched(self) -> int:
        return len(self.rows)


# -- execution: shared helpers --------------------------------------------
def _candidate_tracks(store: AnnotationStore,
                      query: AnnotationQuery) -> List[TrackKey]:
    if query.value_id is not None and query.track is not None:
        key = (query.value_id, query.track)
        return [key] if key in store._tracks else []
    if query.value_id is not None:
        return store.tracks_of(query.value_id)
    return store.tracks()


def _track_walk(store: AnnotationStore, key: TrackKey,
                query: AnnotationQuery) -> Iterator[Tuple[tuple, tuple]]:
    index = store._tracks[key]
    if query.op is None:
        return index.scan()
    return index.window(query.op, query.lo, query.hi)


# -- execution: the two paths ---------------------------------------------
def _run_index(store: AnnotationStore, query: AnnotationQuery,
               tx: Optional[Transaction]) -> QueryResult:
    rows: List[Annotation] = []
    examined = 0
    reader = store.db.get if tx is None else tx.read
    for track_key in _candidate_tracks(store, query):
        if tx is not None:
            tx.lock(track_sentinel(*track_key), LockMode.SHARED)
        for _, oids in _track_walk(store, track_key, query):
            for oid in oids:
                if tx is not None:
                    tx.lock(oid, LockMode.SHARED)
                obj = reader(oid)
                examined += 1
                if query._matches_residual(obj.attributes):
                    rows.append(Annotation.from_object(obj))
    # Tracks visited in sorted order, walks in key order: already sorted
    # by (value_id, track, start, end, serial).
    return QueryResult(rows, "index", examined)


def _run_scan(store: AnnotationStore, query: AnnotationQuery,
              tx: Optional[Transaction]) -> QueryResult:
    if tx is not None:
        # A consistent full scan keeps phantoms out the same way the
        # index path does: SHARED sentinels on every known track.
        for track_key in store.tracks():
            tx.lock(track_sentinel(*track_key), LockMode.SHARED)
    reader = store.db.get if tx is None else tx.read
    rows: List[Annotation] = []
    examined = 0
    matches = query.matches
    for oid in store.db._store.oids_of_class([store.CLASS_NAME]):
        obj = reader(oid)
        examined += 1
        if matches(obj.attributes):
            rows.append(Annotation.from_object(obj))
    rows.sort(key=lambda ann: ann.sort_key)
    return QueryResult(rows, "scan", examined)


def run(store: AnnotationStore, query: AnnotationQuery, mode: str = "auto",
        tx: Optional[Transaction] = None) -> QueryResult:
    """Plan and execute one query; ``mode`` forces a path for A/B runs."""
    from repro.annotations.planner import plan
    decision = plan(store, query, mode)
    if decision.mode == "index":
        result = _run_index(store, query, tx)
    else:
        result = _run_scan(store, query, tx)
    result.plan = decision
    return result


# -- joins ----------------------------------------------------------------
def _probe_window(relation: str, left: Annotation) -> Tuple[str, float, float]:
    """The right-side index walk answering ``left REL right``.

    The five relations read as window predicates with the *right* row's
    interval as the window — so each probe is the mirror walk: rights
    overlapping the left interval, rights containing it, rights starting
    after its end, rights ending before its start, rights touching it.
    """
    if relation == "overlaps":
        return ("overlaps", left.start, left.end)
    if relation == "during":    # left inside right => right overlaps left
        return ("overlaps", left.start, left.end)
    if relation == "before":    # left.end <= right.start
        return ("after", left.end, left.end)
    if relation == "after":     # left.start >= right.end
        return ("before", left.start, left.start)
    return ("meets", left.start, left.end)


def _run_join_index(store: AnnotationStore, join: AnnotationJoin,
                    lefts: List[Annotation],
                    tx: Optional[Transaction]) -> QueryResult:
    pairs: List[Tuple[Annotation, Annotation]] = []
    examined = 0
    reader = store.db.get if tx is None else tx.read
    relation = WINDOW_OPS[join.relation]
    for left in lefts:
        op, lo, hi = _probe_window(join.relation, left)
        probe = AnnotationQuery(value_id=join.right.value_id,
                                track=join.right.track, op=op, lo=lo, hi=hi)
        for track_key in _candidate_tracks(store, probe):
            if tx is not None:
                tx.lock(track_sentinel(*track_key), LockMode.SHARED)
            for key, oids in _track_walk(store, track_key, probe):
                if not relation(left.start, left.end, key[0], key[1]):
                    continue
                for oid in oids:
                    if oid == left.oid:
                        continue
                    if tx is not None:
                        tx.lock(oid, LockMode.SHARED)
                    obj = reader(oid)
                    examined += 1
                    if join.right._matches_residual(obj.attributes):
                        pairs.append((left, Annotation.from_object(obj)))
    return QueryResult(pairs, "index", examined)


def _run_join_scan(store: AnnotationStore, join: AnnotationJoin,
                   lefts: List[Annotation],
                   tx: Optional[Transaction]) -> QueryResult:
    rights = _run_scan(store, join.right, tx)
    relation = WINDOW_OPS[join.relation]
    pairs = [(left, right)
             for left in lefts
             for right in rights.rows
             if right.oid != left.oid
             and relation(left.start, left.end, right.start, right.end)]
    return QueryResult(pairs, "scan", rights.examined)


def run_join(store: AnnotationStore, join: AnnotationJoin,
             mode: str = "auto",
             tx: Optional[Transaction] = None) -> QueryResult:
    """Execute ``left REL right``; pairs sorted by (left, right) keys."""
    from repro.annotations.planner import plan_join
    left_result = run(store, join.left, mode, tx)
    decision = plan_join(store, join, len(left_result.rows), mode)
    if decision.mode == "index":
        result = _run_join_index(store, join, left_result.rows, tx)
    else:
        result = _run_join_scan(store, join, left_result.rows, tx)
    result.examined += left_result.examined
    result.plan = decision
    return result
