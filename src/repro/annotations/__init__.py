"""``repro.annotations`` — typed annotations + temporal queries over the db.

The subsystem that makes AV values a *database* in the paper's sense:
time-anchored content you can query, not just media you can play.

* :mod:`~repro.annotations.model` — annotation types, payload schemas,
  the five window predicates over half-open intervals;
* :mod:`~repro.annotations.intervals` — the max-end-augmented interval
  index layered on :class:`repro.db.btree.BTreeIndex`;
* :mod:`~repro.annotations.store` — persistence through the db tier's
  transactions, per-track indexes kept in lockstep with commits, bulk
  corpus loading, the sentinel-lock concurrency protocol;
* :mod:`~repro.annotations.query` — the declarative query surface
  (temporal predicates, type/payload filters, track joins) with
  equivalence-tested index and scan execution paths;
* :mod:`~repro.annotations.planner` — the cost model choosing between
  them, decisions logged to :mod:`repro.obs`;
* :mod:`~repro.annotations.corpus` — seeded million-row corpora;
* :mod:`~repro.annotations.scenarios` — the ``python -m repro query``
  scenario registry.
"""

from repro.annotations.corpus import (CorpusSpec, corpus_fingerprint,
                                      default_types, generate_rows,
                                      load_corpus)
from repro.annotations.intervals import IntervalIndex
from repro.annotations.model import (WINDOW_OPS, Annotation, AnnotationType,
                                     FieldSpec)
from repro.annotations.planner import PlanDecision, plan, plan_join
from repro.annotations.query import (AQ, AnnotationJoin, AnnotationQuery,
                                     QueryResult, run, run_join)
from repro.annotations.scenarios import SCENARIOS, summary_line
from repro.annotations.store import AnnotationStore, TrackStats, track_sentinel

__all__ = [
    "AQ",
    "Annotation",
    "AnnotationJoin",
    "AnnotationQuery",
    "AnnotationStore",
    "AnnotationType",
    "CorpusSpec",
    "FieldSpec",
    "IntervalIndex",
    "PlanDecision",
    "QueryResult",
    "SCENARIOS",
    "TrackStats",
    "WINDOW_OPS",
    "corpus_fingerprint",
    "default_types",
    "generate_rows",
    "load_corpus",
    "plan",
    "plan_join",
    "run",
    "run_join",
    "summary_line",
    "track_sentinel",
]
