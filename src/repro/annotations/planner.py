"""Cost-based index-vs-scan planning for annotation queries.

The planner prices both execution paths with a deliberately simple unit
model — row touches, weighted by what each path does per touch — and
picks the cheaper one.  It never affects *what* a query returns (the
paths are equivalence-tested), only how fast, which is what lets the
cost model stay an estimate:

* **scan**: every annotation in the store is fetched and run through
  the full predicate: ``N`` touches at unit cost.
* **index**: for each candidate track, one B-tree descent
  (``C_DESCENT * log2(n + 1)``) plus the estimated result rows, each
  costing ``C_EMIT`` (object fetch + residual filter — dearer than a
  scan touch).  Selectivity comes from per-track :class:`TrackStats`
  under a uniform-start assumption; ``meets`` is priced as a thin
  equality slice.

Every decision is emitted to the :mod:`repro.obs` DecisionLog
(``kind="plan"``, actor ``annotations.planner``) with both estimates,
so ``python -m repro explain``-style tooling and the scenario facts can
show *why* a path was taken; ``annotations.plans_index`` /
``annotations.plans_scan`` count the outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2

from repro.annotations.query import (AnnotationJoin, AnnotationQuery,
                                     _candidate_tracks)
from repro.annotations.store import AnnotationStore
from repro.errors import AnnotationError

__all__ = ["PlanDecision", "estimate_track_matches", "plan", "plan_join"]

#: Cost of one B-tree level during a descent, in scan-row units.
C_DESCENT = 2.0
#: Cost of emitting one index-path row (fetch + residual), ditto.
C_EMIT = 1.5
#: Assumed selectivity of the ``meets`` equality slice.
MEETS_FRACTION = 0.01


@dataclass(frozen=True)
class PlanDecision:
    """The planner's verdict for one query (or one join's right side)."""

    mode: str           # "index" | "scan"
    est_index: float    # modeled index-path cost, scan-row units
    est_scan: float     # modeled scan-path cost, ditto
    tracks: int         # candidate tracks the index path would visit
    forced: bool        # mode was dictated by the caller
    subject: str        # the query description the decision was logged under


def _clamp(fraction: float) -> float:
    return min(1.0, max(0.0, fraction))


def estimate_track_matches(stats, op, lo: float, hi: float) -> float:
    """Expected result rows from one track, uniform-start model."""
    if stats.count == 0:
        return 0.0
    if op is None:
        return float(stats.count)
    extent = stats.extent or 1e-9
    if op == "overlaps":
        # A window catches starts in [lo - avg_len, hi): widen by the
        # mean annotation length.
        return stats.count * _clamp((hi - lo + stats.avg_len)
                                    / (extent + stats.avg_len))
    if op == "during":
        return stats.count * _clamp((hi - lo) / extent)
    if op == "before":
        return stats.count * _clamp((lo - stats.min_start) / extent)
    if op == "after":
        return stats.count * _clamp((stats.max_end - hi) / extent)
    if op == "meets":
        return max(1.0, stats.count * MEETS_FRACTION)
    raise AnnotationError(f"unknown window operator {op!r}")


def _index_cost(store: AnnotationStore, query: AnnotationQuery,
                tracks) -> float:
    cost = 0.0
    for value_id, track in tracks:
        stats = store.track_stats(value_id, track)
        cost += C_DESCENT * log2(stats.count + 1)
        cost += C_EMIT * estimate_track_matches(stats, query.op,
                                                query.lo, query.hi)
    return cost


def _decide(store: AnnotationStore, subject: str, est_index: float,
            est_scan: float, n_tracks: int, mode: str) -> PlanDecision:
    if mode not in ("auto", "index", "scan"):
        raise AnnotationError(
            f"unknown planner mode {mode!r}; pick auto, index or scan")
    forced = mode != "auto"
    chosen = mode if forced else ("index" if est_index <= est_scan
                                  else "scan")
    decision = PlanDecision(chosen, est_index, est_scan, n_tracks,
                            forced, subject)
    obs = store.obs
    obs.decisions.emit("plan", subject, actor="annotations.planner",
                       mode=chosen, est_index=round(est_index, 1),
                       est_scan=round(est_scan, 1), tracks=n_tracks,
                       forced=forced)
    obs.metrics.counter(f"annotations.plans_{chosen}").inc()
    return decision


def plan(store: AnnotationStore, query: AnnotationQuery,
         mode: str = "auto") -> PlanDecision:
    """Price both paths for one query and pick (or obey) a mode."""
    tracks = _candidate_tracks(store, query)
    est_scan = float(len(store))
    est_index = _index_cost(store, query, tracks)
    return _decide(store, query.describe(), est_index, est_scan,
                   len(tracks), mode)


def plan_join(store: AnnotationStore, join: AnnotationJoin, n_lefts: int,
              mode: str = "auto") -> PlanDecision:
    """Price the right side of a join: per-left probes vs one full scan.

    The index path pays one pruned probe per left row; the scan path
    pays one full scan (the nested loop's pair checks are priced into
    ``C_EMIT``-free cheap compares and ignored, which biases toward
    scan only when the left side is large — the conservative direction).
    """
    tracks = _candidate_tracks(store, join.right)
    est_scan = float(len(store))
    per_probe = 0.0
    for value_id, track in tracks:
        stats = store.track_stats(value_id, track)
        per_probe += C_DESCENT * log2(stats.count + 1)
        # A probe window is one left interval: model it as an average
        # annotation-length window of overlaps.
        width = stats.avg_len
        extent = stats.extent or 1e-9
        per_probe += C_EMIT * stats.count * _clamp(
            (2 * width) / (extent + width) if width else 1.0 / extent)
    est_index = n_lefts * per_probe
    return _decide(store, join.describe(), est_index, est_scan,
                   len(tracks), mode)
