"""Seeded synthetic annotation corpora, at bulk-load scale.

The generator follows the :mod:`repro.synth.arrivals` RNG-stream
discipline: all randomness comes from one numpy ``PCG64`` generator
whose seed sequence is SHA-256 of the corpus parameters — platform
stable, so the same spec always produces the byte-identical corpus
(:func:`corpus_fingerprint` hashes the raw arrays to prove it).

The shape mirrors an annotated AV archive: thousands of values, value
popularity Zipf-distributed (a few values carry deep annotation tiers,
a long tail is sparse), two tracks per value, annotation types drawn
from a per-corpus mix, starts uniform over each value's duration and
lengths exponential with a per-type mean.  Everything is drawn as flat
vectorized arrays first and assembled into rows second — at a million
rows, per-row Python sampling is the difference between seconds and
minutes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

import numpy as np

from repro.annotations.model import AnnotationType, FieldSpec, Payload
from repro.annotations.store import AnnotationStore
from repro.errors import AnnotationError
from repro.synth.arrivals import zipf_pmf

__all__ = ["CorpusSpec", "corpus_fingerprint", "default_types",
           "generate_rows", "load_corpus"]

#: (type name, mix weight, mean length in seconds, label vocabulary size)
_DEFAULT_MIX = (
    ("word", 0.40, 0.35, 24),
    ("phone", 0.30, 0.09, 12),
    ("turn", 0.10, 8.0, 6),
    ("gesture", 0.12, 1.8, 10),
    ("scene", 0.08, 14.0, 8),
)


def default_types() -> Tuple[AnnotationType, ...]:
    """The type schema every generated corpus is validated against."""
    return tuple(
        AnnotationType(name, (FieldSpec("label", str, required=True),))
        for name, _, _, _ in _DEFAULT_MIX)


@dataclass(frozen=True)
class CorpusSpec:
    """Parameters of one synthetic corpus (the RNG seed material)."""

    seed: int = 0
    values: int = 2000
    annotations: int = 1_000_000
    duration_s: float = 600.0
    viral_share: float = 0.05
    tracks: Tuple[str, ...] = ("audio", "video")
    mix: Tuple[Tuple[str, float, float, int], ...] = field(
        default=_DEFAULT_MIX)

    def rng(self) -> np.random.Generator:
        tag = (f"annotations-corpus:{self.seed}:{self.values}:"
               f"{self.annotations}:{self.duration_s!r}:{self.viral_share!r}")
        digest = hashlib.sha256(tag.encode()).digest()
        words = [int.from_bytes(digest[i:i + 4], "big")
                 for i in range(0, 16, 4)]
        return np.random.Generator(np.random.PCG64(
            np.random.SeedSequence(words)))


def _draw_arrays(spec: CorpusSpec):
    """All the corpus randomness, as flat arrays indexed by row."""
    if spec.values < 1 or spec.annotations < 1:
        raise AnnotationError("corpus needs >= 1 value and >= 1 annotation")
    rng = spec.rng()
    per_value = rng.multinomial(spec.annotations,
                                zipf_pmf(spec.values, spec.viral_share))
    value_idx = np.repeat(np.arange(spec.values), per_value)
    n = value_idx.size
    track_idx = rng.integers(0, len(spec.tracks), size=n)
    weights = np.array([w for _, w, _, _ in spec.mix], dtype=np.float64)
    type_idx = rng.choice(len(spec.mix), size=n, p=weights / weights.sum())
    means = np.array([m for _, _, m, _ in spec.mix], dtype=np.float64)
    lengths = np.clip(rng.exponential(means[type_idx]), 0.02, 60.0)
    starts = rng.uniform(0.0, spec.duration_s, size=n)
    # Keep every interval inside the value: shift, never truncate, so
    # lengths keep their per-type law.
    overhang = starts + lengths - spec.duration_s
    starts = np.where(overhang > 0.0, np.maximum(starts - overhang, 0.0),
                      starts)
    lengths = np.minimum(lengths, spec.duration_s - starts)
    label_idx = rng.integers(0, 1 << 16, size=n)
    return value_idx, track_idx, type_idx, starts, lengths, label_idx


def corpus_fingerprint(spec: CorpusSpec) -> str:
    """SHA-256 over the raw drawn arrays — the corpus identity."""
    value_idx, track_idx, type_idx, starts, lengths, label_idx = \
        _draw_arrays(spec)
    folded = hashlib.sha256()
    for array in (value_idx, track_idx, type_idx, starts, lengths,
                  label_idx):
        folded.update(np.ascontiguousarray(array).tobytes())
    return folded.hexdigest()


def generate_rows(spec: CorpusSpec
                  ) -> Iterator[Tuple[str, str, str, float, float, Payload]]:
    """Yield bulk-load rows ``(value_id, track, atype, start, end, payload)``."""
    value_idx, track_idx, type_idx, starts, lengths, label_idx = \
        _draw_arrays(spec)
    value_ids = [f"value-{i:05d}" for i in range(spec.values)]
    names = [name for name, _, _, _ in spec.mix]
    vocab = [v for _, _, _, v in spec.mix]
    # Pre-render every (type, label) payload once; rows share the tuples.
    payloads = [
        tuple([("label", f"{names[t]}-{k:03d}")])
        for t in range(len(spec.mix)) for k in range(vocab[t])]
    offsets = np.cumsum([0] + vocab[:-1])
    starts = starts.tolist()
    lengths = lengths.tolist()
    for i in range(value_idx.size):
        t = type_idx[i]
        start = starts[i]
        yield (value_ids[value_idx[i]], spec.tracks[track_idx[i]],
               names[t], start, start + lengths[i],
               payloads[offsets[t] + label_idx[i] % vocab[t]])


def load_corpus(store: AnnotationStore, spec: CorpusSpec) -> Dict[str, object]:
    """Define the default types, bulk-load the corpus, return its facts."""
    for atype in default_types():
        if atype.name not in store.types():
            store.define_type(atype)
    loaded = store.bulk_load(generate_rows(spec))
    return {
        "annotations": loaded,
        "values": spec.values,
        "tracks": len(store.tracks()),
        "seed": spec.seed,
    }
