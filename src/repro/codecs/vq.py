"""Block vector-quantization codec (DVI/Indeo-flavoured).

DVI's Production Level Video used vector quantization; this codec keeps
that flavour: each frame channel is tiled into 2x2 blocks, a 256-entry
codebook is trained per frame by uniform luminance binning with centroid
refinement (a single Lloyd iteration — cheap and deterministic), and each
block is replaced by its nearest codebook index.  Indices plus codebook
are DEFLATE-packed.  Fixed ~4x pre-DEFLATE ratio with moderate loss.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Sequence

import numpy as np

from repro.codecs.base import VideoCodec
from repro.errors import CodecError
from repro.values.video import DVIVideoValue

BLOCK = 2
CODEBOOK_SIZE = 256
_VEC = BLOCK * BLOCK


def _to_vectors(plane: np.ndarray) -> tuple[np.ndarray, tuple[int, int]]:
    """Pad a (H, W) plane to 2x2 tiles and return (n, 4) block vectors."""
    h, w = plane.shape
    ph, pw = (-h) % BLOCK, (-w) % BLOCK
    if ph or pw:
        plane = np.pad(plane, ((0, ph), (0, pw)), mode="edge")
    hh, ww = plane.shape
    vectors = (
        plane.reshape(hh // BLOCK, BLOCK, ww // BLOCK, BLOCK)
        .transpose(0, 2, 1, 3)
        .reshape(-1, _VEC)
    )
    return vectors.astype(np.float64), (hh, ww)


def _from_vectors(vectors: np.ndarray, padded: tuple[int, int],
                  shape: tuple[int, int]) -> np.ndarray:
    hh, ww = padded
    plane = (
        vectors.reshape(hh // BLOCK, ww // BLOCK, BLOCK, BLOCK)
        .transpose(0, 2, 1, 3)
        .reshape(hh, ww)
    )
    return plane[: shape[0], : shape[1]]


def train_codebook(vectors: np.ndarray) -> np.ndarray:
    """Build a 256-entry codebook: luminance-binned init + one Lloyd step."""
    luminance = vectors.mean(axis=1)
    order = np.argsort(luminance, kind="stable")
    bins = np.array_split(order, CODEBOOK_SIZE)
    codebook = np.array([
        vectors[idx].mean(axis=0) if idx.size else np.zeros(_VEC)
        for idx in bins
    ])
    # One refinement step: reassign, recompute centroids.
    assignment = assign_vectors(vectors, codebook)
    for k in range(CODEBOOK_SIZE):
        members = vectors[assignment == k]
        if members.size:
            codebook[k] = members.mean(axis=0)
    return np.clip(np.round(codebook), 0, 255).astype(np.uint8)


def assign_vectors(vectors: np.ndarray, codebook: np.ndarray) -> np.ndarray:
    """Nearest-codeword index for each block vector (squared L2)."""
    # (n, 1, 4) - (1, k, 4) would be large; chunk to bound memory.
    out = np.empty(vectors.shape[0], dtype=np.uint8)
    cb = codebook.astype(np.float64)
    cb_norms = (cb * cb).sum(axis=1)
    step = 8192
    for lo in range(0, vectors.shape[0], step):
        chunk = vectors[lo:lo + step]
        # argmin over ||v - c||^2 = ||c||^2 - 2 v.c (||v||^2 constant per v)
        scores = cb_norms[np.newaxis, :] - 2.0 * chunk @ cb.T
        out[lo:lo + step] = np.argmin(scores, axis=1).astype(np.uint8)
    return out


class DVICodec(VideoCodec):
    """Per-frame 2x2 vector quantization with a 256-entry codebook."""

    name = "dvi"
    value_class = DVIVideoValue

    _HEADER = struct.Struct("<4sHH")
    _MAGIC = b"DVI0"

    def encode_frame(self, frame: np.ndarray) -> bytes:
        """Quantize one frame: train a codebook, emit codebook + indices."""
        frame = np.asarray(frame)
        planes = [frame] if frame.ndim == 2 else [frame[:, :, c] for c in range(3)]
        parts: List[bytes] = []
        padded = None
        for plane in planes:
            vectors, padded = _to_vectors(plane)
            codebook = train_codebook(vectors)
            indices = assign_vectors(vectors, codebook.astype(np.float64))
            parts.append(codebook.tobytes() + indices.tobytes())
        payload = zlib.compress(b"".join(parts), level=6)
        return self._HEADER.pack(self._MAGIC, padded[0], padded[1]) + payload

    def encode_frames(self, frames: Sequence[np.ndarray]) -> List[bytes]:
        return [self.encode_frame(f) for f in frames]

    def decode_frame_at(self, chunks: Sequence[bytes], index: int,
                        width: int, height: int, depth: int) -> np.ndarray:
        """Rebuild a frame from its codebook and block indices."""
        chunk = chunks[index]
        magic, ph, pw = self._HEADER.unpack_from(chunk)
        if magic != self._MAGIC:
            raise CodecError(f"not a DVI-codec chunk (magic {magic!r})")
        raw = zlib.decompress(chunk[self._HEADER.size:])
        channels = 1 if depth == 8 else 3
        blocks_per_plane = (ph // BLOCK) * (pw // BLOCK)
        plane_bytes = CODEBOOK_SIZE * _VEC + blocks_per_plane
        if len(raw) != channels * plane_bytes:
            raise CodecError(
                f"DVI chunk payload {len(raw)} bytes != expected {channels * plane_bytes}"
            )
        planes = []
        for c in range(channels):
            part = raw[c * plane_bytes:(c + 1) * plane_bytes]
            codebook = np.frombuffer(part[: CODEBOOK_SIZE * _VEC], dtype=np.uint8)
            codebook = codebook.reshape(CODEBOOK_SIZE, _VEC)
            indices = np.frombuffer(part[CODEBOOK_SIZE * _VEC:], dtype=np.uint8)
            vectors = codebook[indices]
            planes.append(
                _from_vectors(vectors, (ph, pw), (height, width)).astype(np.uint8)
            )
        frame = planes[0] if depth == 8 else np.stack(planes, axis=2)
        self._check_geometry(frame, width, height, depth)
        return frame
