"""Identity codec: frames packed as raw bytes.

Used wherever a "raw" chunk representation is needed — e.g. the video
writer activity persisting uncompressed frames, or as the degenerate
baseline in the compression benchmarks.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.codecs.base import VideoCodec
from repro.errors import CodecError
from repro.values.video import EncodedVideoValue, frame_shape


class RawCodec(VideoCodec):
    """Packs each frame's pixels as little-endian uint8 bytes, 1:1."""

    name = "raw"
    value_class = EncodedVideoValue

    def encode_frames(self, frames: Sequence[np.ndarray]) -> List[bytes]:
        return [np.ascontiguousarray(f, dtype=np.uint8).tobytes() for f in frames]

    def decode_frame_at(self, chunks: Sequence[bytes], index: int,
                        width: int, height: int, depth: int) -> np.ndarray:
        """Unpack a raw chunk back into a frame array (length-checked)."""
        shape = frame_shape(width, height, depth)
        expected_len = int(np.prod(shape))
        chunk = chunks[index]
        if len(chunk) != expected_len:
            raise CodecError(
                f"raw chunk length {len(chunk)} != expected {expected_len} for {shape}"
            )
        return np.frombuffer(chunk, dtype=np.uint8).reshape(shape)
