"""Intraframe block-DCT codec (JPEG-like).

Each frame channel is tiled into 8x8 blocks, transformed with the
orthonormal DCT-II, quantized with a JPEG-style quantization table scaled
by a quality parameter, and entropy-coded with DEFLATE.  Lossy: higher
``quality`` keeps more coefficient precision at a lower compression ratio,
so benchmark C5 can sweep the rate/quality trade-off with a real knob.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Sequence

import numpy as np

from repro.codecs.base import VideoCodec
from repro.errors import CodecError
from repro.values.video import JPEGVideoValue, frame_shape

BLOCK = 8

# The luminance quantization table of JPEG Annex K — the classic trade-off
# between low- and high-frequency precision.
_QUANT_BASE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)


def _dct_matrix(n: int = BLOCK) -> np.ndarray:
    """Orthonormal DCT-II matrix: ``D @ x`` transforms columns."""
    k = np.arange(n)[:, np.newaxis]
    i = np.arange(n)[np.newaxis, :]
    mat = np.cos(np.pi * (2 * i + 1) * k / (2 * n)) * np.sqrt(2.0 / n)
    mat[0, :] = np.sqrt(1.0 / n)
    return mat


_DCT = _dct_matrix()
_IDCT = _DCT.T


def quant_table(quality: int) -> np.ndarray:
    """JPEG-style quality scaling of the base table (quality 1..100)."""
    if not 1 <= quality <= 100:
        raise CodecError(f"JPEG quality must be in [1, 100], got {quality}")
    if quality < 50:
        scale = 5000.0 / quality
    else:
        scale = 200.0 - 2.0 * quality
    table = np.floor((_QUANT_BASE * scale + 50.0) / 100.0)
    return np.clip(table, 1.0, 255.0)


def _pad_to_blocks(channel: np.ndarray) -> np.ndarray:
    h, w = channel.shape[-2:]
    ph = (-h) % BLOCK
    pw = (-w) % BLOCK
    if ph or pw:
        pad = [(0, 0)] * (channel.ndim - 2) + [(0, ph), (0, pw)]
        channel = np.pad(channel, pad, mode="edge")
    return channel


def _to_blocks(channel: np.ndarray) -> np.ndarray:
    """(..., H, W) -> (... * H//8 * W//8, 8, 8) row-major block view.

    Leading axes (channel / frame batches) come before the per-plane
    block order, so a batched call produces exactly the per-plane block
    streams concatenated.
    """
    h, w = channel.shape[-2:]
    lead = channel.shape[:-2]
    blocks = channel.reshape(*lead, h // BLOCK, BLOCK, w // BLOCK, BLOCK)
    axes = tuple(range(len(lead))) + (channel.ndim - 2, channel.ndim,
                                      channel.ndim - 1, channel.ndim + 1)
    return blocks.transpose(axes).reshape(-1, BLOCK, BLOCK)


def _from_blocks(blocks: np.ndarray, h: int, w: int) -> np.ndarray:
    bh, bw = h // BLOCK, w // BLOCK
    grid = blocks.reshape(bh, bw, BLOCK, BLOCK).transpose(0, 2, 1, 3)
    return grid.reshape(h, w)


def dct_quantize_channel(
    channel: np.ndarray, table: np.ndarray
) -> tuple[np.ndarray, tuple[int, int]]:
    """Forward path: centered float plane(s) -> (int16 coefficients, padded shape).

    Accepts one (H, W) plane or a stacked (..., H, W) batch — every 8x8
    block goes through one batched matmul, and each block's arithmetic
    is identical to the per-plane path (bit-identical output).
    """
    padded = _pad_to_blocks(channel)
    blocks = _to_blocks(padded.astype(np.float64))
    coeffs = _DCT @ blocks @ _IDCT
    quantized = np.round(coeffs / table)
    return quantized.astype(np.int16), padded.shape[-2:]


def dct_dequantize_channel(quantized: np.ndarray, table: np.ndarray,
                           padded_shape: tuple[int, int],
                           out_shape: tuple[int, int]) -> np.ndarray:
    """Inverse path: int16 coefficients -> float plane (centered)."""
    coeffs = quantized.astype(np.float64) * table
    blocks = _IDCT @ coeffs @ _DCT
    plane = _from_blocks(blocks, *padded_shape)
    return plane[: out_shape[0], : out_shape[1]]


def _split_channels(frame: np.ndarray) -> List[np.ndarray]:
    if frame.ndim == 2:
        return [frame]
    return [frame[:, :, c] for c in range(frame.shape[2])]


def _join_channels(planes: List[np.ndarray], depth: int) -> np.ndarray:
    if depth == 8:
        return planes[0]
    return np.stack(planes, axis=2)


class JPEGCodec(VideoCodec):
    """Intraframe DCT codec with a JPEG-style quality knob."""

    name = "jpeg"
    value_class = JPEGVideoValue

    #: chunk header: magic, quality, padded height, padded width
    _HEADER = struct.Struct("<4sBHH")
    _MAGIC = b"JPG0"

    def __init__(self, quality: int = 75) -> None:
        self.quality = quality
        self._table = quant_table(quality)

    def encode_frame(self, frame: np.ndarray) -> bytes:
        """Encode one frame (used directly by the interframe codec)."""
        frame = np.asarray(frame)
        # (C, H, W) channel stack: one batched matmul covers every block
        # of every channel, and the int16 stream is laid out exactly as
        # the per-plane streams concatenated.
        stack = frame[None] if frame.ndim == 2 else frame.transpose(2, 0, 1)
        centered = stack.astype(np.float64) - 128.0
        quantized, padded_shape = dct_quantize_channel(centered, self._table)
        payload = zlib.compress(quantized.tobytes(), level=6)
        header = self._HEADER.pack(self._MAGIC, self.quality,
                                   padded_shape[0], padded_shape[1])
        return header + payload

    def decode_frame(self, chunk: bytes, width: int, height: int, depth: int) -> np.ndarray:
        """Decode one intraframe chunk back to a uint8 frame."""
        magic, quality, ph, pw = self._HEADER.unpack_from(chunk)
        if magic != self._MAGIC:
            raise CodecError(f"not a JPEG-codec chunk (magic {magic!r})")
        table = quant_table(quality)
        raw = zlib.decompress(chunk[self._HEADER.size:])
        channels = 1 if depth == 8 else 3
        quantized = np.frombuffer(raw, dtype=np.int16).reshape(-1, BLOCK, BLOCK)
        coeffs = quantized.astype(np.float64) * table
        blocks = (_IDCT @ coeffs @ _DCT).reshape(channels, -1, BLOCK, BLOCK)
        planes = []
        for c in range(channels):
            plane = _from_blocks(blocks[c], ph, pw)[:height, :width]
            planes.append(np.clip(plane + 128.0, 0, 255).astype(np.uint8))
        frame = _join_channels(planes, depth)
        self._check_geometry(frame, width, height, depth)
        return frame

    # -- VideoCodec interface --------------------------------------------
    def encode_frames(self, frames: Sequence[np.ndarray]) -> List[bytes]:
        frames = [np.asarray(f) for f in frames]
        if len(frames) > 1 and all(f.shape == frames[0].shape for f in frames):
            # Uniform geometry: run every block of every frame through a
            # single batched transform, then entropy-code per frame.
            stack = np.stack(frames)
            stack = stack[:, None] if stack.ndim == 3 else stack.transpose(0, 3, 1, 2)
            centered = stack.astype(np.float64) - 128.0
            quantized, (ph, pw) = dct_quantize_channel(centered, self._table)
            per_frame = quantized.reshape(len(frames), -1)
            header = self._HEADER.pack(self._MAGIC, self.quality, ph, pw)
            return [header + zlib.compress(q.tobytes(), level=6)
                    for q in per_frame]
        return [self.encode_frame(f) for f in frames]

    def decode_frame_at(self, chunks: Sequence[bytes], index: int,
                        width: int, height: int, depth: int) -> np.ndarray:
        frame_shape(width, height, depth)  # validate geometry early
        return self.decode_frame(chunks[index], width, height, depth)
