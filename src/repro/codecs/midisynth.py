"""MIDI-to-PCM software synthesizer.

Implements the paper's "alternate representation" path: "synthesizing
digital audio from MIDI data".  Additive synthesis — each note is a sine
at its equal-temperament frequency with two weak harmonics, shaped by a
linear attack/release envelope; velocities map to amplitude.  The result
is a :class:`~repro.values.RawAudioValue` ready for the audio pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError
from repro.values.audio import RawAudioValue
from repro.values.midi import MIDIValue

_HARMONICS = ((1.0, 1.0), (2.0, 0.35), (3.0, 0.15))


class MIDISynthesizer:
    """Renders MIDI event tracks to mono PCM."""

    name = "midisynth"

    def __init__(self, sample_rate: float = 22050.0, attack_s: float = 0.01,
                 release_s: float = 0.05, amplitude: float = 0.25) -> None:
        if sample_rate <= 0:
            raise CodecError(f"sample rate must be positive, got {sample_rate}")
        if not 0.0 < amplitude <= 1.0:
            raise CodecError(f"amplitude must be in (0, 1], got {amplitude}")
        self.sample_rate = sample_rate
        self.attack_s = attack_s
        self.release_s = release_s
        self.amplitude = amplitude

    def render(self, value: MIDIValue) -> RawAudioValue:
        """Synthesize the full track into mono 16-bit PCM."""
        tick_rate = value.ticks_per_second
        total_seconds = value.element_count / tick_rate + self.release_s
        total_samples = max(1, int(np.ceil(total_seconds * self.sample_rate)))
        mix = np.zeros(total_samples, dtype=np.float64)
        for event in value.events:
            start_s = event.tick / tick_rate
            dur_s = event.duration_ticks / tick_rate
            start = int(start_s * self.sample_rate)
            count = max(1, int((dur_s + self.release_s) * self.sample_rate))
            count = min(count, total_samples - start)
            if count <= 0:
                continue
            t = np.arange(count) / self.sample_rate
            tone = np.zeros(count)
            for mult, weight in _HARMONICS:
                tone += weight * np.sin(2.0 * np.pi * event.frequency_hz * mult * t)
            envelope = self._envelope(count, dur_s)
            gain = self.amplitude * (event.velocity / 127.0)
            mix[start:start + count] += gain * envelope * tone
        # Soft-clip the mix to [-1, 1] so chords cannot wrap.
        mix = np.tanh(mix)
        pcm = np.round(mix * 32767.0).astype(np.int16)
        return RawAudioValue(pcm[np.newaxis, :], sample_rate=self.sample_rate)

    def _envelope(self, count: int, sustain_s: float) -> np.ndarray:
        """Linear attack / sustain / linear release envelope."""
        env = np.ones(count)
        attack_n = min(count, max(1, int(self.attack_s * self.sample_rate)))
        env[:attack_n] = np.linspace(0.0, 1.0, attack_n)
        release_n = min(count, max(1, int(self.release_s * self.sample_rate)))
        sustain_end = min(count, int(sustain_s * self.sample_rate))
        tail = count - sustain_end
        if tail > 0:
            ramp = np.linspace(1.0, 0.0, tail)
            env[sustain_end:] *= ramp
        else:
            env[-release_n:] *= np.linspace(1.0, 0.0, release_n)
        return env
