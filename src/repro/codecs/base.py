"""Video codec base class.

A video codec transforms between decoded frame arrays and per-frame
encoded chunks.  The chunk list is the storage format of
:class:`~repro.values.EncodedVideoValue`; ``decode_frame_at`` receives the
whole chunk list so interframe codecs can resolve dependencies (walk back
to the nearest keyframe).
"""

from __future__ import annotations

import abc
from typing import List, Sequence

import numpy as np

from repro.errors import CodecError
from repro.values.video import EncodedVideoValue, VideoValue, frame_shape


class VideoCodec(abc.ABC):
    """Transforms frame arrays <-> encoded chunk sequences."""

    #: registry key; also the codec-compatibility tag on encoded values.
    name: str = "abstract"
    #: class of encoded value this codec produces.
    value_class: type[EncodedVideoValue] = EncodedVideoValue

    @abc.abstractmethod
    def encode_frames(self, frames: Sequence[np.ndarray]) -> List[bytes]:
        """Encode a frame sequence into one chunk per frame."""

    @abc.abstractmethod
    def decode_frame_at(self, chunks: Sequence[bytes], index: int,
                        width: int, height: int, depth: int) -> np.ndarray:
        """Decode frame ``index`` from the chunk sequence."""

    def encode_value(self, value: VideoValue) -> EncodedVideoValue:
        """Encode a whole video value, preserving its time mapping."""
        frames = [value.frame(i) for i in range(value.num_frames)]
        chunks = self.encode_frames(frames)
        return self.value_class(
            chunks, self, value.width, value.height, value.depth,
            mapping=value.mapping,
        )

    def decode_value(self, value: EncodedVideoValue) -> "np.ndarray":
        """Decode every frame into a single (n, h, w[, 3]) array."""
        frames = [
            self.decode_frame_at(value.chunks, i, value.width, value.height, value.depth)
            for i in range(value.num_frames)
        ]
        return np.stack(frames)

    # -- streaming interface (used by encoder/decoder activities) ---------
    def stream_encoder(self) -> "StreamEncoder":
        """Stateful per-frame encoder for live streams.

        The default treats every frame independently (correct for
        intraframe codecs); interframe codecs override with a stateful
        version.
        """
        return _StatelessStreamEncoder(self)

    def stream_decoder(self, width: int, height: int, depth: int) -> "StreamDecoder":
        """Stateful per-chunk decoder for live streams."""
        return _StatelessStreamDecoder(self, width, height, depth)

    # -- helpers for subclasses -----------------------------------------
    @staticmethod
    def _check_geometry(frame: np.ndarray, width: int, height: int, depth: int) -> None:
        expected = frame_shape(width, height, depth)
        if frame.shape != expected:
            raise CodecError(f"decoded frame shape {frame.shape} != expected {expected}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class StreamEncoder(abc.ABC):
    """Per-frame encoder with stream state."""

    @abc.abstractmethod
    def encode_next(self, frame: np.ndarray) -> bytes: ...


class StreamDecoder(abc.ABC):
    """Per-chunk decoder with stream state."""

    @abc.abstractmethod
    def decode_next(self, chunk: bytes) -> np.ndarray: ...


class _StatelessStreamEncoder(StreamEncoder):
    def __init__(self, codec: VideoCodec) -> None:
        self._codec = codec

    def encode_next(self, frame: np.ndarray) -> bytes:
        return self._codec.encode_frames([frame])[0]


class _StatelessStreamDecoder(StreamDecoder):
    def __init__(self, codec: VideoCodec, width: int, height: int, depth: int) -> None:
        self._codec = codec
        self._geometry = (width, height, depth)

    def decode_next(self, chunk: bytes) -> np.ndarray:
        return self._codec.decode_frame_at([chunk], 0, *self._geometry)
