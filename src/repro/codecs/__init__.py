"""Working codecs for the encoded value classes (DESIGN.md §2).

The paper needs codecs as rate/size/quality transformers with distinct
compression behaviour; these implementations really encode and decode:

* :class:`RawCodec` — identity byte packing ("raw" ports in Table 1);
* :class:`RLECodec` — run-length encoding, lossless;
* :class:`JPEGCodec` — intraframe 8x8 block DCT + quantization + DEFLATE
  entropy coding (JPEG-like, lossy);
* :class:`MPEGCodec` — keyframe/delta interframe coding on top of the DCT
  transform (MPEG-like, lossy, higher ratio on temporally coherent video);
* :class:`DVICodec` — 2x2 block vector quantization (DVI/Indeo-like);
* µ-law and IMA-style ADPCM audio codecs;
* :class:`MIDISynthesizer` — renders MIDI event tracks to PCM audio (the
  paper's "synthesizing digital audio from MIDI data").
"""

from repro.codecs.audio import ADPCMCodec, MuLawCodec, decode_mulaw, encode_mulaw
from repro.codecs.base import VideoCodec
from repro.codecs.dct import JPEGCodec
from repro.codecs.interframe import MPEGCodec
from repro.codecs.midisynth import MIDISynthesizer
from repro.codecs.raw import RawCodec
from repro.codecs.registry import available_codecs, get_codec
from repro.codecs.rle import RLECodec
from repro.codecs.vq import DVICodec

__all__ = [
    "VideoCodec",
    "RawCodec",
    "RLECodec",
    "JPEGCodec",
    "MPEGCodec",
    "DVICodec",
    "MuLawCodec",
    "ADPCMCodec",
    "encode_mulaw",
    "decode_mulaw",
    "MIDISynthesizer",
    "get_codec",
    "available_codecs",
]
