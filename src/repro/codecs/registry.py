"""Codec registry: name -> constructor.

The database's quality negotiation layer resolves
:class:`~repro.quality.Representation` codec names through this registry,
and dynamic source configuration (§4.3: "if SimpleNewscast.videoTrack
values use various underlying representations ... then dynamic
configuration of dbSource is necessary") looks decoders up by the codec
name an encoded value carries.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.codecs.audio import ADPCMCodec, MuLawCodec
from repro.codecs.dct import JPEGCodec
from repro.codecs.interframe import MPEGCodec
from repro.codecs.raw import RawCodec
from repro.codecs.rle import RLECodec
from repro.codecs.vq import DVICodec
from repro.errors import CodecError

_FACTORIES: Dict[str, Callable[..., object]] = {
    "raw": RawCodec,
    "rle": RLECodec,
    "jpeg": JPEGCodec,
    "mpeg": MPEGCodec,
    "dvi": DVICodec,
    "mulaw": MuLawCodec,
    "adpcm": ADPCMCodec,
    "pcm": RawCodec,  # raw PCM needs no transform; placeholder for symmetry
}


def get_codec(name: str, **params):
    """Instantiate a codec by registry name with codec-specific params."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise CodecError(
            f"unknown codec {name!r} (available: {sorted(_FACTORIES)})"
        ) from None
    return factory(**params)


def available_codecs() -> list[str]:
    return sorted(_FACTORIES)
