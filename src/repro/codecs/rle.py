"""Lossless run-length encoding of frame bytes.

The simplest compressed representation: (count, value) byte pairs over the
row-major pixel stream.  Compresses synthetic imagery (large flat regions)
roughly 2-10x and pathological noise not at all — which is exactly the
behaviour the compression benchmarks want from a weak baseline codec.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.codecs.base import VideoCodec
from repro.errors import CodecError
from repro.values.video import EncodedVideoValue, frame_shape


def rle_encode_bytes(data: bytes) -> bytes:
    """Encode a byte string as (count, value) pairs, max run 255.

    A run of length L > 255 is emitted as full (255, value) pairs
    followed by one remainder pair (remainder in [1, 255]).  Fully
    vectorized: the output is assembled as interleaved count/value
    planes with no per-run Python loop.
    """
    if not data:
        return b""
    arr = np.frombuffer(data, dtype=np.uint8)
    # Positions where the value changes; split into runs.
    change = np.flatnonzero(np.diff(arr)) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [arr.size]))
    counts = ends - starts
    values = arr[starts]
    # Runs longer than 255 split into ceil(L/255) pairs; the last pair
    # of each run carries the remainder L - 255*(pairs-1) in [1, 255].
    pairs = (counts + 254) // 255
    remainders = counts - (pairs - 1) * 255
    total = int(pairs.sum())
    out = np.empty(total * 2, dtype=np.uint8)
    out_counts = out[0::2]
    out_counts[:] = 255
    out_counts[np.cumsum(pairs) - 1] = remainders
    out[1::2] = np.repeat(values, pairs)
    return out.tobytes()


def rle_decode_bytes(data: bytes) -> bytes:
    """Inverse of :func:`rle_encode_bytes`."""
    if len(data) % 2 != 0:
        raise CodecError(f"RLE stream length must be even, got {len(data)}")
    if not data:
        return b""
    pairs = np.frombuffer(data, dtype=np.uint8).reshape(-1, 2)
    counts = pairs[:, 0].astype(np.intp)
    values = pairs[:, 1]
    return np.repeat(values, counts).tobytes()


class RLEVideoValue(EncodedVideoValue):
    """Video compressed with per-frame RLE."""

    _TYPE_NAME = "video/rle"

    @classmethod
    def _expected_codec_name(cls) -> str | None:
        return "rle"


class RLECodec(VideoCodec):
    """Per-frame lossless RLE."""

    name = "rle"
    value_class = RLEVideoValue

    def encode_frames(self, frames: Sequence[np.ndarray]) -> List[bytes]:
        return [
            rle_encode_bytes(np.ascontiguousarray(f, dtype=np.uint8).tobytes())
            for f in frames
        ]

    def decode_frame_at(self, chunks: Sequence[bytes], index: int,
                        width: int, height: int, depth: int) -> np.ndarray:
        """Expand one RLE chunk back to a frame (length-checked)."""
        shape = frame_shape(width, height, depth)
        raw = rle_decode_bytes(chunks[index])
        expected_len = int(np.prod(shape))
        if len(raw) != expected_len:
            raise CodecError(
                f"RLE chunk decodes to {len(raw)} bytes, expected {expected_len}"
            )
        return np.frombuffer(raw, dtype=np.uint8).reshape(shape)
