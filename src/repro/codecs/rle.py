"""Lossless run-length encoding of frame bytes.

The simplest compressed representation: (count, value) byte pairs over the
row-major pixel stream.  Compresses synthetic imagery (large flat regions)
roughly 2-10x and pathological noise not at all — which is exactly the
behaviour the compression benchmarks want from a weak baseline codec.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.codecs.base import VideoCodec
from repro.errors import CodecError
from repro.values.video import EncodedVideoValue, frame_shape


def rle_encode_bytes(data: bytes) -> bytes:
    """Encode a byte string as (count, value) pairs, max run 255."""
    if not data:
        return b""
    arr = np.frombuffer(data, dtype=np.uint8)
    # Positions where the value changes; split into runs.
    change = np.flatnonzero(np.diff(arr)) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [arr.size]))
    out = bytearray()
    for start, end in zip(starts, ends):
        value = arr[start]
        run = int(end - start)
        while run > 255:
            out.append(255)
            out.append(int(value))
            run -= 255
        out.append(run)
        out.append(int(value))
    return bytes(out)


def rle_decode_bytes(data: bytes) -> bytes:
    """Inverse of :func:`rle_encode_bytes`."""
    if len(data) % 2 != 0:
        raise CodecError(f"RLE stream length must be even, got {len(data)}")
    if not data:
        return b""
    pairs = np.frombuffer(data, dtype=np.uint8).reshape(-1, 2)
    counts = pairs[:, 0].astype(np.intp)
    values = pairs[:, 1]
    return np.repeat(values, counts).tobytes()


class RLEVideoValue(EncodedVideoValue):
    """Video compressed with per-frame RLE."""

    _TYPE_NAME = "video/rle"

    @classmethod
    def _expected_codec_name(cls) -> str | None:
        return "rle"


class RLECodec(VideoCodec):
    """Per-frame lossless RLE."""

    name = "rle"
    value_class = RLEVideoValue

    def encode_frames(self, frames: Sequence[np.ndarray]) -> List[bytes]:
        return [
            rle_encode_bytes(np.ascontiguousarray(f, dtype=np.uint8).tobytes())
            for f in frames
        ]

    def decode_frame_at(self, chunks: Sequence[bytes], index: int,
                        width: int, height: int, depth: int) -> np.ndarray:
        """Expand one RLE chunk back to a frame (length-checked)."""
        shape = frame_shape(width, height, depth)
        raw = rle_decode_bytes(chunks[index])
        expected_len = int(np.prod(shape))
        if len(raw) != expected_len:
            raise CodecError(
                f"RLE chunk decodes to {len(raw)} bytes, expected {expected_len}"
            )
        return np.frombuffer(raw, dtype=np.uint8).reshape(shape)
