"""Audio codecs: µ-law companding and IMA-style ADPCM.

Both are block codecs over int16 PCM:

* **µ-law** — the G.711 companding curve, 16-bit → 8-bit, the natural
  representation for the paper's "voice quality" factor;
* **ADPCM** — 4-bit adaptive differential coding in the style of IMA
  ADPCM (step-size table + predictor), giving ~4x compression.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError
from repro.values.audio import ADPCMAudioValue, AudioValue, MuLawAudioValue

_MU = 255.0
_CLIP = 32635


def encode_mulaw(samples: np.ndarray) -> np.ndarray:
    """int16 PCM -> uint8 µ-law codes (vectorized G.711-style curve)."""
    x = np.clip(samples.astype(np.float64), -_CLIP, _CLIP) / 32768.0
    compressed = np.sign(x) * np.log1p(_MU * np.abs(x)) / np.log1p(_MU)
    return np.round((compressed + 1.0) * 127.5).astype(np.uint8)


def decode_mulaw(codes: np.ndarray) -> np.ndarray:
    """uint8 µ-law codes -> int16 PCM."""
    y = codes.astype(np.float64) / 127.5 - 1.0
    x = np.sign(y) * ((1.0 + _MU) ** np.abs(y) - 1.0) / _MU
    return np.round(x * 32768.0).astype(np.int16)


class MuLawCodec:
    """Block µ-law codec satisfying the ``AudioBlockCodec`` protocol."""

    name = "mulaw"
    block_samples = 1024

    def encode_value(self, value: AudioValue) -> MuLawAudioValue:
        """Compand a PCM value into 8-bit µ-law blocks."""
        samples = value.samples()
        blocks = []
        for lo in range(0, value.num_samples, self.block_samples):
            chunk = samples[:, lo:lo + self.block_samples]
            blocks.append(encode_mulaw(chunk).tobytes())
        return MuLawAudioValue(
            blocks, self, value.num_channels, value.num_samples,
            value.sample_rate, depth=value.depth, mapping=value.mapping,
        )

    def decode_block(self, block: bytes, num_channels: int) -> np.ndarray:
        codes = np.frombuffer(block, dtype=np.uint8)
        if codes.size % num_channels != 0:
            raise CodecError(
                f"µ-law block of {codes.size} codes not divisible by {num_channels} channels"
            )
        return decode_mulaw(codes.reshape(num_channels, -1))


# IMA ADPCM step-size table (89 entries).
_STEPS = np.array([
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
    6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
], dtype=np.int32)

_INDEX_ADJUST = np.array([-1, -1, -1, -1, 2, 4, 6, 8], dtype=np.int32)


def _adpcm_encode_channel(samples: np.ndarray) -> bytes:
    """Encode one channel to 4-bit codes (2 codes per byte)."""
    predictor = 0
    index = 0
    nibbles = []
    for sample in samples.astype(np.int32):
        step = int(_STEPS[index])
        diff = int(sample) - predictor
        code = 0
        if diff < 0:
            code = 8
            diff = -diff
        if diff >= step:
            code |= 4
            diff -= step
        if diff >= step // 2:
            code |= 2
            diff -= step // 2
        if diff >= step // 4:
            code |= 1
        # Reconstruct exactly as the decoder will.
        delta = step // 8 + (step // 4 if code & 1 else 0) \
            + (step // 2 if code & 2 else 0) + (step if code & 4 else 0)
        predictor += -delta if code & 8 else delta
        predictor = max(-32768, min(32767, predictor))
        index = max(0, min(88, index + int(_INDEX_ADJUST[code & 7])))
        nibbles.append(code)
    if len(nibbles) % 2:
        nibbles.append(0)
    packed = bytearray()
    for lo in range(0, len(nibbles), 2):
        packed.append(nibbles[lo] | (nibbles[lo + 1] << 4))
    return bytes(packed)


def _adpcm_decode_channel(data: bytes, count: int) -> np.ndarray:
    predictor = 0
    index = 0
    out = np.empty(count, dtype=np.int16)
    n = 0
    for byte in data:
        for code in (byte & 0x0F, byte >> 4):
            if n >= count:
                break
            step = int(_STEPS[index])
            delta = step // 8 + (step // 4 if code & 1 else 0) \
                + (step // 2 if code & 2 else 0) + (step if code & 4 else 0)
            predictor += -delta if code & 8 else delta
            predictor = max(-32768, min(32767, predictor))
            index = max(0, min(88, index + int(_INDEX_ADJUST[code & 7])))
            out[n] = predictor
            n += 1
    if n != count:
        raise CodecError(f"ADPCM block decoded {n} samples, expected {count}")
    return out


class ADPCMCodec:
    """4-bit IMA-style ADPCM block codec."""

    name = "adpcm"
    block_samples = 1024

    def encode_value(self, value: AudioValue) -> ADPCMAudioValue:
        """Encode a PCM value into 4-bit ADPCM blocks (per channel)."""
        samples = value.samples()
        blocks = []
        for lo in range(0, value.num_samples, self.block_samples):
            chunk = samples[:, lo:lo + self.block_samples]
            count = chunk.shape[1]
            header = count.to_bytes(4, "little")
            channel_data = b"".join(
                _adpcm_encode_channel(chunk[c]) for c in range(value.num_channels)
            )
            blocks.append(header + channel_data)
        return ADPCMAudioValue(
            blocks, self, value.num_channels, value.num_samples,
            value.sample_rate, depth=value.depth, mapping=value.mapping,
        )

    def decode_block(self, block: bytes, num_channels: int) -> np.ndarray:
        """Decode one ADPCM block back to (channels, n) int16 PCM."""
        count = int.from_bytes(block[:4], "little")
        body = block[4:]
        per_channel = len(body) // num_channels
        channels = []
        for c in range(num_channels):
            part = body[c * per_channel:(c + 1) * per_channel]
            channels.append(_adpcm_decode_channel(part, count))
        return np.stack(channels)
