"""Interframe keyframe/delta codec (MPEG-like).

Groups of pictures: every ``gop``-th frame is a keyframe encoded
intraframe with the DCT codec; the frames between are *delta* frames
coding the quantized difference against the previous *reconstructed*
frame (reconstructed, not original, so encoder and decoder stay in
lockstep and quantization error does not drift).

On temporally coherent video this reaches noticeably higher compression
than the intraframe codec; on uncorrelated frames it degrades toward
intra performance — the shape benchmark C2 checks.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Sequence

import numpy as np

from repro.codecs.base import VideoCodec
from repro.codecs.dct import JPEGCodec
from repro.errors import CodecError
from repro.values.video import MPEGVideoValue


class MPEGCodec(VideoCodec):
    """Keyframe + quantized-delta interframe coding."""

    name = "mpeg"
    value_class = MPEGVideoValue

    _HEADER = struct.Struct("<4sc")
    _MAGIC = b"MPG0"
    _KEY = b"K"
    _DELTA = b"D"

    def __init__(self, quality: int = 75, gop: int = 10, delta_quant: int = 4) -> None:
        if gop < 1:
            raise CodecError(f"GOP length must be >= 1, got {gop}")
        if delta_quant < 1:
            raise CodecError(f"delta quantizer must be >= 1, got {delta_quant}")
        self.quality = quality
        self.gop = gop
        self.delta_quant = delta_quant
        self._intra = JPEGCodec(quality)

    # -- encoding ----------------------------------------------------------
    def encode_frames(self, frames: Sequence[np.ndarray]) -> List[bytes]:
        """Encode a sequence as keyframes + reconstructed-reference deltas.

        The rolling reconstructed reference is held as int16 (its values
        stay in [0, 255], so the representation is lossless) — the delta
        path then runs without any per-frame uint8<->int16 round trips.
        """
        chunks: List[bytes] = []
        reference: np.ndarray | None = None  # int16, values in [0, 255]
        for i, frame in enumerate(frames):
            frame = np.asarray(frame)
            if i % self.gop == 0:
                intra_chunk = self._intra.encode_frame(frame)
                chunks.append(self._HEADER.pack(self._MAGIC, self._KEY) + intra_chunk)
                height, width = frame.shape[:2]
                depth = 8 if frame.ndim == 2 else 24
                reference = self._intra.decode_frame(
                    intra_chunk, width, height, depth
                ).astype(np.int16)
            else:
                delta = frame.astype(np.int16) - reference
                quantized = (delta // self.delta_quant).astype(np.int8)
                payload = zlib.compress(quantized.tobytes(), level=6)
                chunks.append(self._HEADER.pack(self._MAGIC, self._DELTA) + payload)
                restored = quantized.astype(np.int16) * self.delta_quant
                reference = np.clip(reference + restored, 0, 255)
        return chunks

    # -- decoding ----------------------------------------------------------
    def _chunk_kind(self, chunk: bytes) -> bytes:
        magic, kind = self._HEADER.unpack_from(chunk)
        if magic != self._MAGIC:
            raise CodecError(f"not an MPEG-codec chunk (magic {magic!r})")
        return kind

    def _decode_key(self, chunk: bytes, width: int, height: int, depth: int) -> np.ndarray:
        return self._intra.decode_frame(chunk[self._HEADER.size:], width, height, depth)

    def _apply_delta(self, reference: np.ndarray, chunk: bytes,
                     width: int, height: int, depth: int) -> np.ndarray:
        raw = zlib.decompress(chunk[self._HEADER.size:])
        quantized = np.frombuffer(raw, dtype=np.int8).reshape(reference.shape)
        restored = quantized.astype(np.int16) * self.delta_quant
        return np.clip(reference.astype(np.int16) + restored, 0, 255).astype(np.uint8)

    def decode_frame_at(self, chunks: Sequence[bytes], index: int,
                        width: int, height: int, depth: int) -> np.ndarray:
        """Random access: walk back to the keyframe, roll deltas forward."""
        if not 0 <= index < len(chunks):
            raise CodecError(f"frame index {index} out of range [0, {len(chunks)})")
        # Walk back to the governing keyframe, then roll deltas forward.
        key = index
        while key > 0 and self._chunk_kind(chunks[key]) != self._KEY:
            key -= 1
        if self._chunk_kind(chunks[key]) != self._KEY:
            raise CodecError(f"no keyframe found at or before frame {index}")
        frame = self._decode_key(chunks[key], width, height, depth)
        for i in range(key + 1, index + 1):
            frame = self._apply_delta(frame, chunks[i], width, height, depth)
        self._check_geometry(frame, width, height, depth)
        return frame

    def stream_encoder(self):
        return _MPEGStreamEncoder(self)

    def stream_decoder(self, width: int, height: int, depth: int):
        return _MPEGStreamDecoder(self, width, height, depth)

    def decode_value(self, value) -> np.ndarray:
        """Sequential decode of every frame (linear, not quadratic)."""
        frames: List[np.ndarray] = []
        reference: np.ndarray | None = None
        for chunk in value.chunks:
            if self._chunk_kind(chunk) == self._KEY:
                reference = self._decode_key(chunk, value.width, value.height, value.depth)
            else:
                if reference is None:
                    raise CodecError("delta frame before any keyframe")
                reference = self._apply_delta(
                    reference, chunk, value.width, value.height, value.depth
                )
            frames.append(reference)
        return np.stack(frames)


class _MPEGStreamEncoder:
    """Stateful live encoder: keyframe every GOP, deltas between."""

    def __init__(self, codec: MPEGCodec) -> None:
        self._codec = codec
        self._count = 0
        self._reference: np.ndarray | None = None

    def encode_next(self, frame: np.ndarray) -> bytes:
        """Encode one live frame, keeping GOP and reference state.

        The reference is held as int16 in [0, 255] (lossless), like
        :meth:`MPEGCodec.encode_frames`.
        """
        frame = np.asarray(frame)
        codec = self._codec
        if self._count % codec.gop == 0 or self._reference is None:
            intra_chunk = codec._intra.encode_frame(frame)
            chunk = codec._HEADER.pack(codec._MAGIC, codec._KEY) + intra_chunk
            height, width = frame.shape[:2]
            depth = 8 if frame.ndim == 2 else 24
            self._reference = codec._intra.decode_frame(
                intra_chunk, width, height, depth
            ).astype(np.int16)
        else:
            delta = frame.astype(np.int16) - self._reference
            quantized = (delta // codec.delta_quant).astype(np.int8)
            payload = zlib.compress(quantized.tobytes(), level=6)
            chunk = codec._HEADER.pack(codec._MAGIC, codec._DELTA) + payload
            restored = quantized.astype(np.int16) * codec.delta_quant
            self._reference = np.clip(self._reference + restored, 0, 255)
        self._count += 1
        return chunk


class _MPEGStreamDecoder:
    """Stateful live decoder: rolls the reference frame forward."""

    def __init__(self, codec: MPEGCodec, width: int, height: int, depth: int) -> None:
        self._codec = codec
        self._geometry = (width, height, depth)
        self._reference: np.ndarray | None = None

    def decode_next(self, chunk: bytes) -> np.ndarray:
        """Decode the next chunk, rolling the reference frame forward."""
        codec = self._codec
        if codec._chunk_kind(chunk) == codec._KEY:
            self._reference = codec._decode_key(chunk, *self._geometry)
        else:
            if self._reference is None:
                raise CodecError("delta chunk before any keyframe in stream")
            self._reference = codec._apply_delta(self._reference, chunk, *self._geometry)
        return self._reference
