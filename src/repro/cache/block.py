"""A version-tagged block cache, used at both levels of the hierarchy.

One implementation serves two roles:

* the **per-node block cache** (`StorageNode.block_cache`), keyed by
  shard key, consulted by ``ClusterStream._read_span`` before queueing a
  disk request — a hit skips the C-SCAN queue entirely;
* the **edge cache** inside each :class:`~repro.cache.edge.EdgeCacheNode`,
  keyed by placement key over whole-value offsets.

Coherence contract
------------------
Every block is tagged with the placement version it was filled at.  A
lookup passes the *authoritative* version
(:attr:`~repro.cluster.placement.ClusterPlacement.version`) and only
matching tags count as hits, so a stale block can never be served even
if invalidation is late.  On ``bump_version`` the cache tier invalidates
eagerly (:meth:`BlockCache.invalidate`), which also raises a per-key
floor so an in-flight fill that started before the bump cannot
re-insert old bytes after it.  The watch layer's cache-coherence probe
re-derives exactly this: no resident block's tag may differ from its
placement's current version.

Bytes are modelled, not moved: :func:`content_stamp` derives the
digest of a block deterministically from ``(key, version, index)``, so
"byte-identical through cold/warm/evicted paths" is testable — a cache
serving the right version produces the same stamps as the disk path by
construction, and a stale block would not.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cache.policy import EvictionPolicy, LRUPolicy
from repro.errors import CacheError
from repro.sim import Simulator

BlockId = Tuple[str, int]  # (content key, block index)


def content_stamp(key: str, version: int, index: int) -> str:
    """Deterministic digest of one block's bytes at one version."""
    return hashlib.sha256(f"{key}@{version}#{index}".encode()).hexdigest()


def span_blocks(block_bytes: int, byte_off: int, nbytes: int) -> range:
    """Block indices covering ``nbytes`` starting at ``byte_off``."""
    first = byte_off // block_bytes
    last = (byte_off + max(nbytes, 1) - 1) // block_bytes
    return range(first, last + 1)


class BlockCache:
    """Bounded block store with pluggable eviction and version tags."""

    def __init__(self, simulator: Simulator, name: str,
                 capacity_bytes: int, block_bytes: int = 30_000,
                 policy: Optional[EvictionPolicy] = None) -> None:
        if capacity_bytes < block_bytes:
            raise CacheError(
                f"cache {name!r} capacity {capacity_bytes} below one "
                f"block ({block_bytes})"
            )
        self.simulator = simulator
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.block_bytes = block_bytes
        self.policy = policy if policy is not None else LRUPolicy()
        self.bytes_used = 0
        #: (key, block index) -> version tag
        self._blocks: Dict[BlockId, int] = {}
        #: key -> minimum version still admissible (raised by invalidate
        #: so a fill that raced a bump cannot resurrect stale bytes).
        self._floor: Dict[str, int] = {}
        metrics = simulator.obs.metrics
        # Aggregate cache.* instruments are shared across every cache in
        # the registry (same name -> same counter), so SLO specs can
        # gate the fleet-wide hit ratio; the per-cache gauge tracks
        # residency for the coherence probe and postmortems.
        self._m_lookups = metrics.counter("cache.lookups")
        self._m_hits = metrics.counter("cache.hits")
        self._m_misses = metrics.counter("cache.misses")
        self._m_fills = metrics.counter("cache.fills")
        self._m_evictions = metrics.counter("cache.evictions")
        self._m_invalidations = metrics.counter("cache.invalidations")
        self._m_bytes = metrics.gauge(f"cache.{name}.bytes")

    # -- geometry ------------------------------------------------------------
    def _span(self, byte_off: int, nbytes: int) -> range:
        return span_blocks(self.block_bytes, byte_off, nbytes)

    # -- lookups -------------------------------------------------------------
    def get(self, key: str, byte_off: int, nbytes: int,
            version: int) -> bool:
        """True iff every block covering the span is resident at ``version``."""
        self._m_lookups.inc()
        span = self._span(byte_off, nbytes)
        for index in span:
            if self._blocks.get((key, index)) != version:
                self._m_misses.inc()
                return False
        for index in span:
            self.policy.touched((key, index))
        self._m_hits.inc()
        return True

    def stamps(self, key: str, byte_off: int, nbytes: int,
               version: int) -> List[str]:
        """The content digests a read of this span serves."""
        return [content_stamp(key, version, index)
                for index in self._span(byte_off, nbytes)]

    def missing(self, key: str, byte_off: int, nbytes: int,
                version: int) -> List[int]:
        """Block indices of the span not resident at ``version``."""
        return [index for index in self._span(byte_off, nbytes)
                if self._blocks.get((key, index)) != version]

    # -- fills ---------------------------------------------------------------
    def put(self, key: str, byte_off: int, nbytes: int,
            version: int) -> int:
        """Insert the blocks covering a span, evicting as needed.

        Returns the number of blocks newly inserted.  A version below
        the key's invalidation floor is dropped silently — the fill
        raced a ``bump_version`` and its bytes are already stale.
        """
        if version < self._floor.get(key, 0):
            return 0
        inserted = 0
        for index in self._span(byte_off, nbytes):
            block = (key, index)
            old = self._blocks.get(block)
            if old == version:
                self.policy.touched(block)
                continue
            if old is not None:
                self._drop(block)
            while (self.bytes_used + self.block_bytes > self.capacity_bytes
                   and self._blocks):
                self._evict_one()
            self._blocks[block] = version
            self.bytes_used += self.block_bytes
            self.policy.admitted(block, float(self.block_bytes))
            inserted += 1
        if inserted:
            self._m_fills.inc(inserted)
            self._m_bytes.set(self.bytes_used)
        return inserted

    def _evict_one(self) -> None:
        block = self.policy.victim()
        if block not in self._blocks:
            raise CacheError(
                f"cache {self.name!r} policy evicted unknown block {block!r}"
            )
        del self._blocks[block]
        self.bytes_used -= self.block_bytes
        self._m_evictions.inc()

    def _drop(self, block: BlockId) -> None:
        if self._blocks.pop(block, None) is not None:
            self.bytes_used -= self.block_bytes
            self.policy.forgot(block)

    # -- invalidation --------------------------------------------------------
    def invalidate(self, key: str, min_version: int) -> int:
        """Drop every block of ``key`` older than ``min_version``.

        Also raises the key's floor so late fills of older versions are
        refused.  Returns the number of blocks dropped.
        """
        self._floor[key] = max(self._floor.get(key, 0), min_version)
        stale = [block for block, tag in self._blocks.items()
                 if block[0] == key and tag < min_version]
        for block in stale:
            self._drop(block)
        if stale:
            self._m_invalidations.inc(len(stale))
            self._m_bytes.set(self.bytes_used)
        return len(stale)

    def clear(self) -> None:
        for block in list(self._blocks):
            self._drop(block)
        self._m_bytes.set(self.bytes_used)

    # -- introspection (watch probes, tests) ---------------------------------
    @property
    def resident_blocks(self) -> int:
        return len(self._blocks)

    def resident(self) -> Iterable[Tuple[BlockId, int]]:
        """(block, version-tag) pairs, deterministic order."""
        return sorted(self._blocks.items())

    def versions_of(self, key: str) -> List[int]:
        return sorted({tag for block, tag in self._blocks.items()
                       if block[0] == key})

    def __repr__(self) -> str:
        return (f"BlockCache({self.name!r}, "
                f"{self.resident_blocks} blocks / {self.bytes_used} bytes, "
                f"policy={self.policy.name})")
