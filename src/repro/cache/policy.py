"""Pluggable eviction policies for :class:`~repro.cache.block.BlockCache`.

Two policies ship, compared head-to-head by
``benchmarks/bench_cache_goodput.py``:

* :class:`LRUPolicy` — classic recency order.  Cheap and good when the
  working set fits; under a Zipf flash crowd it can thrash, because one
  scan of a cold asset evicts the entire hot set.
* :class:`CostAwarePolicy` — GreedyDual-Size-Frequency.  Each block
  carries a priority ``L + frequency * cost``; eviction takes the
  minimum and advances the clock ``L`` to it, so a block must keep
  earning hits to stay resident and popular (viral) content outlives
  one-shot scans.

Both are fully deterministic: ties break on insertion sequence, never on
iteration order of a set or on wall-clock time.
"""

from __future__ import annotations

import heapq
import itertools
from collections import OrderedDict
from typing import Hashable

from repro.errors import CacheError


class EvictionPolicy:
    """Victim-selection strategy; the cache calls these hooks.

    Keys are opaque and hashable.  ``cost`` is the policy's notion of
    how expensive a miss on this block is (the cache passes the block
    size in bytes); LRU ignores it.
    """

    name = "base"

    def admitted(self, key: Hashable, cost: float) -> None:
        raise NotImplementedError

    def touched(self, key: Hashable) -> None:
        raise NotImplementedError

    def victim(self) -> Hashable:
        """Choose (and forget) the next block to evict."""
        raise NotImplementedError

    def forgot(self, key: Hashable) -> None:
        """The cache dropped ``key`` outside eviction (invalidation)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class LRUPolicy(EvictionPolicy):
    """Least-recently-used: victim is the stalest block."""

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def admitted(self, key: Hashable, cost: float) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def touched(self, key: Hashable) -> None:
        if key in self._order:
            self._order.move_to_end(key)

    def victim(self) -> Hashable:
        if not self._order:
            raise LookupError("LRU policy has no blocks to evict")
        key, _ = self._order.popitem(last=False)
        return key

    def forgot(self, key: Hashable) -> None:
        self._order.pop(key, None)


class CostAwarePolicy(EvictionPolicy):
    """GreedyDual-Size-Frequency: popularity- and cost-aware eviction.

    Priority of a block is ``L + hits * cost`` where ``L`` is a clock
    that rises to each evicted priority.  Frequently-hit blocks float
    above the clock; blocks touched once sink back to it and are evicted
    first, which is exactly the protection a Zipf hot set needs against
    a cold scan.  Implemented as a lazy heap: stale heap entries are
    skipped at pop time, ties break on admission sequence.
    """

    name = "cost-aware"

    def __init__(self) -> None:
        self._clock = 0.0
        self._seq = itertools.count()
        #: key -> (hits, cost, current priority)
        self._blocks: dict = {}
        self._heap: list = []  # (priority, seq, key)

    def _push(self, key: Hashable) -> None:
        hits, cost, priority = self._blocks[key]
        heapq.heappush(self._heap, (priority, next(self._seq), key))

    def admitted(self, key: Hashable, cost: float) -> None:
        self._blocks[key] = (1, cost, self._clock + cost)
        self._push(key)

    def touched(self, key: Hashable) -> None:
        entry = self._blocks.get(key)
        if entry is None:
            return
        hits, cost, _ = entry
        hits += 1
        self._blocks[key] = (hits, cost, self._clock + hits * cost)
        self._push(key)

    def victim(self) -> Hashable:
        while self._heap:
            priority, _, key = heapq.heappop(self._heap)
            entry = self._blocks.get(key)
            if entry is None or entry[2] != priority:
                continue  # stale heap entry (re-touched or invalidated)
            del self._blocks[key]
            self._clock = priority
            return key
        raise CacheError("cost-aware policy has no blocks to evict")

    def forgot(self, key: Hashable) -> None:
        self._blocks.pop(key, None)


POLICIES = {
    LRUPolicy.name: LRUPolicy,
    CostAwarePolicy.name: CostAwarePolicy,
}


def make_policy(name: str) -> EvictionPolicy:
    try:
        return POLICIES[name]()
    except KeyError:
        raise CacheError(
            f"unknown eviction policy {name!r} "
            f"(have {sorted(POLICIES)})"
        ) from None
