"""Aggregate (fluid) edge-cache model for vectorized herd populations.

The discrete cache hierarchy (:mod:`repro.cache.tier`) simulates every
block lookup of every stream.  The herd layer
(:mod:`repro.herd`) advances whole client populations per epoch and
never materialises individual streams, so it cannot walk the real
read path — instead it folds each epoch's *content-demand histogram*
through :class:`AggregateHitModel`, a stationary approximation of the
edge tier's steady state.

The approximation: under sustained Zipf demand an LRU/cost-aware edge
converges to keeping the most popular assets resident.  The model
therefore declares a capacity of ``cached_assets`` slots, ranks the
catalog by the population's popularity pmf, and treats the top-K ranked
assets as *cacheable*.  A cacheable asset becomes resident the first
time demand touches it; that cold epoch's demand is the read-through
fill and still counts as misses.  Demand on resident assets counts as
edge hits (served locally — no trunk bandwidth); everything else is a
pass-through miss that must be carried by the trunk.

Hit/miss/lookup counts are folded into the same ``cache.lookups`` /
``cache.hits`` / ``cache.misses`` counters the discrete
:class:`~repro.cache.block.BlockCache` maintains, so ``python -m repro
herd`` reports cache efficacy through the ordinary metrics registry.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError


class AggregateHitModel:
    """Top-K-by-popularity stationary model of the edge cache tier.

    ``account(histogram)`` takes one epoch's per-asset client-demand
    histogram (length ``catalog_size``) and returns ``(hits, misses)``
    in clients, updating residency and the shared cache counters.
    """

    def __init__(
        self,
        metrics,
        catalog_size: int,
        cached_assets: int,
        pmf: Optional[Sequence[float]] = None,
    ) -> None:
        if catalog_size < 1:
            raise SimulationError(
                f"aggregate cache needs a catalog of >= 1 asset, got {catalog_size}"
            )
        if cached_assets < 0:
            raise SimulationError(
                f"aggregate cache capacity must be >= 0 assets, got {cached_assets}"
            )
        self.catalog_size = catalog_size
        self.cached_assets = min(cached_assets, catalog_size)
        if pmf is None:
            ranked = np.arange(catalog_size)
        else:
            pmf = np.asarray(pmf, dtype=float)
            if pmf.shape != (catalog_size,):
                raise SimulationError(
                    f"popularity pmf has shape {pmf.shape}, expected ({catalog_size},)"
                )
            # Stable sort so popularity ties keep catalog order — residency
            # must not depend on argsort implementation details.
            ranked = np.argsort(-pmf, kind="stable")
        self._cacheable = np.zeros(catalog_size, dtype=bool)
        self._cacheable[ranked[: self.cached_assets]] = True
        self._resident = np.zeros(catalog_size, dtype=bool)
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self._m_lookups = metrics.counter("cache.lookups")
        self._m_hits = metrics.counter("cache.hits")
        self._m_misses = metrics.counter("cache.misses")
        self._m_fills = metrics.counter("cache.fills")

    @property
    def resident_assets(self) -> int:
        return int(self._resident.sum())

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def account(self, histogram: Sequence[int]) -> Tuple[int, int]:
        """Fold one epoch's demand histogram; returns ``(hits, misses)``."""
        hist = np.asarray(histogram)
        if hist.shape != (self.catalog_size,):
            raise SimulationError(
                f"demand histogram has shape {hist.shape}, "
                f"expected ({self.catalog_size},)"
            )
        if hist.min(initial=0) < 0:
            raise SimulationError("demand histogram cannot contain negative counts")
        total = int(hist.sum())
        hits = int(hist[self._resident].sum())
        misses = total - hits
        # Warm newly-touched cacheable assets: resident from the *next*
        # epoch on (this epoch's demand was the read-through fill).
        fills = (hist > 0) & self._cacheable & ~self._resident
        n_fills = int(fills.sum())
        if n_fills:
            self._resident |= fills
            self._m_fills.inc(n_fills)
        self.lookups += total
        self.hits += hits
        self.misses += misses
        if total:
            self._m_lookups.inc(total)
        if hits:
            self._m_hits.inc(hits)
        if misses:
            self._m_misses.inc(misses)
        return hits, misses

    def __repr__(self) -> str:
        return (
            f"AggregateHitModel({self.resident_assets}/{self.cached_assets} resident, "
            f"hit_ratio={self.hit_ratio:.3f})"
        )
