"""The cache tier: wires caches, edges, hot detection and fill traffic.

:class:`CacheTier` is the one object a scenario builds on top of a
:class:`~repro.cluster.placement.ClusterPlacementManager`:

* attaches a per-node :class:`~repro.cache.block.BlockCache` to every
  storage node (consulted inside ``ClusterStream._read_span``);
* runs N :class:`~repro.cache.edge.EdgeCacheNode` delivery nodes;
  ``open_read`` hands out :class:`~repro.cache.edge.EdgeStream` readers
  that rendezvous-pick their edge and degrade to pass-through;
* subscribes to ``bump_version`` and eagerly invalidates every cache —
  edge caches by placement key, node caches by shard key;
* feeds every read into a :class:`~repro.cache.hotspot.HotContentDetector`;
  a hot placement gets (a) its replication factor boosted via
  ``RepairManager.boost`` and (b) a **prefill** worker per live edge
  that fills missing blocks through a BACKGROUND-priority
  ``ClusterStream`` — admission-aware by construction: interactive
  sessions preempt it on both the storage and (trivially) the edge
  side, and its retries are bounded;
* a per-hot-key cool watcher polls the detector window and, when the
  crowd passes, restores the declared replication factor
  (``RepairManager.unboost``) — the watch layer's teardown probe holds
  the tier to that restoration.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.admission.controller import Priority
from repro.cache.block import BlockCache
from repro.cache.edge import EdgeCacheNode, EdgeStream
from repro.cache.hotspot import HotContentDetector
from repro.cache.policy import make_policy
from repro.errors import AdmissionError, CacheError, FaultError
from repro.sim import Delay, Simulator


class CacheTier:
    """Two-level popularity-aware caching in front of cluster placement."""

    def __init__(self, simulator: Simulator, cluster, edges: int = 2,
                 edge_bandwidth_bps: float = 240_000_000.0,
                 edge_capacity_bytes: int = 60_000_000,
                 node_cache_bytes: int = 12_000_000,
                 block_bytes: int = 30_000,
                 policy: str = "lru",
                 hot_window_s: float = 0.5,
                 hot_threshold: int = 40,
                 boost_extra: int = 1,
                 fill_bps: float = 24_000_000.0,
                 fill_max_attempts: int = 4,
                 edge_max_queue: int = 64) -> None:
        if edges < 0:
            raise CacheError(f"edge count must be >= 0, got {edges}")
        self.simulator = simulator
        self.cluster = cluster
        self.block_bytes = block_bytes
        self.policy_name = policy
        self.hot_window_s = hot_window_s
        self.boost_extra = boost_extra
        self.fill_bps = fill_bps
        self.fill_max_attempts = fill_max_attempts
        self.cool_threshold = max(1, hot_threshold // 4)
        self._stopping = False
        self._values: Dict[int, object] = {}
        self._edges: Dict[str, EdgeCacheNode] = {}
        for i in range(edges):
            name = f"edge-{i}"
            self._edges[name] = EdgeCacheNode(
                simulator, name, bandwidth_bps=edge_bandwidth_bps,
                capacity_bytes=edge_capacity_bytes,
                block_bytes=block_bytes, policy=make_policy(policy),
                max_queue=edge_max_queue)
        for node in cluster.nodes:
            node.block_cache = BlockCache(
                simulator, f"{node.name}.cache", node_cache_bytes,
                block_bytes, make_policy(policy))
        cluster.add_version_listener(self._on_version_bump)
        self.detector = HotContentDetector(
            simulator, window_s=hot_window_s, hot_threshold=hot_threshold,
            on_hot=self._went_hot)
        self._decisions = simulator.obs.decisions
        metrics = simulator.obs.metrics
        self._m_edge_bits = metrics.counter("cache.edge_bits")
        self._m_passthrough = metrics.counter("cache.passthrough")
        self._m_prefill_bits = metrics.counter("cache.prefill_bits")
        self._m_fill_aborts = metrics.counter("cache.fill_aborts")

    # -- membership ----------------------------------------------------------
    @property
    def edges(self) -> List[EdgeCacheNode]:
        return [self._edges[name] for name in sorted(self._edges)]

    @property
    def live_edge_names(self) -> List[str]:
        return [name for name in sorted(self._edges)
                if self._edges[name].live]

    def edge(self, name: str) -> EdgeCacheNode:
        try:
            return self._edges[name]
        except KeyError:
            raise CacheError(f"unknown edge {name!r}") from None

    @property
    def node_caches(self) -> List[BlockCache]:
        return [node.block_cache for node in self.cluster.nodes
                if node.block_cache is not None]

    @property
    def all_caches(self) -> List[BlockCache]:
        return [edge.cache for edge in self.edges] + self.node_caches

    # -- reads ---------------------------------------------------------------
    def open_read(self, value, bps: float, label: str = "cache-read",
                  priority: Priority = Priority.STANDARD,
                  queue_timeout_s: float = 0.0,
                  min_fraction: float = 1.0) -> EdgeStream:
        """An edge-fronted, pass-through-degrading stream over ``value``."""
        placement = self.cluster.placement_of(value)
        self._values[placement.value_id] = value
        return EdgeStream(self, value, bps, label, priority,
                          queue_timeout_s, min_fraction)

    # -- coherence -----------------------------------------------------------
    def _on_version_bump(self, placement) -> None:
        version = placement.version
        for edge in self.edges:
            edge.cache.invalidate(placement.key, version)
        for shard in placement.shards:
            for cache in self.node_caches:
                cache.invalidate(shard.key, version)

    # -- flash-crowd handling ------------------------------------------------
    def _went_hot(self, placement) -> None:
        key = placement.key
        if self._decisions.enabled:
            self._decisions.emit(
                "cache-hot", key, actor="cache",
                recent=self.detector.recent(key),
                window_s=self.hot_window_s)
        self.cluster.repair.boost(placement, self.boost_extra)
        for name in self.live_edge_names:
            self.simulator.spawn(
                self._prefill(self._edges[name], placement),
                name=f"prefill:{key}:{name}")
        self.simulator.spawn(self._watch_cool(placement),
                             name=f"cache-cool:{key}")

    def _watch_cool(self, placement):
        """Poll the access window; unboost once the crowd passes."""
        key = placement.key
        while not self._stopping:
            yield Delay(self.hot_window_s)
            if self.detector.recent(key) < self.cool_threshold:
                break
        self.detector.cooled(key)
        if self._decisions.enabled and not self._stopping:
            self._decisions.emit("cache-cool", key, actor="cache")
        self.cluster.repair.unboost(placement)

    def _prefill(self, edge: EdgeCacheNode, placement):
        """Fill an edge with a hot value, strictly as BACKGROUND traffic."""
        value = self._values.get(placement.value_id)
        if value is None:
            return
        key = placement.key
        block = self.block_bytes
        total = (placement.nbytes + block - 1) // block
        stream = self.cluster.open_read(
            value, self.fill_bps, label=f"fill:{key}:{edge.name}",
            priority=Priority.BACKGROUND, queue_timeout_s=0.02,
            min_fraction=0.25)
        attempts = 0
        with stream:
            index = 0
            while index < total:
                if self._stopping or not edge.live:
                    return
                version = placement.version
                byte_off = index * block
                nbytes = min(block, placement.nbytes - byte_off)
                if not edge.cache.missing(key, byte_off, nbytes, version):
                    index += 1
                    continue
                try:
                    stream.seek(byte_off * 8)
                    yield from stream.read(nbytes * 8)
                except (AdmissionError, FaultError):
                    attempts += 1
                    if attempts >= self.fill_max_attempts:
                        self._m_fill_aborts.inc()
                        return
                    yield Delay(0.02 * 2 ** (attempts - 1))
                    continue
                edge.cache.put(key, byte_off, nbytes, version)
                edge.account_fill(nbytes * 8)
                self._m_prefill_bits.inc(nbytes * 8)
                index += 1

    # -- lifecycle -----------------------------------------------------------
    def quiesce(self) -> None:
        """Restore every boosted placement (crowd is over by decree)."""
        for placement in self.cluster.placements:
            if placement.replication != placement.declared_replication:
                self.cluster.repair.unboost(placement)

    def shutdown(self) -> None:
        """Stop fill/cool workers at their next step and unboost."""
        self._stopping = True
        self.quiesce()

    def __repr__(self) -> str:
        return (f"CacheTier({len(self._edges)} edges "
                f"({len(self.live_edge_names)} live), "
                f"{len(self.node_caches)} node caches, "
                f"policy={self.policy_name})")
