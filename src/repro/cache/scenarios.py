"""Named cache scenarios for the ``python -m repro cache`` CLI.

Same conventions as the cluster/fault/overload registries: fresh
simulator inside the ambient observability scope, fully determined by
``(seed, knobs)``, virtual time only, flat dict of headline facts.

* ``zipf-crowd`` — thousands of short viewing sessions arrive over a
  couple of (virtual) seconds with Zipf-skewed asset choice and one
  viral asset taking the bulk; with the cache tier the crowd is served
  from edge memory (hot detection boosts replication and prefills the
  edges in the background), without it every read lands on the viral
  asset's R replicas.  ``cached=False`` runs the identical workload
  straight against the cluster — the benchmark's ≥3x goodput gate
  compares the two.
* ``churn`` — warms the caches, bumps the authoritative version of one
  value mid-run (every cache invalidates eagerly; reads switch to the
  new version's bytes), and kills an edge under load (readers degrade
  to pass-through, then re-attach).  The headline facts are coherence:
  no cache ends the run holding a stale version tag.

Both scenarios fold every stream's content digest into one scenario
digest, so rerun determinism — and byte-identity of what was served —
is a printed fact, diffable in CI.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List

from repro.admission.controller import Priority
from repro.cluster.scenarios import Blob, _build_cluster
from repro.errors import AdmissionError, CacheError, ClusterError, FaultError
from repro.sim import Delay, Simulator
from repro.synth.arrivals import uniform_arrival, zipf_pick, zipf_weights

ELEMENT_BITS = 240_000
PERIOD_S = 0.04


def _drain(sim: Simulator, cluster, tier) -> None:
    """Stop tier workers, node servers and repair; run to empty heap."""
    if tier is not None:
        tier.shutdown()
    cluster.shutdown()
    sim.run()


def _scenario_digest(digests: List[str]) -> str:
    folded = hashlib.sha256()
    for digest in sorted(digests):
        folded.update(digest.encode())
    return folded.hexdigest()


def zipf_crowd(seed: int = 0, nodes: int = 4, cached: bool = True,
               sessions: int = 2000, edges: int = 3,
               policy: str = "lru",
               edge_capacity_bytes: int = 60_000_000) -> Dict[str, object]:
    """A seeded Zipf flash crowd: one viral asset, thousands of viewers.

    Each session streams 8 elements of one asset: element 0 is startup
    (unpaced — admission queueing is buffering, not a glitch), elements
    1..7 are paced one period apart and are "on time" when they complete
    within a period of their ideal instant.  Goodput is on-time bits
    over the crowd's makespan.  The benchmark gates the cached/cache-less
    goodput ratio and zero violations for admitted INTERACTIVE sessions.
    """
    elements = 8
    viral_share = 0.6
    interactive_share = 0.15
    arrival_window_s = 2.0
    stream_bps = ELEMENT_BITS / PERIOD_S
    values_count = 12

    sim = Simulator()
    cluster = _build_cluster(sim, nodes, replication=2)
    rng = random.Random(seed)
    asset_bytes = elements * ELEMENT_BITS // 8
    values = [Blob(asset_bytes, stream_bps) for _ in range(values_count)]
    for value in values:
        cluster.place(value)
    cluster.repair.start()
    tier = None
    open_read = cluster.open_read
    if cached:
        from repro.cache.tier import CacheTier
        tier = CacheTier(sim, cluster, edges=edges, policy=policy,
                         edge_bandwidth_bps=320_000_000.0,
                         edge_capacity_bytes=edge_capacity_bytes,
                         hot_window_s=0.5, hot_threshold=40)
        open_read = tier.open_read

    # The whole workload is drawn up front from one rng, so cached and
    # cache-less runs see byte-identical session plans.
    weights = zipf_weights(values_count)
    plans = []
    for idx in range(sessions):
        arrival = uniform_arrival(rng, arrival_window_s)
        asset = zipf_pick(rng, values_count, viral_share, weights)
        interactive = rng.random() < interactive_share
        plans.append((arrival, asset, interactive))

    delivered_bits = [0] * sessions
    on_time_bits = [0] * sessions
    violations = [0] * sessions
    admitted = [False] * sessions
    failed = [0] * sessions
    done_at = [0.0] * sessions
    digests: List[str] = []

    def session(idx: int):
        arrival, asset, interactive = plans[idx]
        yield Delay(arrival)
        priority = Priority.INTERACTIVE if interactive else Priority.STANDARD
        stream = open_read(
            values[asset], stream_bps, label=f"viewer-{idx}",
            priority=priority, queue_timeout_s=1.0)
        with stream:
            try:
                yield from stream.read(ELEMENT_BITS)
            except (AdmissionError, FaultError, ClusterError, CacheError):
                failed[idx] = 1
                return
            admitted[idx] = True
            delivered_bits[idx] = ELEMENT_BITS
            on_time_bits[idx] = ELEMENT_BITS
            start = sim.now.seconds
            for n in range(1, elements):
                ideal = start + (n - 1) * PERIOD_S
                now = sim.now.seconds
                if now < ideal:
                    yield Delay(ideal - now)
                try:
                    yield from stream.read(ELEMENT_BITS,
                                           deadline=ideal + PERIOD_S)
                except (AdmissionError, FaultError, ClusterError,
                        CacheError):
                    failed[idx] = 1
                    return
                delivered_bits[idx] += ELEMENT_BITS
                if sim.now.seconds > ideal + PERIOD_S + 1e-9:
                    violations[idx] += 1
                else:
                    on_time_bits[idx] += ELEMENT_BITS
            done_at[idx] = sim.now.seconds
            digests.append(stream.digest
                           if hasattr(stream, "digest") else "")

    for idx in range(sessions):
        sim.spawn(session(idx), name=f"session-{idx}")
    end = sim.run()
    makespan = max(done_at) if any(done_at) else end.seconds
    goodput_bits = sum(on_time_bits)
    interactive_admitted = sum(
        1 for idx in range(sessions) if admitted[idx] and plans[idx][2])
    interactive_violations = sum(
        violations[idx] for idx in range(sessions)
        if admitted[idx] and plans[idx][2])
    metrics = sim.obs.metrics
    metrics.flush()

    def count(name: str) -> int:
        instrument = metrics.get(name)
        return int(getattr(instrument, "value", 0) or 0)

    lookups = count("cache.lookups")
    hits = count("cache.hits")
    boosted = [p for p in cluster.placements
               if p.replication != p.declared_replication]
    facts: Dict[str, object] = {
        "cached": cached,
        "policy": policy if cached else "none",
        "sessions": sessions,
        "sessions_admitted": sum(1 for a in admitted if a),
        "sessions_failed": sum(failed),
        "delivered_megabits": round(sum(delivered_bits) / 1e6, 3),
        "goodput_mbps": round(goodput_bits / makespan / 1e6, 2),
        "makespan_s": round(makespan, 3),
        "qos_violations": sum(violations),
        "interactive_admitted": interactive_admitted,
        "interactive_violations": interactive_violations,
        "hit_ratio": round(hits / lookups, 3) if lookups else 0.0,
        "passthrough_reads": count("cache.passthrough"),
        "prefill_megabits": round(count("cache.prefill_bits") / 1e6, 3),
        "hot_episodes": count("cache.hot_episodes"),
        "replica_boosts": count("cluster.replica_boosts"),
        "replica_unboosts": count("cluster.replica_unboosts"),
        "boosted_at_end": len(boosted),
        "digest": _scenario_digest(digests),
        "virtual_seconds": round(end.seconds, 3),
    }
    _drain(sim, cluster, tier)
    facts["stranded_processes"] = sim.live_processes
    return facts


def churn(seed: int = 0, nodes: int = 4, edges: int = 2,
          policy: str = "lru") -> Dict[str, object]:
    """Version bumps and an edge outage under continuous readers.

    Three waves of readers over the same two values: wave 1 warms the
    caches; between waves the authoritative version of value A is
    bumped (eager invalidation everywhere); during wave 2 ``edge-0``
    dies (readers degrade to pass-through or re-attach to ``edge-1``)
    and is restored for wave 3.  Coherence holds iff at no point — and
    certainly not at the end — any cache holds a version tag other
    than the placement's current one.
    """
    from repro.cache.tier import CacheTier
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan

    elements = 6
    stream_bps = ELEMENT_BITS / PERIOD_S
    waves = 3
    readers_per_wave = 8

    sim = Simulator()
    cluster = _build_cluster(sim, nodes, replication=2)
    rng = random.Random(seed)
    asset_bytes = elements * ELEMENT_BITS // 8
    value_a = Blob(asset_bytes, stream_bps)
    value_b = Blob(asset_bytes, stream_bps)
    placement_a = cluster.place(value_a, key="asset-a")
    cluster.place(value_b, key="asset-b")
    cluster.repair.start()
    tier = CacheTier(sim, cluster, edges=edges, policy=policy,
                     hot_threshold=1000)  # churn is not a crowd test
    #: (wave, asset) -> digests of every reader of that asset in that wave
    wave_digests: Dict[object, List[str]] = {
        (w, asset): [] for w in range(waves) for asset in ("a", "b")}
    passthrough = [0]
    switches = [0]

    def reader(wave: int, idx: int):
        yield Delay(wave * 0.5 + idx * 0.01 + rng.uniform(0.0, 0.005))
        asset = "a" if idx % 2 == 0 else "b"
        value = value_a if asset == "a" else value_b
        stream = tier.open_read(value, stream_bps,
                                label=f"churn-{wave}-{idx}",
                                priority=Priority.STANDARD,
                                queue_timeout_s=1.0)
        with stream:
            for _ in range(elements):
                yield from stream.read(ELEMENT_BITS)
            wave_digests[wave, asset].append(stream.digest)
            passthrough[0] += stream.passthroughs
            switches[0] += stream.edge_switches

    def control():
        # Bump A after wave 1 fully drains, kill edge-0 during wave 2.
        yield Delay(0.45)
        cluster.bump_version(value_a)

    plan = FaultPlan(seed=seed).edge_cache_outage("edge-0", at=0.55,
                                                  duration=0.4)
    injector = FaultInjector(sim, plan).arm(edges=tier.edges)
    for wave in range(waves):
        for idx in range(readers_per_wave):
            sim.spawn(reader(wave, idx), name=f"churn-{wave}-{idx}")
    sim.spawn(control(), name="churn-control")
    end = sim.run()

    def stale_tags() -> int:
        stale = 0
        for placement in cluster.placements:
            keys = {placement.key} | {s.key for s in placement.shards}
            for cache in tier.all_caches:
                for key in keys:
                    stale += sum(1 for tag in cache.versions_of(key)
                                 if tag != placement.version)
        return stale

    metrics = sim.obs.metrics
    metrics.flush()

    def count(name: str) -> int:
        instrument = metrics.get(name)
        return int(getattr(instrument, "value", 0) or 0)

    # Wave 0 and wave 2 read different bytes of asset-a (the bump sits
    # between them), every reader inside one (wave, asset) must agree,
    # and asset-b — never bumped — must serve identical bytes throughout.
    unique = {group: sorted(set(digests))
              for group, digests in wave_digests.items()}
    b_all = {d for w in range(waves) for d in unique[w, "b"]}
    facts: Dict[str, object] = {
        "version_of_a": placement_a.version,
        "invalidations": count("cache.invalidations"),
        "stale_tags": stale_tags(),
        "edge_deaths": sum(edge.deaths for edge in tier.edges),
        "faults_injected": injector.injected,
        "passthrough_reads": passthrough[0],
        "edge_switches": switches[0],
        "hit_ratio": (round(count("cache.hits") / count("cache.lookups"), 3)
                      if count("cache.lookups") else 0.0),
        "wave_agreement": all(len(d) <= 1 for d in unique.values()),
        "a_changed_after_bump": unique[0, "a"] != unique[2, "a"],
        "b_stable": len(b_all) <= 1,
        "digest": _scenario_digest(
            [d for digests in wave_digests.values() for d in digests]),
        "virtual_seconds": round(end.seconds, 3),
    }
    _drain(sim, cluster, tier)
    facts["stranded_processes"] = sim.live_processes
    return facts


SCENARIOS: Dict[str, object] = {
    "zipf-crowd": zipf_crowd,
    "churn": churn,
}


def summary_line(name: str, facts: Dict[str, object]) -> str:
    """One deterministic line per run, for rerun diffing in CI."""
    keys: List[str] = sorted(facts)
    body = " ".join(f"{key}={facts[key]}" for key in keys)
    return f"cache {name}: {body}"
