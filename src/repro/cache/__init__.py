"""Two-level, popularity-aware cache hierarchy for the cluster tier.

The paper's single-system AV database keeps continuous delivery real-time
by pre-allocating device bandwidth; at cluster scale the same promise
breaks the moment a Zipf flash crowd lands on one value's R replicas.
This package adds the missing distribution tier:

* :mod:`repro.cache.block` — version-tagged :class:`BlockCache`, the one
  cache implementation used per storage node and per edge;
* :mod:`repro.cache.policy` — pluggable eviction (:class:`LRUPolicy`,
  :class:`CostAwarePolicy`);
* :mod:`repro.cache.edge` — killable :class:`EdgeCacheNode` delivery
  nodes and the :class:`EdgeStream` read path (hit, read-through,
  pass-through);
* :mod:`repro.cache.hotspot` — sliding-window flash-crowd detection;
* :mod:`repro.cache.aggregate` — :class:`AggregateHitModel`, the fluid
  top-K approximation of the edge tier used by :mod:`repro.herd`;
* :mod:`repro.cache.tier` — :class:`CacheTier` wiring it all to a
  :class:`~repro.cluster.placement.ClusterPlacementManager`, including
  BACKGROUND prefill and temporary replication boost;
* :mod:`repro.cache.scenarios` — seeded ``zipf-crowd`` / ``churn``
  scenarios behind ``python -m repro cache``.
"""

from repro.cache.aggregate import AggregateHitModel
from repro.cache.block import BlockCache, content_stamp, span_blocks
from repro.cache.edge import EdgeCacheNode, EdgeStream
from repro.cache.hotspot import HotContentDetector
from repro.cache.policy import (
    CostAwarePolicy,
    EvictionPolicy,
    LRUPolicy,
    POLICIES,
    make_policy,
)
from repro.cache.scenarios import SCENARIOS, summary_line
from repro.cache.tier import CacheTier

__all__ = [
    "AggregateHitModel",
    "BlockCache",
    "CacheTier",
    "CostAwarePolicy",
    "EdgeCacheNode",
    "EdgeStream",
    "EvictionPolicy",
    "HotContentDetector",
    "LRUPolicy",
    "POLICIES",
    "SCENARIOS",
    "content_stamp",
    "make_policy",
    "span_blocks",
    "summary_line",
]
