"""Flash-crowd detection over a sliding virtual-time window.

The detector is purely access-driven: every :class:`EdgeStream` read
notes its placement, the note prunes the key's event window, and a key
crossing ``hot_threshold`` accesses inside ``window_s`` fires the
``on_hot`` callback exactly once per hot episode.  Cooling is the
tier's job (a per-key watcher process polls :meth:`recent` on the same
window), because cooling needs virtual time to pass with *no* accesses
— an access-driven hook alone would never fire.

Everything is deterministic: windows are virtual-time, thresholds are
counts, and no wall clock or unseeded randomness is involved.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Set

from repro.errors import CacheError
from repro.sim import Simulator


class HotContentDetector:
    """Marks placements hot when a Zipf crowd lands on them."""

    def __init__(self, simulator: Simulator, window_s: float = 0.5,
                 hot_threshold: int = 40,
                 on_hot: Optional[Callable] = None) -> None:
        if window_s <= 0:
            raise CacheError(f"window must be positive, got {window_s}")
        if hot_threshold < 1:
            raise CacheError(
                f"hot threshold must be >= 1, got {hot_threshold}"
            )
        self.simulator = simulator
        self.window_s = window_s
        self.hot_threshold = hot_threshold
        self.on_hot = on_hot
        self.episodes = 0
        self._events: Dict[str, Deque[float]] = {}
        self._hot: Set[str] = set()
        metrics = simulator.obs.metrics
        self._m_hot = metrics.counter("cache.hot_episodes")
        self._m_hot_now = metrics.gauge("cache.hot_values")

    def note(self, placement) -> None:
        """Record one access; may flip the placement hot."""
        key = placement.key
        window = self._events.get(key)
        if window is None:
            window = self._events[key] = deque()
        now = self.simulator.now.seconds
        window.append(now)
        horizon = now - self.window_s
        while window and window[0] < horizon:
            window.popleft()
        if key not in self._hot and len(window) >= self.hot_threshold:
            self._hot.add(key)
            self.episodes += 1
            self._m_hot.inc()
            self._m_hot_now.set(len(self._hot))
            if self.on_hot is not None:
                self.on_hot(placement)

    def recent(self, key: str) -> int:
        """Accesses inside the window ending now (prunes as it counts)."""
        window = self._events.get(key)
        if not window:
            return 0
        horizon = self.simulator.now.seconds - self.window_s
        while window and window[0] < horizon:
            window.popleft()
        return len(window)

    def is_hot(self, key: str) -> bool:
        return key in self._hot

    @property
    def hot_keys(self) -> Set[str]:
        return set(self._hot)

    def cooled(self, key: str) -> None:
        """The tier's watcher decided the crowd passed."""
        self._hot.discard(key)
        self._m_hot_now.set(len(self._hot))

    def __repr__(self) -> str:
        return (f"HotContentDetector({len(self._hot)} hot, "
                f"threshold={self.hot_threshold}/{self.window_s}s)")
