"""Edge cache nodes: RAM-backed delivery fronting cluster placement.

An :class:`EdgeCacheNode` is the delivery half of the cache hierarchy:
a fat NIC :class:`~repro.net.channel.Channel` arbitrated by its own
:class:`~repro.admission.controller.AdmissionController`, backed by a
:class:`~repro.cache.block.BlockCache` — no disk, no scheduler.  A hit
streams straight from edge memory at the contracted rate; a miss reads
through the cluster (at the *caller's* priority — the user is waiting)
and demand-fills the edge on the way out.

Edges are killable: they expose the ``name``/``live``/``kill``/
``restore`` surface the fault injector's ``edge-cache-outage`` arm
expects, and a kill drops the cache contents (it models RAM).  Readers degrade
to **pass-through** — the wrapped :class:`ClusterStream` keeps serving
straight from the storage nodes — and re-attach to a surviving edge on
the next read, so an edge outage costs hit ratio, never availability.
"""

from __future__ import annotations

import hashlib
from typing import Generator, Optional

from repro.admission.controller import (
    AdmissionController,
    Priority,
    QoSContract,
)
from repro.cache.block import BlockCache, content_stamp, span_blocks
from repro.cache.policy import EvictionPolicy
from repro.cluster import hashing
from repro.errors import AdmissionError, CacheError
from repro.net.channel import Channel, Reservation
from repro.sim import Delay, Simulator


class EdgeCacheNode:
    """A named, killable cache node: NIC + admission + block cache."""

    def __init__(self, simulator: Simulator, name: str,
                 bandwidth_bps: float = 240_000_000.0,
                 capacity_bytes: int = 60_000_000,
                 block_bytes: int = 30_000,
                 policy: Optional[EvictionPolicy] = None,
                 max_queue: int = 64) -> None:
        self.simulator = simulator
        self.name = name
        self.nic = Channel(simulator, bandwidth_bps, name=f"{name}.nic")
        self.admission = AdmissionController(simulator, self.nic,
                                             max_queue=max_queue, name=name)
        self.cache = BlockCache(simulator, name, capacity_bytes,
                                block_bytes, policy)
        self.live = True
        self.deaths = 0
        self.bits_served = 0
        self.bits_filled = 0

    def kill(self) -> None:
        """Edge outage: contents are RAM, so the cache dies with it."""
        if not self.live:
            return
        self.live = False
        self.deaths += 1
        self.cache.clear()

    def restore(self) -> None:
        """Bring the edge back cold; it refills on demand/prefill."""
        if not self.live:
            self.live = True

    def account_hit(self, bits: int) -> None:
        self.bits_served += bits

    def account_fill(self, bits: int) -> None:
        self.bits_filled += bits

    def __repr__(self) -> str:
        state = "live" if self.live else "down"
        return (f"EdgeCacheNode({self.name!r}, {state}, "
                f"{self.cache.resident_blocks} blocks, "
                f"{self.bits_served} bits served)")


class EdgeStream:
    """A read stream through the cache hierarchy.

    Duck-types the ``read(bits)`` DES-subroutine protocol of
    :class:`~repro.cluster.placement.ClusterStream` and wraps one: hits
    are served from the rendezvous-chosen edge under an edge admission
    reservation; misses (and pass-through, when no edge will serve)
    seek the inner cluster stream to the current offset and read
    through it, demand-filling the edge.

    ``digest`` chains the :func:`~repro.cache.block.content_stamp` of
    every block served, in order — two streams that read the same value
    end with equal digests iff they saw byte-identical content,
    whichever mix of cold/warm/evicted/pass-through paths served them.
    """

    def __init__(self, tier, value, bps: float, label: str,
                 priority: Priority, queue_timeout_s: float,
                 min_fraction: float = 1.0) -> None:
        self.tier = tier
        self.simulator = tier.simulator
        self.placement = tier.cluster.placement_of(value)
        self.bps = bps
        self.label = label
        self.priority = priority
        self.queue_timeout_s = queue_timeout_s
        self.inner = tier.cluster.open_read(
            value, bps, label=f"{label}:origin", priority=priority,
            queue_timeout_s=queue_timeout_s, min_fraction=min_fraction)
        self.bits_read = 0
        self.hits = 0
        self.misses = 0
        self.passthroughs = 0
        self.edge_switches = 0
        self.closed = False
        self._pos_bits = 0
        self._edge: Optional[EdgeCacheNode] = None
        self._reservation: Optional[Reservation] = None
        self._digest = hashlib.sha256()

    # -- introspection -------------------------------------------------------
    @property
    def serving_edge(self) -> Optional[str]:
        return self._edge.name if self._edge is not None else None

    @property
    def digest(self) -> str:
        """Running digest of everything served so far."""
        return self._digest.hexdigest()

    @property
    def exhausted(self) -> bool:
        return self._pos_bits >= self.placement.nbytes * 8

    # -- the read path -------------------------------------------------------
    def seek(self, bit_offset: int) -> None:
        if not 0 <= bit_offset <= self.placement.nbytes * 8:
            raise CacheError(
                f"seek to bit {bit_offset} outside {self.placement.key!r}"
            )
        self._pos_bits = bit_offset

    def read(self, bits: int, deadline: Optional[float] = None) -> Generator:
        """DES subroutine: read ``bits``, hit-serving or reading through."""
        if self.closed:
            raise CacheError(f"stream {self.label!r} is closed")
        total_bits = self.placement.nbytes * 8
        if self._pos_bits + bits > total_bits:
            raise CacheError(
                f"stream {self.label!r} read past end of "
                f"{self.placement.key!r}"
            )
        self.tier.detector.note(self.placement)
        yield from self._ensure()
        placement = self.placement
        version = placement.version
        byte_off = self._pos_bits // 8
        span_bytes = (bits + 7) // 8
        edge = self._edge
        if (edge is not None and edge.live
                and edge.cache.get(placement.key, byte_off, span_bytes,
                                   version)):
            yield Delay(bits / self._reservation.bps)
            edge.account_hit(bits)
            self.hits += 1
            self.tier._m_edge_bits.inc(bits)
        else:
            self.inner.seek(self._pos_bits)
            yield from self.inner.read(bits, deadline)
            if edge is None:
                self.passthroughs += 1
            else:
                self.misses += 1
                if edge.live:
                    edge.cache.put(placement.key, byte_off, span_bytes,
                                   version)
                    edge.account_fill(bits)
        for index in span_blocks(self.tier.block_bytes, byte_off, span_bytes):
            self._digest.update(
                content_stamp(placement.key, version, index).encode())
        self._pos_bits += bits
        self.bits_read += bits

    # -- edge attachment -----------------------------------------------------
    def _ensure(self) -> Generator:
        """(Re)attach to the best live edge, or drop to pass-through."""
        edge = self._edge
        if (edge is not None and edge.live
                and self._reservation is not None
                and not self._reservation.released
                and not self._reservation.preempted):
            return
        had_edge = edge is not None
        self._detach()
        names = self.tier.live_edge_names
        for name in hashing.rank(self.placement.key, names):
            candidate = self.tier.edge(name)
            contract = QoSContract(self.bps, self.priority,
                                   queue_timeout_s=max(self.queue_timeout_s,
                                                       0.001))
            try:
                if self.queue_timeout_s > 0:
                    reservation = yield from candidate.admission.admit(
                        contract, label=self.label)
                else:
                    reservation = candidate.admission.try_admit(
                        contract, label=self.label)
            except AdmissionError:
                continue
            self._edge, self._reservation = candidate, reservation
            if had_edge:
                self.edge_switches += 1
            return
        # No edge will serve us: pass-through to the cluster.  The
        # inner stream admits per storage node on its own.
        self.tier._m_passthrough.inc()

    def _detach(self) -> None:
        if self._reservation is not None and not self._reservation.released:
            self._reservation.release()
        self._edge = None
        self._reservation = None

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._detach()
            self.inner.close()

    def __enter__(self) -> "EdgeStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"EdgeStream({self.label!r} via {self.serving_edge!r}, "
                f"{self.hits} hits / {self.misses} misses / "
                f"{self.passthroughs} passthrough)")
