"""Seeded herd scenarios: hybrid foreground + million-user crowds.

Each scenario builds one trunk + admission controller, compiles a
:class:`~repro.herd.population.HerdPopulation` for the crowd, couples
it with a :class:`~repro.herd.coupler.HerdCoupler`, and spawns a
handful of *foreground* interactive sessions as ordinary discrete
processes on the same controller — full kernel semantics (queueing,
degradation, preemption of herd cohorts) for the streams you care
about, fluid per-epoch batches for the hundred-thousand extras.

* ``surge`` — a ramp / peak / cooldown day; the peak offers ~2.5x the
  trunk, the edge cache absorbs the popular head, foreground sessions
  ride through the squeeze.
* ``flash`` — a quiet baseline, then a 10x viral flash crowd (95% of
  arrivals on one asset); the aggregate edge model eats the viral
  asset after one cold epoch and the trunk mostly carries the tail.
* ``day`` — the broadcast-day soak phases
  (:func:`repro.soak.phases.default_day`) recast as herd rates, same
  shares, scaled to any client count.

Every scenario takes ``clients`` (expected total crowd size — the
actual Poisson total is seeded) and ``compare_discrete`` (run the
scaled-down equivalence probe alongside and report the verdict).
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from repro.admission.controller import (
    AdmissionController,
    Priority,
    QoSContract,
)
from repro.cache.aggregate import AggregateHitModel
from repro.errors import AdmissionError, AdmissionTimeoutError, PreemptedError
from repro.herd.coupler import HerdCoupler
from repro.herd.equivalence import equivalence_report
from repro.herd.population import HerdPhase, HerdPopulation
from repro.net.channel import Channel
from repro.sim import Delay, Simulator

#: herd streams: 1 Mb/s each, 4 epochs (0.2 s) per session.
STREAM_BPS = 1_000_000.0
EPOCH_S = 0.05
SESSION_EPOCHS = 4

#: foreground sessions: interactive, full-rate-or-nothing.
FG_ELEMENT_BITS = 50_000
FG_ELEMENTS = 20

#: the equivalence probe runs the same phase mix thinned to this many
#: expected clients against a proportionally thinned trunk.
PROBE_CLIENTS = 240


def _surge_phases(rate: float) -> Tuple[HerdPhase, ...]:
    return (
        HerdPhase("ramp", 2.0, rate, viral_share=0.35,
                  interactive_share=0.2),
        HerdPhase("peak", 3.0, 4.0 * rate, viral_share=0.6,
                  interactive_share=0.25, background_share=0.1),
        HerdPhase("cool", 2.0, 0.8 * rate, viral_share=0.3),
    )


def _flash_phases(rate: float) -> Tuple[HerdPhase, ...]:
    return (
        HerdPhase("quiet", 1.5, rate, viral_share=0.2,
                  background_share=0.3),
        HerdPhase("flash", 1.0, 10.0 * rate, viral_share=0.95,
                  interactive_share=0.3, background_share=0.2),
        HerdPhase("decay", 1.5, 2.0 * rate, viral_share=0.7),
    )


def _day_phases(rate: float) -> Tuple[HerdPhase, ...]:
    from repro.soak.phases import default_day

    specs = default_day()
    # Recast session counts as rates, preserving each phase's share of
    # the day's arrivals and its skew/priority character.
    total_density = sum(s.vod_sessions for s in specs) / sum(
        s.duration_s for s in specs)
    return tuple(
        HerdPhase(spec.name, spec.duration_s,
                  rate * (spec.vod_sessions / spec.duration_s)
                  / total_density,
                  viral_share=spec.viral_share,
                  interactive_share=spec.interactive_share)
        for spec in specs
    )


def _expected_clients(phases: Tuple[HerdPhase, ...]) -> float:
    return sum(p.duration_s * p.arrivals_per_s for p in phases)


def _foreground(simulator: Simulator, controller: AdmissionController,
                stats: Dict[str, int], *, sessions: int, start_s: float,
                spacing_s: float, bps: float) -> None:
    """Spawn discrete interactive sessions over the herd-loaded trunk."""

    def session(index: int) -> Generator:
        yield Delay(start_s + index * spacing_s)
        contract = QoSContract(bps, Priority.INTERACTIVE,
                               min_fraction=1.0, queue_timeout_s=0.5)
        try:
            reservation = yield from controller.admit(
                contract, label=f"fg-{index:02d}")
        except (AdmissionError, AdmissionTimeoutError):
            stats["fg_refused"] += 1
            return
        stats["fg_admitted"] += 1
        period = FG_ELEMENT_BITS / reservation.bps
        start = simulator.now.seconds
        late = 0
        try:
            for i in range(FG_ELEMENTS):
                ideal = start + i * period
                if ideal > simulator.now.seconds:
                    yield Delay(ideal - simulator.now.seconds)
                yield from reservation.serialize(FG_ELEMENT_BITS)
                if simulator.now.seconds > ideal + 1.25 * period + 1e-12:
                    late += 1
        except PreemptedError:
            stats["fg_preempted"] += 1
            return
        finally:
            if not reservation.released:
                reservation.release()
        stats["fg_completed"] += 1
        stats["fg_late_elements"] += late

    for index in range(sessions):
        simulator.spawn(session(index), name=f"fg-{index:02d}")


def _run(phases_for_rate, *, seed: int, clients: float,
         capacity_streams: int, catalog_size: int, cached_assets: int,
         fg_sessions: int, fg_start_s: float,
         compare_discrete: bool) -> Dict[str, object]:
    nominal = _expected_clients(phases_for_rate(1.0))
    rate = clients / nominal
    phases = phases_for_rate(rate)
    simulator = Simulator()
    trunk = Channel(simulator, capacity_bps=STREAM_BPS * capacity_streams,
                    name="trunk")
    controller = AdmissionController(simulator, trunk, max_queue=64,
                                     high_watermark=0.85, preempt=True)
    population = HerdPopulation(phases, seed=seed,
                                catalog_size=catalog_size, epoch_s=EPOCH_S)
    # pmf=None ranks the catalog in index order, which *is* popularity
    # order here (asset 0 viral, then Zipf by rank).
    cache_model = AggregateHitModel(simulator.obs.metrics, catalog_size,
                                    cached_assets)
    coupler = HerdCoupler(simulator, controller, population,
                          stream_bps=STREAM_BPS,
                          session_epochs=SESSION_EPOCHS,
                          cache_model=cache_model)
    coupler.start()
    fg_stats = {key: 0 for key in (
        "fg_admitted", "fg_refused", "fg_preempted", "fg_completed",
        "fg_late_elements",
    )}
    _foreground(simulator, controller, fg_stats, sessions=fg_sessions,
                start_s=fg_start_s, spacing_s=EPOCH_S / 2, bps=4 * STREAM_BPS)
    end = simulator.run()

    facts: Dict[str, object] = {
        "seed": seed,
        "clients_expected": int(clients),
        "epochs": population.n_epochs,
        "population_sha": population.sha256()[:16],
    }
    facts.update(coupler.facts())
    facts.update(fg_stats)
    facts["cache_hit_ratio"] = round(cache_model.hit_ratio, 4)
    facts["trunk_bits"] = trunk.total_bits
    facts["virtual_seconds"] = round(end.seconds, 6)
    if compare_discrete:
        probe = HerdPopulation(
            tuple(p.scaled(PROBE_CLIENTS / clients) for p in phases),
            seed=seed, catalog_size=catalog_size, epoch_s=EPOCH_S)
        report = equivalence_report(
            probe,
            capacity_bps=STREAM_BPS * max(2, int(
                capacity_streams * PROBE_CLIENTS / clients)),
            stream_bps=STREAM_BPS, session_epochs=SESSION_EPOCHS)
        facts["probe_clients"] = report["clients"]
        facts["probe_equivalent"] = report["equivalent"]
        facts["probe_mismatches"] = len(report["mismatches"])
    return facts


def surge(seed: int = 0, clients: Optional[int] = None,
          compare_discrete: bool = False) -> Dict[str, object]:
    """Ramp / peak / cooldown: a 2.5x-over-capacity evening."""
    return _run(_surge_phases, seed=seed, clients=clients or 20_000,
                capacity_streams=160, catalog_size=32, cached_assets=6,
                fg_sessions=8, fg_start_s=2.5,
                compare_discrete=compare_discrete)


def flash(seed: int = 0, clients: Optional[int] = None,
          compare_discrete: bool = False) -> Dict[str, object]:
    """A 10x viral flash crowd with 95% of demand on one asset."""
    return _run(_flash_phases, seed=seed, clients=clients or 30_000,
                capacity_streams=150, catalog_size=64, cached_assets=4,
                fg_sessions=8, fg_start_s=1.6,
                compare_discrete=compare_discrete)


def day(seed: int = 0, clients: Optional[int] = None,
        compare_discrete: bool = False) -> Dict[str, object]:
    """The broadcast-day soak phases, recast as a scalable herd."""
    return _run(_day_phases, seed=seed, clients=clients or 25_000,
                capacity_streams=200, catalog_size=32, cached_assets=6,
                fg_sessions=6, fg_start_s=5.2,
                compare_discrete=compare_discrete)


SCENARIOS = {
    "surge": surge,
    "flash": flash,
    "day": day,
}


def summary_line(scenario: str, facts: Dict[str, object]) -> str:
    """One deterministic line for CI smoke checks and the benchmark."""
    keys = (
        "seed", "clients_expected", "clients", "edge_served",
        "admitted_full", "admitted_degraded", "shed", "completed",
        "preempted", "fg_admitted", "fg_refused", "fg_preempted",
        "fg_completed", "fg_late_elements", "cache_hit_ratio",
        "peak_utilization", "goodput_bits", "trunk_bits",
        "probe_equivalent", "virtual_seconds",
    )
    parts = [f"{key}={facts[key]}" for key in keys if key in facts]
    return f"herd {scenario}: " + " ".join(parts)
