"""Vectorized client-herd simulation for million-user scale.

The ROADMAP's production north star talks about "millions of users";
the discrete kernel simulates each of them as a generator process, so
a million-client day costs millions of heap operations before a single
interesting event fires.  This package adds the **hybrid fluid mode**:
the sessions you care about stay full-fidelity discrete processes,
while the crowd behind them becomes a compiled *herd population* that
advances per epoch with numpy batch arithmetic.

* :mod:`repro.herd.population` — :class:`HerdPhase` declarations
  compiled into per-epoch arrival/priority/content vectors
  (:class:`HerdPopulation`), all randomness drawn up front;
* :mod:`repro.herd.coupler` — :class:`HerdCoupler`, the epoch tick
  that folds those vectors into the *real*
  :class:`~repro.admission.AdmissionController` as batched cohort
  reservations (contention with foreground streams is bidirectional,
  including preemption), and through the
  :class:`~repro.cache.aggregate.AggregateHitModel` edge tier;
* :mod:`repro.herd.equivalence` — the honesty proof: the same
  population run once as cohorts and once as one process per client
  must produce identical verdict counts, goodput, trunk traffic and
  occupancy curves;
* :mod:`repro.herd.scenarios` — seeded ``surge`` / ``flash`` / ``day``
  hybrid scenarios behind ``python -m repro herd``.
"""

from repro.herd.coupler import HerdCoupler, apportion
from repro.herd.equivalence import (
    compare,
    equivalence_report,
    run_discrete,
    run_herd,
)
from repro.herd.population import HerdPhase, HerdPopulation, PRIORITY_ORDER
from repro.herd.scenarios import SCENARIOS, summary_line

__all__ = [
    "HerdCoupler",
    "HerdPhase",
    "HerdPopulation",
    "PRIORITY_ORDER",
    "SCENARIOS",
    "apportion",
    "compare",
    "equivalence_report",
    "run_discrete",
    "run_herd",
    "summary_line",
]
