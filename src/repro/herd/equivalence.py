"""Herd <-> discrete equivalence: the proof the fluid mode is honest.

The herd coupler claims each ``admit_batch`` is exactly what ``count``
individual clients arriving back-to-back at the epoch boundary would
have gotten.  This module makes that falsifiable: :func:`run_herd` and
:func:`run_discrete` drive the *same compiled population* — same seed,
same per-epoch counts — through the same channel/controller
configuration, once as aggregate cohorts and once as one real DES
process per client, and :func:`compare` diffs the verdict counts,
goodput, trunk traffic and the epoch-by-epoch trunk-occupancy curve.

Two deliberate alignment rules make the comparison exact rather than
statistical:

* discrete sessions hold their reservation for ``session_s`` minus a
  fixed ``RELEASE_SLACK_S`` so their releases land just *before* the
  epoch boundary — the coupler's departures-before-arrivals order —
  while bits are still charged for the full ``session_s``;
* occupancy is sampled mid-epoch (both systems are quiescent there),
  so the curves are comparable point-for-point.

Equivalence rigs run with ``preempt=False`` and ``max_queue=0``:
``admit_batch`` models an instantaneous arrival burst, not queue
residency, and cohort-granularity preemption is a documented
coarsening (a revoked cohort loses all its clients at once).
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.admission.controller import AdmissionController, QoSContract
from repro.admission.workload import PRIORITY_QOS
from repro.avtime import WorldTime
from repro.errors import AdmissionError
from repro.herd.coupler import HerdCoupler
from repro.herd.population import PRIORITY_ORDER, HerdPopulation
from repro.net.channel import Channel
from repro.sim import Delay, Simulator

#: how much earlier than the epoch boundary a discrete session releases
#: (virtual seconds) — small enough to be invisible in any fact, large
#: enough to order releases ahead of same-boundary arrivals.
RELEASE_SLACK_S = 1e-7


def _rig(capacity_bps: float, high_watermark: float):
    simulator = Simulator()
    trunk = Channel(simulator, capacity_bps=capacity_bps, name="trunk")
    controller = AdmissionController(simulator, trunk, max_queue=0,
                                     high_watermark=high_watermark,
                                     preempt=False)
    return simulator, trunk, controller


def run_herd(population: HerdPopulation, *, capacity_bps: float,
             stream_bps: float, session_epochs: int = 4,
             high_watermark: float = 0.85) -> Dict[str, object]:
    """Run the population through the coupler; no cache, no foreground."""
    simulator, trunk, controller = _rig(capacity_bps, high_watermark)
    coupler = HerdCoupler(simulator, controller, population,
                          stream_bps=stream_bps,
                          session_epochs=session_epochs)
    coupler.start()
    end = simulator.run()
    facts = coupler.facts()
    facts["trunk_bits"] = trunk.total_bits
    facts["virtual_seconds"] = round(end.seconds, 6)
    facts["occupancy"] = tuple(round(u, 9) for _, u in coupler.occupancy)
    return facts


def run_discrete(population: HerdPopulation, *, capacity_bps: float,
                 stream_bps: float, session_epochs: int = 4,
                 high_watermark: float = 0.85) -> Dict[str, object]:
    """The reference: one real DES process per compiled client."""
    simulator, trunk, controller = _rig(capacity_bps, high_watermark)
    epoch_s = population.epoch_s
    session_s = session_epochs * epoch_s
    hold_s = session_s - RELEASE_SLACK_S
    contracts = {priority: QoSContract(stream_bps, priority,
                                       *PRIORITY_QOS[priority])
                 for priority in PRIORITY_ORDER}
    stats = {key: 0 for key in (
        "clients", "admitted_full", "admitted_degraded", "shed",
        "completed", "goodput_bits",
    )}

    def client(arrival_s: float, contract: QoSContract,
               label: str) -> Generator:
        if arrival_s > 0:
            yield Delay(arrival_s)
        try:
            reservation = controller.try_admit(contract, label)
        except AdmissionError:
            stats["shed"] += 1
            return
        if reservation.bps + 1e-9 >= stream_bps:
            stats["admitted_full"] += 1
        else:
            stats["admitted_degraded"] += 1
        yield Delay(hold_s)
        # Charge the full session's bits (the slack is an ordering
        # device, not lost service) exactly like the coupler does.
        bits = int(reservation.bps * session_s)
        trunk._account(bits)
        reservation.release()
        stats["completed"] += 1
        stats["goodput_bits"] += bits

    # Spawn in (epoch, priority class, index) order — the order the
    # coupler's batches hit the controller — so same-instant wakeups
    # dispatch identically.
    for tick in range(population.n_epochs):
        arrival = population.epoch_start(tick)
        for priority in PRIORITY_ORDER:
            count = int(population.by_priority[priority][tick])
            label = f"herd-{priority.name.lower()}"
            for index in range(count):
                stats["clients"] += 1
                simulator.spawn(client(arrival, contracts[priority], label),
                                name=f"{label}-e{tick}-{index}")

    # Mid-epoch occupancy samples, matching the coupler's tick count.
    n_samples = population.n_epochs + session_epochs
    occupancy: List[float] = []

    def sample(tick: int) -> None:
        occupancy.append(round(controller.utilization, 9))
        if tick + 1 >= n_samples:
            raise StopIteration

    simulator.schedule_every(epoch_s, sample,
                             start_at=WorldTime(epoch_s / 2))
    end = simulator.run()
    facts: Dict[str, object] = dict(stats)
    facts["edge_served"] = 0
    facts["preempted"] = 0
    facts["wasted_bits"] = 0
    facts["peak_utilization"] = round(max(occupancy, default=0.0), 4)
    facts["trunk_bits"] = trunk.total_bits
    facts["virtual_seconds"] = round(end.seconds, 6)
    facts["occupancy"] = tuple(occupancy)
    return facts


#: the facts that must match *exactly* between the two modes.
EXACT_KEYS = ("clients", "admitted_full", "admitted_degraded", "shed",
              "completed", "goodput_bits", "trunk_bits")


def compare(herd_facts: Dict[str, object], discrete_facts: Dict[str, object],
            occupancy_tolerance: float = 1e-9) -> List[str]:
    """Diff the two runs; returns human-readable mismatch lines."""
    mismatches: List[str] = []
    for key in EXACT_KEYS:
        if herd_facts[key] != discrete_facts[key]:
            mismatches.append(
                f"{key}: herd={herd_facts[key]} "
                f"discrete={discrete_facts[key]}")
    herd_curve = herd_facts["occupancy"]
    discrete_curve = discrete_facts["occupancy"]
    if len(herd_curve) != len(discrete_curve):
        mismatches.append(
            f"occupancy length: herd={len(herd_curve)} "
            f"discrete={len(discrete_curve)}")
    else:
        worst = max((abs(h - d) for h, d in zip(herd_curve, discrete_curve)),
                    default=0.0)
        if worst > occupancy_tolerance:
            mismatches.append(
                f"occupancy curve diverges by {worst:g} "
                f"(> {occupancy_tolerance:g})")
    return mismatches


def equivalence_report(population: HerdPopulation, *, capacity_bps: float,
                       stream_bps: float, session_epochs: int = 4,
                       high_watermark: float = 0.85) -> Dict[str, object]:
    """Run both modes and return the verdict (the CI probe's payload)."""
    herd_facts = run_herd(population, capacity_bps=capacity_bps,
                          stream_bps=stream_bps,
                          session_epochs=session_epochs,
                          high_watermark=high_watermark)
    discrete_facts = run_discrete(population, capacity_bps=capacity_bps,
                                  stream_bps=stream_bps,
                                  session_epochs=session_epochs,
                                  high_watermark=high_watermark)
    mismatches = compare(herd_facts, discrete_facts)
    return {
        "clients": herd_facts["clients"],
        "epochs": population.n_epochs,
        "herd": herd_facts,
        "discrete": discrete_facts,
        "mismatches": mismatches,
        "equivalent": not mismatches,
    }
