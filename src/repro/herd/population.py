"""Compiled herd populations: whole client crowds as per-epoch vectors.

A :class:`HerdPhase` declares one slice of aggregate demand — a Poisson
client arrival rate, the Zipf/viral skew of what those clients watch,
and the priority mix they sign up under.  :class:`HerdPopulation`
compiles a sequence of phases plus a seed into numpy arrays indexed by
epoch: total arrivals (one vectorized ``Generator.poisson`` over the
whole horizon), the per-priority split (vectorized binomial thinning)
and the per-epoch content-demand histogram (vectorized
``Generator.multinomial`` over :func:`repro.synth.arrivals.zipf_pmf`).

Everything random is drawn up front from one PCG64 generator seeded by
a SHA-256 of ``(seed, catalog, epoch)``, so a population — like the
discrete timelines it mirrors — is a pure function of its parameters:
byte-identical across runs (:meth:`HerdPopulation.sha256` is the
determinism fact) and independent of whatever the coupler later does
with it.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, replace
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.admission.controller import Priority
from repro.errors import SimulationError
from repro.synth.arrivals import zipf_pmf


@dataclass(frozen=True, slots=True)
class HerdPhase:
    """One declarative slice of aggregate herd demand.

    The fluid counterpart of :class:`repro.soak.phases.PhaseSpec`: it
    says how *fast* clients arrive and what they look like, never when
    any individual client lands — that is the population's job.  The
    priority mix is ``interactive_share`` INTERACTIVE,
    ``background_share`` BACKGROUND, remainder STANDARD.
    """

    name: str
    duration_s: float
    arrivals_per_s: float
    viral_share: float = 0.3
    interactive_share: float = 0.15
    background_share: float = 0.15

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise SimulationError(
                f"herd phase {self.name!r}: duration must be positive")
        if self.arrivals_per_s < 0:
            raise SimulationError(
                f"herd phase {self.name!r}: arrival rate must be >= 0")
        for field_name in ("viral_share", "interactive_share",
                           "background_share"):
            share = getattr(self, field_name)
            if not 0.0 <= share <= 1.0:
                raise SimulationError(
                    f"herd phase {self.name!r}: {field_name} "
                    f"must be in [0, 1]")
        if self.interactive_share + self.background_share > 1.0 + 1e-12:
            raise SimulationError(
                f"herd phase {self.name!r}: priority shares exceed 1")

    def scaled(self, factor: float) -> "HerdPhase":
        """A copy with the arrival rate scaled (same day, thinner)."""
        if factor <= 0:
            raise SimulationError(
                f"scale factor must be positive, got {factor}")
        return replace(self, arrivals_per_s=self.arrivals_per_s * factor)


#: the priority classes in admission order — the order cohorts of one
#: epoch hit the controller, and the order discrete reference clients
#: are spawned in.
PRIORITY_ORDER = (Priority.INTERACTIVE, Priority.STANDARD,
                  Priority.BACKGROUND)


def _seed_sequence(seed: int, catalog_size: int,
                   epoch_s: float) -> np.random.SeedSequence:
    """A platform-stable entropy pool: SHA-256 of the parameters."""
    tag = f"herd-population:{seed}:{catalog_size}:{epoch_s!r}"
    digest = hashlib.sha256(tag.encode()).digest()
    words = [int.from_bytes(digest[i:i + 4], "big") for i in range(0, 16, 4)]
    return np.random.SeedSequence(words)


class HerdPopulation:
    """All of a herd's randomness, compiled before the simulation starts.

    Public arrays, all indexed by epoch ``0..n_epochs-1``:

    * ``arrivals`` — total client arrivals per epoch (``int64``);
    * ``by_priority`` — ``{Priority: per-epoch counts}`` partitioning
      ``arrivals``;
    * ``demand`` — ``(n_epochs, catalog_size)`` content histograms
      partitioning ``arrivals`` by asset;
    * ``phase_names`` — which phase each epoch's start falls in.
    """

    def __init__(self, phases: Sequence[HerdPhase], seed: int = 0,
                 catalog_size: int = 16, epoch_s: float = 0.05) -> None:
        if not phases:
            raise SimulationError("a herd population needs >= 1 phase")
        if catalog_size < 2:
            raise SimulationError(
                f"herd catalog needs >= 2 assets, got {catalog_size}")
        if epoch_s <= 0:
            raise SimulationError(
                f"herd epoch must be positive, got {epoch_s}")
        self.phases: Tuple[HerdPhase, ...] = tuple(phases)
        self.seed = seed
        self.catalog_size = catalog_size
        self.epoch_s = epoch_s
        self.duration_s = sum(p.duration_s for p in self.phases)
        self.n_epochs = max(1, int(math.ceil(self.duration_s / epoch_s
                                             - 1e-9)))
        rng = np.random.default_rng(
            _seed_sequence(seed, catalog_size, epoch_s))

        # Which phase does each epoch's *start* fall in?
        phase_idx = np.empty(self.n_epochs, dtype=np.int64)
        boundary = 0.0
        start = 0
        for i, phase in enumerate(self.phases):
            boundary += phase.duration_s
            stop = min(self.n_epochs,
                       int(math.ceil(boundary / epoch_s - 1e-9)))
            phase_idx[start:stop] = i
            start = stop
        phase_idx[start:] = len(self.phases) - 1
        self.phase_names: Tuple[str, ...] = tuple(
            self.phases[i].name for i in phase_idx)

        def per_epoch(attr: str) -> np.ndarray:
            values = np.asarray([getattr(p, attr) for p in self.phases],
                                dtype=np.float64)
            return values[phase_idx]

        # One vectorized Poisson draw for the whole horizon.
        lam = per_epoch("arrivals_per_s") * epoch_s
        self.arrivals = rng.poisson(lam).astype(np.int64)

        # Priority split: binomial thinning, INTERACTIVE out of the
        # total, BACKGROUND out of the remainder (renormalized share).
        p_int = per_epoch("interactive_share")
        p_bg = per_epoch("background_share")
        n_int = rng.binomial(self.arrivals, p_int)
        rest = self.arrivals - n_int
        denom = 1.0 - p_int
        p_bg_rest = np.divide(p_bg, denom, out=np.zeros_like(p_bg),
                              where=denom > 1e-12)
        n_bg = rng.binomial(rest, np.clip(p_bg_rest, 0.0, 1.0))
        self.by_priority: Dict[Priority, np.ndarray] = {
            Priority.INTERACTIVE: n_int.astype(np.int64),
            Priority.STANDARD: (rest - n_bg).astype(np.int64),
            Priority.BACKGROUND: n_bg.astype(np.int64),
        }

        # Content demand: per-phase vectorized multinomial (the epochs
        # of one phase share a pmf; ``n`` is the whole arrival slice).
        self.demand = np.zeros((self.n_epochs, catalog_size),
                               dtype=np.int64)
        for i, phase in enumerate(self.phases):
            rows = np.nonzero(phase_idx == i)[0]
            if rows.size:
                pmf = zipf_pmf(catalog_size, phase.viral_share)
                self.demand[rows] = rng.multinomial(self.arrivals[rows],
                                                    pmf)

    # -- introspection -----------------------------------------------------
    @property
    def total_clients(self) -> int:
        return int(self.arrivals.sum())

    def epoch_start(self, epoch: int) -> float:
        return epoch * self.epoch_s

    def counts_at(self, epoch: int) -> Dict[Priority, int]:
        """This epoch's arrivals split by priority, in admission order."""
        return {priority: int(self.by_priority[priority][epoch])
                for priority in PRIORITY_ORDER}

    def sha256(self) -> str:
        """Digest of every compiled array — the determinism fact."""
        folded = hashlib.sha256()
        folded.update(f"{self.n_epochs}:{self.catalog_size}:"
                      f"{self.epoch_s!r}".encode())
        folded.update(self.arrivals.tobytes())
        for priority in PRIORITY_ORDER:
            folded.update(self.by_priority[priority].tobytes())
        folded.update(self.demand.tobytes())
        return folded.hexdigest()

    def __repr__(self) -> str:
        return (f"HerdPopulation({self.total_clients} clients over "
                f"{self.n_epochs} epochs x {self.epoch_s:g}s, "
                f"{len(self.phases)} phases, seed {self.seed})")
