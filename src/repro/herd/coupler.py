"""The herd coupler: folds aggregate demand into the real trunk.

:class:`HerdCoupler` is the bridge between a compiled
:class:`~repro.herd.population.HerdPopulation` and the discrete world.
It registers one :meth:`~repro.sim.Simulator.schedule_every` cadence
and, on every epoch tick, in this order:

1. **departures** — cohorts admitted ``session_epochs`` ticks ago
   release their aggregate reservations (or are counted preempted if a
   foreground interactive stream revoked them in between), and their
   delivered bits are charged to the trunk's traffic accounting;
2. **arrivals** — the epoch's client counts, optionally thinned by an
   :class:`~repro.cache.aggregate.AggregateHitModel` (edge hits never
   touch the trunk), are put to
   :meth:`~repro.admission.AdmissionController.admit_batch` per
   priority class, best class first.

Because admitted cohorts hold *real*
:class:`~repro.net.channel.Reservation` slices of the *real* channel,
contention is bidirectional: herd load makes foreground sessions queue,
degrade or preempt, and foreground reservations shrink what the herd
can admit.  One epoch costs O(priority classes) controller calls
regardless of how many thousand clients arrive — that is the whole
trick.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.admission.controller import (
    AdmissionController,
    QoSContract,
)
from repro.admission.workload import PRIORITY_QOS
from repro.errors import SimulationError
from repro.herd.population import PRIORITY_ORDER, HerdPopulation
from repro.net.channel import Reservation
from repro.sim import Simulator


def apportion(total: int, counts: List[int]) -> List[int]:
    """Split ``total`` across ``counts`` proportionally (largest remainder).

    Deterministic: exact quotas are floored, then the leftover units go
    to the largest fractional parts, first-listed winning ties.  Used
    to spread cache misses across the priority classes of one epoch.
    """
    pool = sum(counts)
    if total < 0 or total > pool:
        raise SimulationError(
            f"cannot apportion {total} across counts summing to {pool}")
    if total == pool:
        return list(counts)
    quotas = [total * c / pool if pool else 0.0 for c in counts]
    floors = [int(q) for q in quotas]
    shortfall = total - sum(floors)
    order = sorted(range(len(counts)),
                   key=lambda i: (-(quotas[i] - floors[i]), i))
    for i in order[:shortfall]:
        floors[i] += 1
    return floors


class _Cohort:
    """One admitted slice of an epoch, awaiting its departure tick."""

    __slots__ = ("reservation", "admitted_at", "released_at")

    def __init__(self, reservation: Reservation, admitted_at: float) -> None:
        self.reservation = reservation
        self.admitted_at = admitted_at
        self.released_at: Optional[float] = None


class HerdCoupler:
    """Advance a herd population per epoch against a live controller."""

    def __init__(self, simulator: Simulator,
                 controller: AdmissionController,
                 population: HerdPopulation, *,
                 stream_bps: float = 1_000_000.0,
                 session_epochs: int = 4,
                 cache_model=None,
                 label: str = "herd") -> None:
        if stream_bps <= 0:
            raise SimulationError(
                f"herd stream rate must be positive, got {stream_bps}")
        if session_epochs < 1:
            raise SimulationError(
                f"herd sessions must span >= 1 epoch, got {session_epochs}")
        self.simulator = simulator
        self.controller = controller
        self.population = population
        self.stream_bps = stream_bps
        self.session_epochs = session_epochs
        self.session_s = session_epochs * population.epoch_s
        self.cache_model = cache_model
        self.label = label
        self._contracts = {
            priority: QoSContract(stream_bps, priority,
                                  *PRIORITY_QOS[priority])
            for priority in PRIORITY_ORDER
        }
        self._labels = {
            priority: f"{label}-{priority.name.lower()}"
            for priority in PRIORITY_ORDER
        }
        #: departure tick -> cohorts whose sessions end there.
        self._departures: Dict[int, List[_Cohort]] = {}
        #: (epoch-end virtual time, trunk utilization) per tick — the
        #: curve the equivalence harness compares against the discrete
        #: reference.
        self.occupancy: List[Tuple[float, float]] = []
        self.stats: Dict[str, int] = {key: 0 for key in (
            "clients", "edge_served", "admitted_full", "admitted_degraded",
            "shed", "completed", "preempted", "goodput_bits",
            "wasted_bits",
        )}
        self._ticker = None
        metrics = simulator.obs.metrics
        self._m_clients = metrics.counter("herd.clients")
        self._m_edge = metrics.counter("herd.edge_served")
        self._m_completed = metrics.counter("herd.completed")
        self._m_preempted = metrics.counter("herd.preempted_clients")

    # -- lifecycle ---------------------------------------------------------
    def start(self):
        """Register the epoch cadence; returns the ticker handle."""
        if self._ticker is not None:
            raise SimulationError("herd coupler already started")
        self._ticker = self.simulator.schedule_every(
            self.population.epoch_s, self._on_epoch)
        return self._ticker

    # -- the epoch tick ----------------------------------------------------
    def _on_epoch(self, tick: int) -> None:
        self._depart(tick)
        done = tick >= self.population.n_epochs
        if not done:
            self._arrive(tick)
        self.occupancy.append((round(self.simulator.now.seconds, 9),
                               self.controller.utilization))
        # Fixed horizon: the last possible departure is at tick
        # ``n_epochs - 1 + session_epochs`` — run exactly through it so
        # the occupancy curve always has ``n_epochs + session_epochs``
        # points, shed-everything tails included.
        if tick + 1 >= self.population.n_epochs + self.session_epochs:
            raise StopIteration

    def _depart(self, tick: int) -> None:
        for cohort in self._departures.pop(tick, ()):
            reservation = cohort.reservation
            clients = reservation.cohort_clients
            if reservation.preempted:
                # A foreground interactive stream revoked this cohort
                # mid-session; everything it sent up to that point was
                # wasted work (the discrete scoring rule).
                held_s = ((cohort.released_at or self.simulator.now.seconds)
                          - cohort.admitted_at)
                bits = int(reservation.bps * held_s)
                self.controller.channel._account(bits)
                self.stats["preempted"] += clients
                self.stats["wasted_bits"] += bits
                self._m_preempted.inc(clients)
                continue
            bits = int(reservation.bps * self.session_s)
            self.controller.channel._account(bits)
            reservation.release()
            self.stats["completed"] += clients
            self.stats["goodput_bits"] += bits
            self._m_completed.inc(clients)

    def _arrive(self, tick: int) -> None:
        population = self.population
        total = int(population.arrivals[tick])
        if not total:
            return
        self.stats["clients"] += total
        self._m_clients.inc(total)
        counts = [int(population.by_priority[p][tick])
                  for p in PRIORITY_ORDER]
        if self.cache_model is not None:
            hits, misses = self.cache_model.account(population.demand[tick])
            if hits:
                # Edge hits are served locally at full rate; they never
                # reach the trunk.  Spread the misses across the
                # priority classes proportionally (deterministic).
                self.stats["edge_served"] += hits
                self._m_edge.inc(hits)
                self.stats["goodput_bits"] += int(
                    hits * self.stream_bps * self.session_s)
                counts = apportion(misses, counts)
        now = self.simulator.now.seconds
        depart_tick = tick + self.session_epochs
        for priority, count in zip(PRIORITY_ORDER, counts):
            if not count:
                continue
            verdict = self.controller.admit_batch(
                self._contracts[priority], count,
                label=self._labels[priority])
            self.stats["admitted_full"] += verdict.admitted_full
            self.stats["admitted_degraded"] += verdict.admitted_degraded
            self.stats["shed"] += verdict.shed
            for reservation in verdict.reservations:
                cohort = _Cohort(reservation, now)
                self._watch_release(cohort)
                self._departures.setdefault(depart_tick, []).append(cohort)

    def _watch_release(self, cohort: _Cohort) -> None:
        """Chain the release hook to timestamp preemption-era releases.

        The controller owns ``on_release`` (queue re-pump); the coupler
        needs the release *time* to charge a preempted cohort for the
        bits it sent before revocation.  Chaining keeps both.
        """
        inner = cohort.reservation.on_release

        def hook(reservation: Reservation, _inner=inner,
                 _cohort=cohort) -> None:
            _cohort.released_at = self.simulator.now.seconds
            if _inner is not None:
                _inner(reservation)

        cohort.reservation.on_release = hook

    # -- facts -------------------------------------------------------------
    @property
    def admitted(self) -> int:
        return self.stats["admitted_full"] + self.stats["admitted_degraded"]

    def facts(self) -> Dict[str, object]:
        stats = self.stats
        return {
            "clients": stats["clients"],
            "edge_served": stats["edge_served"],
            "admitted_full": stats["admitted_full"],
            "admitted_degraded": stats["admitted_degraded"],
            "shed": stats["shed"],
            "completed": stats["completed"],
            "preempted": stats["preempted"],
            "goodput_bits": stats["goodput_bits"],
            "wasted_bits": stats["wasted_bits"],
            "peak_utilization": round(
                max((u for _, u in self.occupancy), default=0.0), 4),
        }
