"""``python -m repro`` — a one-minute tour of the system.

Prints the version, the Table 1 activity catalog from the live classes,
the Fig. 1 timeline, and runs the quickstart stream, so a fresh checkout
can be sanity-checked with a single command.
"""

from __future__ import annotations

import repro
from repro import AVDatabaseSystem, AttributeSpec, ClassDef, MagneticDisk, Q, VideoValue
from repro.activities.library import ActivityCatalog
from repro.synth import fig1_timeline, moving_scene


def main() -> None:
    """Print the tour: version, Table 1, Fig. 1, a quickstart stream."""
    print(f"repro {repro.__version__} — an AV database system")
    print("(Gibbs, Breiteneder & Tsichritzis, ICDE 1993)\n")

    print("Table 1 — the activity catalog:\n")
    print(ActivityCatalog.table(include_audio=True))

    print("\nFig. 1 — a Newscast.clip timeline:\n")
    print(fig1_timeline().render_ascii(width=50))

    print("\nquickstart stream:")
    system = AVDatabaseSystem()
    system.add_storage(MagneticDisk(system.simulator, "disk0"))
    system.db.define_class(ClassDef("Clip", attributes=[
        AttributeSpec("title", str, indexed=True),
        AttributeSpec("video", VideoValue),
    ]))
    video = moving_scene(30, 64, 48)
    system.store_value(video, "disk0")
    system.db.insert("Clip", title="demo", video=video)
    session = system.open_session("tour")
    ref = session.select_one("Clip", Q.eq("title", "demo"))
    source = session.new_db_source((ref, "video"))
    window = session.new_video_window("320x240x8@30")
    stream = session.connect(source, window)
    stream.start()
    end = session.run()
    print(f"  presented {len(window.presented)} frames in "
          f"{end.seconds:.2f}s of virtual time; "
          f"{stream.bits_transferred // 8:,} bytes over the channel")
    print("\nsee README.md, examples/ and `pytest benchmarks/ --benchmark-only`")


if __name__ == "__main__":
    main()
