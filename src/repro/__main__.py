"""``python -m repro`` — a one-minute tour, plus observability commands.

With no arguments, prints the version, the Table 1 activity catalog from
the live classes, the Fig. 1 timeline, and runs the quickstart stream,
so a fresh checkout can be sanity-checked with a single command.

``python -m repro trace <scenario>`` runs a named scenario with tracing
enabled and writes a Chrome ``trace_event`` file (load it in Perfetto or
``chrome://tracing``), a JSONL event log, and a plain-text metrics
summary.

``python -m repro faults <scenario>`` runs a named fault-injection
scenario (seeded, deterministic) and prints delivered-vs-negotiated QoS
plus the ``faults.*`` counters; ``--compare`` runs it both with and
without recovery under the identical fault schedule.

``python -m repro overload <scenario>`` runs a named multi-client
overload scenario through the admission controller and prints goodput,
shedding, preemption and breaker facts plus a deterministic summary
line; ``--no-admission`` runs the uncontrolled baseline and
``--compare`` runs both regimes under the identical offered load.

``python -m repro cluster <scenario>`` runs a named scale-out storage
scenario (read storm, node-kill failover, rebalance-after-join) against
a simulated N-node cluster and prints throughput/failover/repair facts
plus a deterministic summary line.

``python -m repro cache <scenario>`` runs a named cache-tier scenario
(Zipf flash crowd, version churn) through the two-level block cache
hierarchy in front of the cluster and prints goodput/hit-ratio facts
plus a deterministic summary line; ``--no-cache`` runs the cache-less
baseline and ``--compare`` runs both under the identical workload.

``python -m repro watch <scenario>`` runs a named supervision scenario
under the ``repro.watch`` layer (SLO engine + invariant monitor +
flight recorder) and prints error-budget burn, breach facts and a
deterministic summary line; ``--bundle-dir`` writes postmortem bundles.

``python -m repro herd <scenario>`` runs a hybrid herd scenario:
foreground interactive sessions as full discrete processes, plus a
vectorized client herd (seeded Zipf popularity + Poisson arrivals)
advanced per epoch through the same admission controller and edge-cache
model; ``--clients N`` scales the crowd and ``--compare-discrete`` runs
the scaled-down herd-vs-discrete equivalence probe alongside.

``python -m repro soak day`` runs the composed broadcast-day soak
scenario (live newscast + VOD Zipf crowd + editing batches + overnight
maintenance) under seeded chaos with the full watch stack supervising;
``python -m repro soak search`` sweeps chaos seeds for a failure and
delta-debugs the fault schedule to a minimal, replayable core.

``python -m repro query <scenario>`` runs a named annotation-query
scenario: loads a seeded corpus into the typed annotation store, runs
its temporal-query battery through the cost-based planner, cross-checks
index-backed vs scan execution row-for-row, and prints the facts plus a
deterministic summary line; ``--mode index|scan`` forces one path.

``python -m repro explain <scenario> --session <id>`` reruns a scenario
with the decision log armed and reconstructs the causal decision chain
for one session (admitted -> degraded -> preempted -> failed over ...);
without ``--session`` it lists every subject and its verdict history.

``python -m repro profile <scenario>`` runs any named scenario (from
the trace, fault, overload, cluster, or watch registry) under cProfile
and prints the top-N hotspot report — the entry point for finding the
next optimization target (see DESIGN.md "Performance").
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import repro
from repro import AVDatabaseSystem, AttributeSpec, ClassDef, MagneticDisk, Q, VideoValue
from repro.activities.library import ActivityCatalog
from repro.synth import fig1_timeline, moving_scene


def _lookup_scenario(kind: str, name: str, registry,
                     allow_all: bool = False) -> list[str] | None:
    """Resolve a scenario argument to the list of names to run.

    Returns None (after printing a consistent ``pick one of`` listing to
    stderr) when the name is unknown — callers translate that to exit
    code 2.  With ``allow_all`` the literal name ``all`` expands to
    every scenario in the registry, sorted.
    """
    if allow_all and name == "all":
        return sorted(registry)
    if name in registry:
        return [name]
    options = ", ".join(sorted(registry) + (["all"] if allow_all else []))
    print(f"unknown {kind} scenario {name!r}; pick one of: {options}",
          file=sys.stderr)
    return None


def tour() -> None:
    """Print the tour: version, Table 1, Fig. 1, a quickstart stream."""
    print(f"repro {repro.__version__} — an AV database system")
    print("(Gibbs, Breiteneder & Tsichritzis, ICDE 1993)\n")

    print("Table 1 — the activity catalog:\n")
    print(ActivityCatalog.table(include_audio=True))

    print("\nFig. 1 — a Newscast.clip timeline:\n")
    print(fig1_timeline().render_ascii(width=50))

    print("\nquickstart stream:")
    system = AVDatabaseSystem()
    system.add_storage(MagneticDisk(system.simulator, "disk0"))
    system.db.define_class(ClassDef("Clip", attributes=[
        AttributeSpec("title", str, indexed=True),
        AttributeSpec("video", VideoValue),
    ]))
    video = moving_scene(30, 64, 48)
    system.store_value(video, "disk0")
    system.db.insert("Clip", title="demo", video=video)
    session = system.open_session("tour")
    ref = session.select_one("Clip", Q.eq("title", "demo"))
    source = session.new_db_source((ref, "video"))
    window = session.new_video_window("320x240x8@30")
    stream = session.connect(source, window)
    stream.start()
    end = session.run()
    print(f"  presented {len(window.presented)} frames in "
          f"{end.seconds:.2f}s of virtual time; "
          f"{stream.bits_transferred // 8:,} bytes over the channel")
    print("\nsee README.md, examples/ and `pytest benchmarks/ --benchmark-only`")


def trace(scenario_name: str, out_dir: Path, canonical: bool = False) -> int:
    """Run a scenario under a tracing scope and export trace + summary."""
    from repro.obs import canonical_trace_bytes, current, scoped
    from repro.obs.export import write_chrome_trace, write_jsonl, write_summary
    from repro.obs.scenarios import SCENARIOS

    names = _lookup_scenario("trace", scenario_name, SCENARIOS)
    if names is None:
        return 2
    scenario = SCENARIOS[names[0]]

    out_dir.mkdir(parents=True, exist_ok=True)
    with scoped(tracing=True):
        facts = scenario()
        obs = current()
        trace_path = out_dir / f"{scenario_name}.trace.json"
        jsonl_path = out_dir / f"{scenario_name}.events.jsonl"
        summary_path = out_dir / f"{scenario_name}.summary.txt"
        write_chrome_trace(obs.tracer, trace_path, obs.metrics)
        write_jsonl(obs.tracer, jsonl_path)
        write_summary(obs.metrics, summary_path, obs.tracer,
                      title=f"scenario: {scenario_name}")
        canonical_path = None
        if canonical:
            # Wall-clock stamps stripped, keys sorted: two runs of the
            # same scenario produce byte-identical files, which is what
            # the CI determinism job diffs.
            canonical_path = out_dir / f"{scenario_name}.canonical.json"
            canonical_path.write_bytes(
                canonical_trace_bytes(obs.tracer, obs.metrics))
        events = len(obs.tracer.events)

    print(f"scenario {scenario_name!r}:")
    for key, value in facts.items():
        print(f"  {key} = {value}")
    print(f"{events} trace events")
    print(f"wrote {trace_path}  (open in Perfetto / chrome://tracing)")
    print(f"wrote {jsonl_path}")
    print(f"wrote {summary_path}")
    if canonical_path is not None:
        print(f"wrote {canonical_path}")
    return 0


def faults(scenario_name: str, seed: int, no_recovery: bool,
           compare: bool) -> int:
    """Run fault scenarios and print delivered-vs-negotiated QoS facts."""
    from repro.faults import SCENARIOS
    from repro.obs import scoped

    names = _lookup_scenario("fault", scenario_name, SCENARIOS,
                             allow_all=True)
    if names is None:
        return 2

    for name in names:
        modes = (True, False) if compare else (not no_recovery,)
        for recover in modes:
            # A fresh observability scope per run keeps counters from
            # bleeding between scenarios in one process.
            with scoped():
                facts = SCENARIOS[name](seed=seed, recover=recover)
            label = "recovery" if recover else "no recovery"
            print(f"scenario {name!r} ({label}, seed {seed}):")
            for key, value in facts.items():
                print(f"  {key} = {value}")
    return 0


def overload(scenario_name: str, seed: int, no_admission: bool,
             compare: bool) -> int:
    """Run overload scenarios and print admission-vs-baseline facts."""
    from repro.admission import SCENARIOS, summary_line
    from repro.obs import scoped

    names = _lookup_scenario("overload", scenario_name, SCENARIOS,
                             allow_all=True)
    if names is None:
        return 2

    for name in names:
        modes = (True, False) if compare else (not no_admission,)
        for admission in modes:
            # A fresh observability scope per run keeps admission.*
            # counters from bleeding between runs in one process.
            with scoped():
                facts = SCENARIOS[name](seed=seed, admission=admission)
            label = "admission" if admission else "no admission"
            print(f"scenario {name!r} ({label}, seed {seed}):")
            for key, value in facts.items():
                print(f"  {key} = {value}")
            print(summary_line(name, facts))
    return 0


def cluster(scenario_name: str, seed: int, nodes: int | None) -> int:
    """Run scale-out cluster scenarios and print scaling/failover facts."""
    from repro.cluster import SCENARIOS, summary_line
    from repro.obs import scoped

    names = _lookup_scenario("cluster", scenario_name, SCENARIOS,
                             allow_all=True)
    if names is None:
        return 2

    for name in names:
        # A fresh observability scope per run keeps cluster.* counters
        # from bleeding between scenarios in one process.
        with scoped():
            if nodes is None:
                facts = SCENARIOS[name](seed=seed)
            else:
                facts = SCENARIOS[name](seed=seed, nodes=nodes)
        print(f"scenario {name!r} (seed {seed}):")
        for key, value in facts.items():
            print(f"  {key} = {value}")
        print(summary_line(name, facts))
    return 0


def cache(scenario_name: str, seed: int, no_cache: bool, compare: bool,
          policy: str) -> int:
    """Run cache-tier scenarios and print goodput/hit-ratio facts."""
    import inspect

    from repro.cache import SCENARIOS, summary_line
    from repro.obs import scoped

    names = _lookup_scenario("cache", scenario_name, SCENARIOS,
                             allow_all=True)
    if names is None:
        return 2

    for name in names:
        fn = SCENARIOS[name]
        takes_cached = "cached" in inspect.signature(fn).parameters
        if (no_cache or compare) and not takes_cached:
            print(f"cache scenario {name!r} has no cache-less baseline; "
                  f"drop --no-cache/--compare", file=sys.stderr)
            return 2
        modes = (True, False) if compare else (not no_cache,)
        for cached in modes:
            # A fresh observability scope per run keeps cache.* counters
            # from bleeding between runs in one process.
            with scoped():
                if takes_cached:
                    facts = fn(seed=seed, cached=cached, policy=policy)
                else:
                    facts = fn(seed=seed, policy=policy)
            label = f"cached, {policy}" if cached else "no cache"
            print(f"scenario {name!r} ({label}, seed {seed}):")
            for key, value in facts.items():
                print(f"  {key} = {value}")
            print(summary_line(name, facts))
    return 0


def watch(scenario_name: str, seed: int, bundle_dir: Path | None) -> int:
    """Run supervised scenarios and print SLO/invariant facts."""
    from repro.obs import scoped
    from repro.watch import SCENARIOS, summary_line

    names = _lookup_scenario("watch", scenario_name, SCENARIOS,
                             allow_all=True)
    if names is None:
        return 2

    for name in names:
        # A fresh observability scope per run keeps decisions and
        # counters from bleeding between scenarios in one process.
        with scoped():
            facts = SCENARIOS[name](
                seed=seed,
                bundle_dir=str(bundle_dir) if bundle_dir else None)
        print(f"scenario {name!r} (seed {seed}):")
        for key, value in facts.items():
            print(f"  {key} = {value}")
        print(summary_line(name, facts))
    return 0


def herd(scenario_name: str, seed: int, clients: int | None,
         compare_discrete: bool) -> int:
    """Run hybrid herd scenarios and print crowd/foreground facts."""
    from repro.herd import SCENARIOS, summary_line
    from repro.obs import scoped

    names = _lookup_scenario("herd", scenario_name, SCENARIOS,
                             allow_all=True)
    if names is None:
        return 2

    exit_code = 0
    for name in names:
        # A fresh observability scope per run keeps herd.* counters
        # from bleeding between scenarios in one process.
        with scoped():
            facts = SCENARIOS[name](seed=seed, clients=clients,
                                    compare_discrete=compare_discrete)
        print(f"scenario {name!r} (seed {seed}):")
        for key, value in facts.items():
            print(f"  {key} = {value}")
        print(summary_line(name, facts))
        if compare_discrete and not facts.get("probe_equivalent", False):
            # The herd mode diverging from its discrete reference is a
            # correctness failure, not a tuning matter — make it a
            # non-zero exit so CI can gate on it directly.
            exit_code = 1
    return exit_code


def query(scenario_name: str, seed: int, mode: str) -> int:
    """Run annotation-query scenarios and print planner/agreement facts."""
    from repro.annotations import SCENARIOS, summary_line
    from repro.obs import scoped

    names = _lookup_scenario("query", scenario_name, SCENARIOS,
                             allow_all=True)
    if names is None:
        return 2

    exit_code = 0
    for name in names:
        # A fresh observability scope per run keeps annotations.*
        # counters and plan decisions from bleeding between scenarios.
        with scoped(tracing=False):
            facts = SCENARIOS[name](seed=seed, mode=mode)
        print(f"scenario {name!r} (seed {seed}, mode {mode}):")
        for key, value in facts.items():
            print(f"  {key} = {value}")
        print(summary_line(name, facts))
        if not facts.get("all_agree", False):
            # Index and scan paths disagreeing is a correctness failure;
            # make it a non-zero exit so CI gates on it directly.
            exit_code = 1
    return exit_code


def soak(args) -> int:
    """Run the broadcast-day soak, or the chaos search over it."""
    from repro.obs import scoped
    from repro.soak import chaos_search, day, default_day, summary_line
    from repro.soak.search import _failing

    specs = None
    if args.phases:
        by_name = {spec.name: spec for spec in default_day()}
        wanted = [n.strip() for n in args.phases.split(",") if n.strip()]
        unknown = [n for n in wanted if n not in by_name]
        if unknown:
            print(f"unknown phase(s) {', '.join(unknown)}; "
                  f"pick from: {', '.join(by_name)}", file=sys.stderr)
            return 2
        specs = tuple(by_name[n] for n in wanted)

    if args.action == "day":
        # A fresh observability scope per run keeps soak.* counters
        # from bleeding between runs in one process.
        with scoped(tracing=False):
            facts = day(seed=args.seed, phases=specs, scale=args.scale,
                        chaos=not args.no_chaos, chaos_seed=args.chaos_seed,
                        profile=args.profile, plant_leak=args.plant_leak,
                        bundle_dir=str(args.bundle_dir)
                        if args.bundle_dir else None)
        print(f"soak day (seed {args.seed}, "
              f"{'no chaos' if args.no_chaos else args.profile}):")
        for key, value in facts.items():
            print(f"  {key} = {value}")
        print(summary_line("day", facts))
        # Non-zero exit on the failure signature so CI can gate on the
        # clean-day acceptance criterion directly.
        return 1 if _failing(facts) else 0

    seeds = ([args.chaos_seed] if args.chaos_seed is not None
             else range(args.chaos_seeds))
    report = chaos_search(chaos_seeds=seeds, seed=args.seed, phases=specs,
                          scale=args.scale, profile=args.profile,
                          plant_leak=args.plant_leak,
                          out_dir=str(args.out) if args.out else None)
    print(f"soak search (workload seed {args.seed}, profile {args.profile}, "
          f"{report['seeds_tried']} chaos seed(s) tried):")
    for key, value in report.items():
        print(f"  {key} = {value}")
    if report["failing_seed"] == "none":
        print("no failing chaos seed found")
        return 0
    # A failure that the minimized schedule does not reproduce means
    # the reduction went wrong — surface that as a non-zero exit.
    return 0 if report["replay_failing"] else 1


def explain(scenario_name: str, session: str | None, seed: int) -> int:
    """Rerun a scenario and reconstruct one session's decision chain.

    The scenario may come from any decision-emitting registry; the
    watch registry is preferred on a name collision, then overload,
    cluster, and fault scenarios.
    """
    from repro.admission import SCENARIOS as OVERLOAD_SCENARIOS
    from repro.cluster import SCENARIOS as CLUSTER_SCENARIOS
    from repro.faults import SCENARIOS as FAULT_SCENARIOS
    from repro.obs import current, scoped
    from repro.watch import SCENARIOS as WATCH_SCENARIOS
    from repro.watch.explain import explain_report, subjects_summary

    registry: dict = {}
    for scenarios in (FAULT_SCENARIOS, CLUSTER_SCENARIOS,
                      OVERLOAD_SCENARIOS, WATCH_SCENARIOS):
        registry.update(scenarios)  # later registries win: watch first

    names = _lookup_scenario("explain", scenario_name, registry)
    if names is None:
        return 2

    with scoped():
        registry[names[0]](seed=seed)
        decisions = current().decisions

    print(f"scenario {names[0]!r} (seed {seed}): "
          f"{len(decisions)} decision events")
    if session is not None:
        print(explain_report(decisions, session))
    else:
        print("subjects (pass --session <id> for the full chain):")
        for line in subjects_summary(decisions):
            print(f"  {line}")
    return 0


def profile(scenario_name: str, top: int, sort: str,
            out: Path | None) -> int:
    """Profile a scenario and print (or write) the hotspot report."""
    from repro.perf import available_scenarios, profile_scenario

    try:
        report, facts = profile_scenario(scenario_name, top=top, sort=sort)
    except KeyError:
        names = ", ".join(sorted(available_scenarios()))
        print(f"unknown scenario {scenario_name!r}; pick one of: {names}",
              file=sys.stderr)
        return 2
    print(report, end="")
    if isinstance(facts, dict):
        print("scenario facts:")
        for key, value in facts.items():
            print(f"  {key} = {value}")
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report)
        print(f"wrote {out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="AV database reproduction: tour and trace runner.",
    )
    sub = parser.add_subparsers(dest="command")
    trace_parser = sub.add_parser(
        "trace", help="run a scenario with tracing and export the results"
    )
    trace_parser.add_argument("scenario", nargs="?", default="quickstart",
                              help="scenario name (default: quickstart)")
    trace_parser.add_argument("--out", type=Path, default=Path("traces"),
                              help="output directory (default: ./traces)")
    trace_parser.add_argument("--canonical", action="store_true",
                              help="also write the canonical (wall-clock-"
                                   "stripped, rerun-diffable) trace export")
    faults_parser = sub.add_parser(
        "faults", help="run a seeded fault-injection scenario and report QoS"
    )
    faults_parser.add_argument("scenario", nargs="?", default="disk-outage",
                               help="fault scenario name, or 'all' "
                                    "(default: disk-outage)")
    faults_parser.add_argument("--seed", type=int, default=0,
                               help="fault plan seed (default: 0)")
    faults_parser.add_argument("--no-recovery", action="store_true",
                               help="run without retry/degradation defenses")
    faults_parser.add_argument("--compare", action="store_true",
                               help="run both with and without recovery")
    overload_parser = sub.add_parser(
        "overload", help="run a seeded multi-client overload scenario "
                         "through the admission controller"
    )
    overload_parser.add_argument("scenario", nargs="?", default="surge",
                                 help="overload scenario name, or 'all' "
                                      "(default: surge)")
    overload_parser.add_argument("--seed", type=int, default=0,
                                 help="workload seed (default: 0)")
    overload_parser.add_argument("--no-admission", action="store_true",
                                 help="run the uncontrolled baseline")
    overload_parser.add_argument("--compare", action="store_true",
                                 help="run both with and without admission")
    cluster_parser = sub.add_parser(
        "cluster", help="run a seeded scale-out storage cluster scenario"
    )
    cluster_parser.add_argument("scenario", nargs="?", default="node-kill",
                                help="cluster scenario name, or 'all' "
                                     "(default: node-kill)")
    cluster_parser.add_argument("--seed", type=int, default=0,
                                help="workload seed (default: 0)")
    cluster_parser.add_argument("--nodes", type=int, default=None,
                                help="override the scenario's node count")
    cache_parser = sub.add_parser(
        "cache", help="run a seeded cache-tier scenario against the cluster"
    )
    cache_parser.add_argument("scenario", nargs="?", default="zipf-crowd",
                              help="cache scenario name, or 'all' "
                                   "(default: zipf-crowd)")
    cache_parser.add_argument("--seed", type=int, default=0,
                              help="workload seed (default: 0)")
    cache_parser.add_argument("--no-cache", action="store_true",
                              help="run the cache-less baseline")
    cache_parser.add_argument("--compare", action="store_true",
                              help="run both with and without the cache tier")
    cache_parser.add_argument("--policy", default="lru",
                              choices=("lru", "cost-aware"),
                              help="eviction policy (default: lru)")
    watch_parser = sub.add_parser(
        "watch", help="run a scenario under the SLO/invariant watchdog"
    )
    watch_parser.add_argument("scenario", nargs="?", default="leak",
                              help="watch scenario name, or 'all' "
                                   "(default: leak)")
    watch_parser.add_argument("--seed", type=int, default=0,
                              help="scenario seed (default: 0)")
    watch_parser.add_argument("--bundle-dir", type=Path, default=None,
                              help="write postmortem bundles here")
    herd_parser = sub.add_parser(
        "herd", help="run a hybrid vectorized-herd scenario "
                     "(foreground sessions + fluid client crowds)"
    )
    herd_parser.add_argument("scenario", nargs="?", default="surge",
                             help="herd scenario name, or 'all' "
                                  "(default: surge)")
    herd_parser.add_argument("--seed", type=int, default=0,
                             help="population seed (default: 0)")
    herd_parser.add_argument("--clients", type=int, default=None,
                             help="expected crowd size (default: the "
                                  "scenario's own)")
    herd_parser.add_argument("--compare-discrete", action="store_true",
                             help="also run the scaled-down herd-vs-"
                                  "discrete equivalence probe")
    soak_parser = sub.add_parser(
        "soak", help="run the broadcast-day soak or the chaos search"
    )
    soak_parser.add_argument("action", nargs="?", default="day",
                             choices=("day", "search"),
                             help="'day' runs one soak; 'search' sweeps "
                                  "chaos seeds and minimizes the first "
                                  "failure (default: day)")
    soak_parser.add_argument("--seed", type=int, default=0,
                             help="workload seed (default: 0)")
    soak_parser.add_argument("--scale", type=float, default=1.0,
                             help="scale session/job counts by this factor "
                                  "(default: 1.0)")
    soak_parser.add_argument("--phases", default=None,
                             help="comma-separated phase names to run "
                                  "(default: the full broadcast day)")
    soak_parser.add_argument("--profile", default="gentle",
                             choices=("gentle", "aggressive"),
                             help="chaos profile (default: gentle)")
    soak_parser.add_argument("--no-chaos", action="store_true",
                             help="run the fault-free baseline day")
    soak_parser.add_argument("--chaos-seed", type=int, default=None,
                             help="pin one chaos seed (day: defaults to the "
                                  "workload seed; search: sweep just this)")
    soak_parser.add_argument("--chaos-seeds", type=int, default=32,
                             help="search: sweep chaos seeds 0..N-1 "
                                  "(default: 32)")
    soak_parser.add_argument("--plant-leak", action="store_true",
                             help="arm the planted leak latent bug "
                                  "(for exercising the search)")
    soak_parser.add_argument("--bundle-dir", type=Path, default=None,
                             help="day: write postmortem bundles here")
    soak_parser.add_argument("--out", type=Path, default=None,
                             help="search: write minimized plan, report "
                                  "and replay bundles here")
    query_parser = sub.add_parser(
        "query", help="run an annotation-store temporal-query scenario"
    )
    query_parser.add_argument("scenario", nargs="?", default="speech",
                              help="query scenario name, or 'all' "
                                   "(default: speech)")
    query_parser.add_argument("--seed", type=int, default=0,
                              help="corpus seed (default: 0)")
    query_parser.add_argument("--mode", default="auto",
                              choices=("auto", "index", "scan"),
                              help="planner mode (default: auto)")
    explain_parser = sub.add_parser(
        "explain", help="reconstruct a session's causal decision chain"
    )
    explain_parser.add_argument("scenario", nargs="?", default="node-kill",
                                help="any decision-emitting scenario "
                                     "(default: node-kill)")
    explain_parser.add_argument("--session", default=None,
                                help="session/stream label to explain "
                                     "(omit to list subjects)")
    explain_parser.add_argument("--seed", type=int, default=0,
                                help="scenario seed (default: 0)")
    profile_parser = sub.add_parser(
        "profile", help="run a scenario under cProfile and report hotspots"
    )
    profile_parser.add_argument("scenario", nargs="?", default="quickstart",
                                help="any trace/fault/overload scenario "
                                     "name (default: quickstart)")
    profile_parser.add_argument("--top", type=int, default=15,
                                help="number of hotspots to show (default: 15)")
    profile_parser.add_argument("--sort", default="cumulative",
                                choices=("cumulative", "tottime", "ncalls"),
                                help="pstats sort key (default: cumulative)")
    profile_parser.add_argument("--out", type=Path, default=None,
                                help="also write the report to this file")
    args = parser.parse_args(argv)
    if args.command == "profile":
        return profile(args.scenario, args.top, args.sort, args.out)
    if args.command == "trace":
        return trace(args.scenario, args.out, args.canonical)
    if args.command == "cluster":
        return cluster(args.scenario, args.seed, args.nodes)
    if args.command == "cache":
        return cache(args.scenario, args.seed, args.no_cache, args.compare,
                     args.policy)
    if args.command == "watch":
        return watch(args.scenario, args.seed, args.bundle_dir)
    if args.command == "herd":
        return herd(args.scenario, args.seed, args.clients,
                    args.compare_discrete)
    if args.command == "soak":
        return soak(args)
    if args.command == "query":
        return query(args.scenario, args.seed, args.mode)
    if args.command == "explain":
        return explain(args.scenario, args.session, args.seed)
    if args.command == "faults":
        return faults(args.scenario, args.seed, args.no_recovery, args.compare)
    if args.command == "overload":
        return overload(args.scenario, args.seed, args.no_admission,
                        args.compare)
    tour()
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Downstream consumer (e.g. ``| grep -q``) closed the pipe
        # early; that's its prerogative, not a scenario failure.  Drop
        # stdout so the interpreter's shutdown flush doesn't raise too.
        import os
        import sys
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(0)
