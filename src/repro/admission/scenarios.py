"""Named overload scenarios for ``python -m repro overload``.

Each scenario builds a workload, runs it to completion in virtual time,
and returns a dict of headline facts.  Every scenario takes ``seed`` and
``admission``: with ``admission=False`` the same offered load hits the
system with the admission layer disabled, which is the baseline the
overload benchmark's goodput claims are measured against
(``bench_overload.py``).

Scenarios are deterministic: same seed, same facts, every run.

* ``surge`` — the headline experiment: 60 Poisson clients offering 10x
  the trunk's capacity (see :class:`~repro.admission.OverloadWorkload`).
* ``priority-mix`` — scripted arrivals showing background preemption:
  background streams fill the trunk, then interactive requests arrive
  and (with admission) preempt them instead of timing out.
* ``device-outage`` — the circuit breaker against a scheduler outage
  from :mod:`repro.faults`: closed -> open -> half-open probes ->
  closed, with fail-fast calls while open and nothing stranded.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.admission.controller import AdmissionController, Priority, QoSContract
from repro.admission.workload import OverloadWorkload
from repro.errors import (
    AdmissionError,
    AdmissionTimeoutError,
    CircuitOpenError,
    FaultError,
    PreemptedError,
)
from repro.net.channel import Channel
from repro.sim import Delay, Simulator


def surge(seed: int = 0, admission: bool = True) -> Dict[str, object]:
    """10x overload: 60 Poisson clients against a 5-stream trunk."""
    return OverloadWorkload(seed=seed, admission=admission).run()


def priority_mix(seed: int = 0, admission: bool = True) -> Dict[str, object]:
    """Interactive preemption of background streams.

    Three background streams fill a 3-stream trunk; half a second later
    two interactive requests arrive with 0.3 s of patience, and one
    standard request waits with a longer deadline.  With ``admission``
    the controller preempts the two newest background streams so the
    interactive work starts immediately at full rate; with preemption
    disabled (the baseline) the interactive requests queue behind 2 s of
    background streaming and expire.

    ``seed`` is accepted for CLI symmetry; the scenario is scripted.
    """
    del seed  # arrivals are scripted, not drawn
    sim = Simulator()
    stream_bps, element_bits, elements = 2_000_000.0, 200_000, 20
    trunk = Channel(sim, capacity_bps=3 * stream_bps, latency_s=0.0,
                    name="trunk")
    controller = AdmissionController(sim, trunk, max_queue=8,
                                     preempt=admission)
    stats = {
        "background_admitted": 0, "background_preempted": 0,
        "interactive_admitted": 0, "interactive_timeouts": 0,
        "interactive_violations": 0, "standard_admitted": 0,
        "completed": 0,
    }

    def client(name: str, arrival_s: float, priority: Priority,
               min_fraction: float, timeout_s: float):
        if arrival_s > sim.now.seconds:
            yield Delay(arrival_s - sim.now.seconds)
        contract = QoSContract(stream_bps, priority, min_fraction, timeout_s)
        try:
            reservation = yield from controller.admit(contract, label=name)
        except AdmissionTimeoutError:
            if priority is Priority.INTERACTIVE:
                stats["interactive_timeouts"] += 1
            return
        except AdmissionError:
            return
        key = {Priority.INTERACTIVE: "interactive_admitted",
               Priority.STANDARD: "standard_admitted",
               Priority.BACKGROUND: "background_admitted"}[priority]
        stats[key] += 1
        start = sim.now.seconds
        period = element_bits / reservation.bps
        try:
            with reservation:
                for i in range(elements):
                    ideal = start + i * period
                    if ideal > sim.now.seconds:
                        yield Delay(ideal - sim.now.seconds)
                    yield from reservation.serialize(element_bits)
                    late = sim.now.seconds - (ideal + period)
                    if (priority is Priority.INTERACTIVE
                            and late > 0.25 * period):
                        stats["interactive_violations"] += 1
        except PreemptedError:
            stats["background_preempted"] += 1
            return
        stats["completed"] += 1

    sim.spawn(client("bg-0", 0.000, Priority.BACKGROUND, 0.25, 3.0))
    sim.spawn(client("bg-1", 0.005, Priority.BACKGROUND, 0.25, 3.0))
    sim.spawn(client("bg-2", 0.010, Priority.BACKGROUND, 0.25, 3.0))
    sim.spawn(client("std-0", 0.200, Priority.STANDARD, 0.5, 2.5))
    sim.spawn(client("int-0", 0.500, Priority.INTERACTIVE, 1.0, 0.3))
    sim.spawn(client("int-1", 0.550, Priority.INTERACTIVE, 1.0, 0.3))
    end = sim.run()
    metrics = sim.obs.metrics
    return {
        "mode": "admission" if admission else "no-admission",
        **stats,
        "admission_preempted": int(metrics.counter("admission.preempted").value),
        "admission_timeouts": int(metrics.counter("admission.timeouts").value),
        "reserved_bps_end": int(trunk.reserved_bps),
        "virtual_seconds": round(end.seconds, 4),
        "stranded_processes": sim.live_processes,
    }


def device_outage(seed: int = 0, admission: bool = True) -> Dict[str, object]:
    """Circuit breaker over the disk scheduler during an injected outage.

    Six readers fetch a frame every 50 ms through the scheduler; the
    fault plan stops it from t=0.3 to t=0.8.  With ``admission`` the
    reads go through the controller's ``disk`` breaker: three
    consecutive faults open it, reads fail fast while it is open,
    half-open probes retest the scheduler every 0.2 s, and the first
    probe after the restart closes it again.  Without the breaker every
    read slams into the dead scheduler individually.
    """
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.storage.scheduler import DiskScheduler, Policy

    sim = Simulator()
    disk = DiskScheduler(sim, policy=Policy.CSCAN)
    disk.start()
    plan = FaultPlan(seed=seed).scheduler_outage("disk", at=0.30, duration=0.50)
    FaultInjector(sim, plan).arm(schedulers={"disk": disk})
    trunk = Channel(sim, capacity_bps=10_000_000.0, name="trunk")
    controller = AdmissionController(sim, trunk)
    breaker = (controller.breaker("disk", failure_threshold=3,
                                  reset_timeout_s=0.2)
               if admission else None)

    readers, frames = 6, 30
    period, slack, bits = 0.05, 0.04, 200_000
    stats = {"delivered": 0, "lost": 0, "fast_failed": 0}

    def reader(index: int):
        for i in range(frames):
            ideal = i * period
            if ideal > sim.now.seconds:
                yield Delay(ideal - sim.now.seconds)
            position = (index * 150 + i * 7) % disk.cylinders

            def attempt(p=position, d=ideal + slack):
                return disk.read(p, bits, deadline=d)

            try:
                if breaker is not None:
                    yield from breaker.call(attempt)
                else:
                    yield from attempt()
            except CircuitOpenError:
                stats["fast_failed"] += 1
                continue
            except FaultError:
                stats["lost"] += 1
                continue
            stats["delivered"] += 1

    for index in range(readers):
        sim.spawn(reader(index), name=f"reader-{index}")
    end = sim.run()
    metrics = sim.obs.metrics
    transitions = breaker.transitions if breaker is not None else []
    negotiated = readers * frames
    accounted = stats["delivered"] + stats["lost"] + stats["fast_failed"]
    return {
        "mode": "admission" if admission else "no-admission",
        "negotiated_frames": negotiated,
        "delivered_frames": stats["delivered"],
        "lost_frames": stats["lost"],
        "fast_failed_frames": stats["fast_failed"],
        "breaker_state": breaker.state.value if breaker is not None else "none",
        "breaker_transitions": len(transitions),
        "breaker_path": "->".join(to for _, _, to in transitions),
        "breaker_fast_failures": int(
            metrics.counter("admission.breaker_fast_failures").value),
        "virtual_seconds": round(end.seconds, 4),
        # every negotiated read resolved (delivered / faulted / fast-failed):
        # nothing was left waiting on an open breaker or a dead scheduler.
        "stranded_requests": negotiated - accounted,
    }


SCENARIOS: Dict[str, Callable[..., Dict[str, object]]] = {
    "surge": surge,
    "priority-mix": priority_mix,
    "device-outage": device_outage,
}
