"""Admission control, overload shedding, and circuit breaking.

The ROADMAP's production-scale north star means the system must survive
offered load far beyond its capacity.  This package puts an
:class:`AdmissionController` in front of the shared resources — channel
bandwidth, shared device pools, the disk scheduler — and arbitrates
requests by priority class and QoS contract: admit, queue with a
deadline, degrade to a contract floor, shed, or preempt.  Faulting
components are wrapped in :class:`CircuitBreaker` instances so overload
never queues behind a dead resource.  :class:`OverloadWorkload` and the
named :data:`SCENARIOS` drive seeded multi-client overload experiments
(``python -m repro overload``).
"""

from repro.admission.breaker import BreakerState, CircuitBreaker
from repro.admission.controller import (
    AdmissionController,
    BatchVerdict,
    Priority,
    QoSContract,
)
from repro.admission.scenarios import SCENARIOS
from repro.admission.workload import OverloadWorkload, summary_line

__all__ = [
    "AdmissionController",
    "BatchVerdict",
    "BreakerState",
    "CircuitBreaker",
    "OverloadWorkload",
    "Priority",
    "QoSContract",
    "SCENARIOS",
    "summary_line",
]
