"""Circuit breakers over faulting components, in virtual time.

A :class:`CircuitBreaker` guards calls against a component that can
fault (a storage device, the disk scheduler).  While the component is
healthy the breaker is *closed* and calls pass through.  After
``failure_threshold`` consecutive faults it *opens*: further calls fail
fast with :class:`~repro.errors.CircuitOpenError` instead of queueing
behind a dead resource.  After ``reset_timeout_s`` of virtual time the
breaker goes *half-open* and lets exactly one probe through; a
successful probe closes the breaker, a faulting probe re-opens it.

The state machine is driven entirely by the simulator's virtual clock
(no wall time anywhere), so breaker transitions are as deterministic as
the fault plan that causes them.  Every transition is appended to
``breaker.transitions`` and published to ``admission.*`` metrics:

* ``admission.breaker.<name>.state`` — gauge: 0 closed, 0.5 half-open,
  1 open;
* ``admission.breaker_transitions`` — counter over all breakers;
* ``admission.breaker_fast_failures`` — calls rejected without being
  attempted.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Generator, List, Tuple, Type

from repro.errors import CircuitOpenError, FaultError, SimulationError
from repro.sim import Simulator


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


#: gauge encoding of the state (ordered by "how broken").
_STATE_LEVEL = {
    BreakerState.CLOSED: 0.0,
    BreakerState.HALF_OPEN: 0.5,
    BreakerState.OPEN: 1.0,
}

TransitionRecord = Tuple[float, str, str]


class CircuitBreaker:
    """Closed → open → half-open → closed, on a virtual-time timer."""

    def __init__(self, simulator: Simulator, name: str = "breaker",
                 failure_threshold: int = 3,
                 reset_timeout_s: float = 0.5,
                 trip_on: Tuple[Type[BaseException], ...] = (FaultError,)) -> None:
        if failure_threshold < 1:
            raise SimulationError(
                f"breaker failure threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s <= 0:
            raise SimulationError(
                f"breaker reset timeout must be positive, got {reset_timeout_s}"
            )
        self.simulator = simulator
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.trip_on = trip_on
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.fast_failures = 0
        #: every state change: (virtual time, from-state, to-state).
        self.transitions: List[TransitionRecord] = []
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._decisions = simulator.obs.decisions
        metrics = simulator.obs.metrics
        self._m_state = metrics.gauge(f"admission.breaker.{name}.state")
        self._m_transitions = metrics.counter("admission.breaker_transitions")
        self._m_fast_failures = metrics.counter("admission.breaker_fast_failures")
        self._m_state.set(0.0)

    # -- state machine -----------------------------------------------------
    def _transition(self, to: BreakerState) -> None:
        if to is self.state:
            return
        now = self.simulator.now.seconds
        self.transitions.append((now, self.state.value, to.value))
        if self._decisions.enabled:
            self._decisions.emit("breaker", self.name, actor="breaker",
                                 state=to.value, prev=self.state.value)
        self.state = to
        self._m_state.set(_STATE_LEVEL[to])
        self._m_transitions.inc()
        tracer = self.simulator.obs.tracer
        if tracer.enabled:
            tracer.instant(f"breaker:{to.value}", "admission", breaker=self.name)

    def allow(self) -> bool:
        """Would a call be attempted right now?  (Advances open → half-open.)"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self.simulator.now.seconds >= self._opened_at + self.reset_timeout_s:
                self._transition(BreakerState.HALF_OPEN)
                return True
            return False
        return not self._probe_in_flight  # half-open: one probe at a time

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._open()
        elif (self.state is BreakerState.CLOSED
              and self.consecutive_failures >= self.failure_threshold):
            self._open()

    def _open(self) -> None:
        self._opened_at = self.simulator.now.seconds
        self._transition(BreakerState.OPEN)

    # -- guarded calls -----------------------------------------------------
    def call(self, make_attempt: Callable[[], Generator]) -> Generator:
        """DES subroutine: run ``make_attempt()`` through the breaker.

        Fails fast with :class:`~repro.errors.CircuitOpenError` while
        open (or while a half-open probe is already in flight).  A fault
        from the attempt (per ``trip_on``) counts against the breaker and
        re-raises; any other outcome counts as success.
        """
        if not self.allow():
            self.fast_failures += 1
            self._m_fast_failures.inc()
            raise CircuitOpenError(
                f"breaker {self.name!r} is {self.state.value} "
                f"({self.consecutive_failures} consecutive faults); failing fast"
            )
        probing = self.state is BreakerState.HALF_OPEN
        if probing:
            self._probe_in_flight = True
        try:
            result = yield from make_attempt()
        except self.trip_on:
            self.record_failure()
            raise
        finally:
            if probing:
                self._probe_in_flight = False
        self.record_success()
        return result

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.name!r}, {self.state.value}, "
                f"{self.consecutive_failures} consecutive failures)")
