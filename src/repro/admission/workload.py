"""Seeded multi-client overload workload (ROADMAP: "millions of users").

:class:`OverloadWorkload` drives N client sessions (N >= 50 by default)
against one :class:`~repro.avdb.AVDatabaseSystem` whose streams share a
single trunk channel, a shared decoder pool, and the catalog database.
Arrivals are Poisson in *virtual* time; every random draw comes from one
seeded generator consumed before the simulation starts, so a run is a
pure function of ``(seed, parameters)`` — byte-identical facts across
runs, which the overload benchmark gates on.

Each client: opens a session, runs a catalog transaction (read + update
under wait-die, with bounded retries), takes a decoder lease, asks for
stream bandwidth, paces its elements over the wire, and closes.

Two admission regimes:

* ``admission=True`` — requests go through the
  :class:`~repro.admission.AdmissionController`: full-rate admission,
  queueing with a deadline, degradation to the contract floor, shedding
  of background work past the watermark, and preemption of background
  streams by interactive ones.  An admitted stream paces against its
  *operative* (possibly renegotiated) contract, so it honours what it
  was granted.
* ``admission=False`` — the uncontrolled baseline: nobody is refused
  and nothing is reserved; concurrent streams statistically multiplex
  the trunk (each element is served at ``capacity / active_streams``).
  Past saturation every stream's effective rate collapses, deadlines
  slip, and clients abandon — the congestion collapse that admission
  control exists to prevent.

*Goodput* counts only the bits of streams that completed while honouring
their operative QoS contract (zero late elements); bits burned by
abandoned, preempted, or contract-violating streams are wasted work.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.admission.controller import AdmissionController, Priority, QoSContract
from repro.avdb import AVDatabaseSystem
from repro.db import AttributeSpec, ClassDef, Q
from repro.errors import (
    AdmissionError,
    AdmissionTimeoutError,
    LockTimeoutError,
    PreemptedError,
)
from repro.net.channel import Channel
from repro.sim import Delay
from repro.synth.arrivals import mixture_pick, poisson_step

#: per-priority QoS defaults: (degraded floor fraction, queue timeout s).
PRIORITY_QOS = {
    Priority.INTERACTIVE: (1.0, 0.5),   # full rate or nothing, short patience
    Priority.STANDARD: (0.5, 1.5),
    Priority.BACKGROUND: (0.25, 3.0),
}

#: arrival mix: cumulative thresholds over one uniform draw.
_PRIORITY_MIX = (
    (0.30, Priority.INTERACTIVE),
    (0.70, Priority.STANDARD),
    (1.00, Priority.BACKGROUND),
)

CLIP_COUNT = 3


@dataclass(frozen=True, slots=True)
class ClientSpec:
    """One pre-drawn client: everything random, decided before t=0."""

    index: int
    name: str
    arrival_s: float
    priority: Priority
    clip: int


class FairShareLink:
    """Best-effort multiplexing of the trunk (the no-admission regime).

    No reservations: each element is served at the capacity divided by
    the number of active streams, sampled when the element starts — a
    deterministic stand-in for TCP-fair sharing of an unmanaged link.
    """

    def __init__(self, capacity_bps: float) -> None:
        self.capacity_bps = capacity_bps
        self.active = 0
        self.total_bits = 0

    def serialize(self, bits: int) -> Generator:
        share = self.capacity_bps / max(1, self.active)
        yield Delay(bits / share)
        self.total_bits += bits


class OverloadWorkload:
    """Build, run and score one seeded overload experiment."""

    def __init__(self, seed: int = 0, admission: bool = True,
                 clients: int = 60, load_factor: float = 10.0,
                 stream_bps: float = 2_000_000.0,
                 element_bits: int = 200_000,
                 elements: int = 20,
                 capacity_streams: int = 5,
                 pool_size: int = 6,
                 slack_fraction: float = 0.25,
                 abandon_factor: float = 8.0,
                 max_queue: int = 32,
                 high_watermark: float = 0.85) -> None:
        self.seed = seed
        self.admission = admission
        self.clients = clients
        self.load_factor = load_factor
        self.stream_bps = stream_bps
        self.element_bits = element_bits
        self.elements = elements
        self.capacity_bps = stream_bps * capacity_streams
        self.pool_size = pool_size
        self.slack_fraction = slack_fraction
        self.abandon_factor = abandon_factor
        self.max_queue = max_queue
        self.high_watermark = high_watermark
        self.period_s = element_bits / stream_bps
        self.stream_duration_s = elements * self.period_s
        self.specs = self._draw_specs()

    def _draw_specs(self) -> List[ClientSpec]:
        rng = random.Random(f"overload:{self.seed}")
        # Offered load = load_factor x capacity: arrival rate such that
        # (arrivals/s) x (stream duration) x (stream rate) = load x capacity.
        lam = (self.load_factor * self.capacity_bps
               / (self.stream_bps * self.stream_duration_s))
        specs: List[ClientSpec] = []
        clock = 0.0
        for index in range(self.clients):
            clock += poisson_step(rng, lam)
            priority = mixture_pick(rng, _PRIORITY_MIX)
            specs.append(ClientSpec(
                index=index,
                name=f"client-{index:03d}",
                arrival_s=round(clock, 6),
                priority=priority,
                clip=rng.randrange(CLIP_COUNT),
            ))
        return specs

    # -- system under test -------------------------------------------------
    def _build(self):
        system = AVDatabaseSystem(name="overload")
        sim = system.simulator
        system.db.define_class(ClassDef("Clip", attributes=[
            AttributeSpec("title", str, indexed=True),
            AttributeSpec("plays", int),
        ]))
        for i in range(CLIP_COUNT):
            system.db.insert("Clip", title=f"clip-{i}", plays=0)
        pool = system.resources.add_pool("decoder", self.pool_size)
        trunk = Channel(sim, capacity_bps=self.capacity_bps,
                        latency_s=0.0, name="trunk")
        controller = None
        if self.admission:
            controller = system.enable_admission(
                trunk, max_queue=self.max_queue,
                high_watermark=self.high_watermark,
            )
        return system, trunk, pool, controller

    # -- the client process ------------------------------------------------
    def _metadata_transaction(self, system, spec: ClientSpec,
                              stats: Dict[str, int]) -> Generator:
        """Catalog read-modify-write under wait-die, bounded retries.

        The transaction spans a yield (think: client think-time between
        reading the catalog entry and confirming the play), so
        concurrent clients really conflict; wait-die resolves every
        conflict without deadlock, and a bounded retry loop converts
        both verdicts (wait / die) into eventual commits.
        """
        db = system.db
        for attempt in range(10):
            tx = db.begin()
            try:
                oid = db.select("Clip", Q.eq("title", f"clip-{spec.clip}"))[0]
                obj = tx.read(oid)
                yield Delay(0.002)  # think time: the window conflicts live in
                tx.update(oid, plays=obj.plays + 1)
                tx.commit()
                stats["tx_commits"] += 1
                return
            except LockTimeoutError as error:
                tx.abort()
                stats["tx_retries"] += 1
                # wait-die: an older tx may wait and retry, a younger tx
                # dies — either way we back off and run a fresh attempt.
                yield Delay(0.002 * (attempt + 1)
                            * (1.0 if error.should_retry else 1.5))
        stats["tx_gave_up"] += 1

    def _stream(self, sim, serialize, op_period: float, priority: Priority,
                stats: Dict[str, int], baseline: bool) -> Generator:
        """Pace ``elements`` elements; returns (violations, ontime_bits,
        abandoned).

        ``ontime_bits`` counts only elements delivered within the
        operative schedule's slack — the element-level goodput of this
        stream, provided it runs to completion.
        """
        start = sim.now.seconds
        slack = self.slack_fraction * op_period
        violations = 0
        ontime_bits = 0
        for i in range(self.elements):
            ideal = start + i * op_period
            if ideal > sim.now.seconds:
                yield Delay(ideal - sim.now.seconds)
            yield from serialize(self.element_bits)
            finish = sim.now.seconds
            lateness = finish - (ideal + op_period)
            if lateness > slack + 1e-12:
                violations += 1
                if priority is Priority.INTERACTIVE:
                    stats["interactive_violations"] += 1
            else:
                ontime_bits += self.element_bits
            if baseline and lateness > self.abandon_factor * op_period:
                # The user gave up waiting; everything sent was wasted.
                stats["abandoned"] += 1
                return violations, ontime_bits, True
        return violations, ontime_bits, False

    def _client_controlled(self, system, trunk, pool, controller,
                           spec: ClientSpec, stats: Dict[str, int]) -> Generator:
        sim = system.simulator
        if spec.arrival_s > sim.now.seconds:
            yield Delay(spec.arrival_s - sim.now.seconds)
        session = system.open_session(spec.name, channel=trunk)
        lease = None
        reservation = None
        try:
            yield from self._metadata_transaction(system, spec, stats)
            min_fraction, timeout_s = PRIORITY_QOS[spec.priority]
            contract = QoSContract(self.stream_bps, spec.priority,
                                   min_fraction, timeout_s)
            try:
                lease = yield from controller.acquire_device(
                    pool, spec.priority, timeout_s
                )
                reservation = yield from controller.admit(contract,
                                                          label=spec.name)
            except AdmissionTimeoutError:
                stats["timeouts"] += 1
                return
            except AdmissionError:
                stats["shed"] += 1
                return
            if reservation.bps + 1e-9 >= self.stream_bps:
                stats["admitted_full"] += 1
            else:
                stats["admitted_degraded"] += 1
            if spec.priority is Priority.INTERACTIVE:
                stats["interactive_admitted"] += 1
            # Pace against the operative contract: a degraded grant is a
            # renegotiated (slower) schedule the stream then honours.
            op_period = self.element_bits / reservation.bps
            try:
                violations, ontime_bits, _ = yield from self._stream(
                    sim, reservation.serialize, op_period, spec.priority,
                    stats, baseline=False,
                )
            except PreemptedError:
                stats["preempted"] += 1
                return
            stats["completed"] += 1
            stats["goodput_bits"] += ontime_bits
            if violations == 0:
                stats["qos_streams"] += 1
        finally:
            if reservation is not None and not reservation.released:
                reservation.release()
            if lease is not None and not lease.released:
                lease.release()
            session.close()

    def _client_baseline(self, system, trunk, link, pool, spec: ClientSpec,
                         stats: Dict[str, int]) -> Generator:
        sim = system.simulator
        if spec.arrival_s > sim.now.seconds:
            yield Delay(spec.arrival_s - sim.now.seconds)
        session = system.open_session(spec.name, channel=trunk)
        lease = None
        try:
            yield from self._metadata_transaction(system, spec, stats)
            # No admission control: nobody is refused.  The pool queues
            # unboundedly (FIFO) and the trunk is multiplexed fairly.
            lease = yield from pool.acquire()
            stats["admitted_full"] += 1
            if spec.priority is Priority.INTERACTIVE:
                stats["interactive_admitted"] += 1
            link.active += 1
            try:
                violations, ontime_bits, abandoned = yield from self._stream(
                    sim, link.serialize, self.period_s, spec.priority,
                    stats, baseline=True,
                )
            finally:
                link.active -= 1
            if abandoned:
                return
            stats["completed"] += 1
            stats["goodput_bits"] += ontime_bits
            if violations == 0:
                stats["qos_streams"] += 1
        finally:
            if lease is not None and not lease.released:
                lease.release()
            session.close()

    # -- driving -----------------------------------------------------------
    def run(self) -> Dict[str, object]:
        system, trunk, pool, controller = self._build()
        sim = system.simulator
        link = FairShareLink(self.capacity_bps)
        stats: Dict[str, int] = {key: 0 for key in (
            "admitted_full", "admitted_degraded", "shed", "timeouts",
            "preempted", "abandoned", "completed", "qos_streams",
            "goodput_bits", "interactive_admitted", "interactive_violations",
            "tx_commits", "tx_retries", "tx_gave_up",
        )}
        for spec in self.specs:
            if self.admission:
                gen = self._client_controlled(system, trunk, pool, controller,
                                              spec, stats)
            else:
                gen = self._client_baseline(system, trunk, link, pool,
                                            spec, stats)
            sim.spawn(gen, name=spec.name)
        end = sim.run()
        horizon = max(end.seconds, 1e-9)
        metrics = sim.obs.metrics

        def counter(name: str) -> int:
            instrument = metrics.get(name)
            return int(instrument.value) if instrument is not None else 0

        facts: Dict[str, object] = {
            "mode": "admission" if self.admission else "no-admission",
            "seed": self.seed,
            "clients": self.clients,
            "load_factor": round(self.load_factor, 3),
            "capacity_bps": int(self.capacity_bps),
            "admitted_full": stats["admitted_full"],
            "admitted_degraded": stats["admitted_degraded"],
            "shed": stats["shed"],
            "timeouts": stats["timeouts"],
            "preempted": stats["preempted"],
            "abandoned": stats["abandoned"],
            "completed": stats["completed"],
            "qos_streams": stats["qos_streams"],
            "interactive_admitted": stats["interactive_admitted"],
            "interactive_violations": stats["interactive_violations"],
            "tx_commits": stats["tx_commits"],
            "tx_retries": stats["tx_retries"],
            "tx_gave_up": stats["tx_gave_up"],
            "goodput_bits": stats["goodput_bits"],
            "virtual_seconds": round(horizon, 4),
            "goodput_bps": round(stats["goodput_bits"] / horizon, 1),
            "admission_queued": counter("admission.queued"),
            "admission_shed_metric": counter("admission.shed"),
            "stranded_processes": sim.live_processes,
        }
        return facts


def summary_line(scenario: str, facts: Dict[str, object]) -> str:
    """One deterministic line for CI smoke checks and the benchmark."""
    keys = (
        "mode", "seed", "clients", "load_factor",
        "admitted_full", "admitted_degraded", "shed", "timeouts",
        "preempted", "abandoned", "completed", "qos_streams",
        "interactive_admitted", "interactive_violations",
        "background_preempted", "interactive_timeouts",
        "delivered_frames", "fast_failed_frames", "breaker_path",
        "stranded_requests", "stranded_processes",
        "goodput_bits", "virtual_seconds", "goodput_bps",
    )
    parts = [f"{key}={facts[key]}" for key in keys if key in facts]
    return f"overload {scenario}: " + " ".join(parts)
