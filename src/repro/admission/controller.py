"""Priority QoS admission control over shared resources (ROADMAP: overload).

The paper makes resource admission client-visible — "this statement
would fail if insufficient network bandwidth were available" — but a
bare reject collapses under overload: whoever arrives first wins and
everyone else gets an exception.  The :class:`AdmissionController`
arbitrates instead.  Each request carries a :class:`QoSContract` — the
bandwidth it needs, a :class:`Priority` class, the floor it would accept
degraded service at, and how long it is willing to queue — and the
controller decides, in order:

1. **admit** at full rate when capacity allows;
2. **preempt** background holders to admit an interactive request;
3. **degrade** down to the contract's floor (the
   ``Session._degraded_reservation`` path made policy);
4. **shed** background work outright past the high-watermark;
5. **queue** in virtual time (bounded queue → backpressure; deadline →
   :class:`~repro.errors.AdmissionTimeoutError`), draining
   highest-priority-first whenever bandwidth is released.

Shared device pools go through :meth:`acquire_device` (fail-fast, then
queued with a deadline), and faulting components are wrapped in
:class:`~repro.admission.breaker.CircuitBreaker` instances obtained from
:meth:`breaker`.  Everything is metered under ``admission.*``.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, Generator, List, Optional, Tuple

from repro.admission.breaker import CircuitBreaker
from repro.errors import (
    AdmissionError,
    AdmissionTimeoutError,
    DeadlineExceeded,
    DeviceBusyError,
)
from repro.net.channel import Channel, Reservation
from repro.obs.metrics import DEPTH_BUCKETS
from repro.sim import SimEvent, Simulator, Timeout


class Priority(IntEnum):
    """Priority classes, best first (lower sorts ahead in the queue)."""

    INTERACTIVE = 0
    STANDARD = 1
    BACKGROUND = 2


@dataclass(frozen=True, slots=True)
class QoSContract:
    """What one stream asks of the admission controller.

    ``min_fraction`` is the degraded-service floor: 1.0 means the stream
    is useless below its nominal rate (never degrade), 0.25 means it
    would rather run at a quarter rate than not at all.
    ``queue_timeout_s`` bounds how long the request may wait in the
    admission queue before failing with
    :class:`~repro.errors.AdmissionTimeoutError`.
    """

    bps: float
    priority: Priority = Priority.STANDARD
    min_fraction: float = 1.0
    queue_timeout_s: float = 1.0

    def __post_init__(self) -> None:
        if self.bps <= 0:
            raise AdmissionError(f"contract rate must be positive, got {self.bps}")
        if not 0.0 < self.min_fraction <= 1.0:
            raise AdmissionError(
                f"degraded floor must be in (0, 1], got {self.min_fraction}"
            )
        if self.queue_timeout_s < 0:
            raise AdmissionError(
                f"queue timeout must be >= 0, got {self.queue_timeout_s}"
            )


@dataclass(frozen=True, slots=True)
class BatchVerdict:
    """Outcome of one :meth:`AdmissionController.admit_batch` call.

    ``reservations`` holds the cohort reservations actually granted —
    at most one full-rate aggregate (``admitted_full`` clients at the
    contract rate each) and at most one degraded single-client grant,
    mirroring what a sequential arrival burst would have produced.
    """

    requested: int
    admitted_full: int
    admitted_degraded: int
    shed: int
    granted_bps: float
    reservations: Tuple[Reservation, ...]

    @property
    def admitted(self) -> int:
        return self.admitted_full + self.admitted_degraded


class _Shed:
    """Sentinel payload: the queued request was shed, not granted."""

    __slots__ = ("reason",)

    def __init__(self, reason: str) -> None:
        self.reason = reason


class _Pending:
    """One queued admission request."""

    __slots__ = ("contract", "label", "seq", "event", "queued_at",
                 "cancelled", "granted")

    def __init__(self, contract: QoSContract, label: str, seq: int,
                 event: SimEvent, queued_at: float) -> None:
        self.contract = contract
        self.label = label
        self.seq = seq
        self.event = event
        self.queued_at = queued_at
        self.cancelled = False
        self.granted: Optional[Reservation] = None

    @property
    def sort_key(self) -> Tuple[int, int]:
        return (int(self.contract.priority), self.seq)


class AdmissionController:
    """Arbitrates one channel's bandwidth between priority classes."""

    def __init__(self, simulator: Simulator, channel: Channel,
                 max_queue: int = 32,
                 high_watermark: float = 0.85,
                 preempt: bool = True,
                 name: str = "admission") -> None:
        if max_queue < 0:
            raise AdmissionError(f"queue bound must be >= 0, got {max_queue}")
        if not 0.0 < high_watermark <= 1.0:
            raise AdmissionError(
                f"high watermark must be in (0, 1], got {high_watermark}"
            )
        self.simulator = simulator
        self.channel = channel
        self.max_queue = max_queue
        self.high_watermark = high_watermark
        self.preempt = preempt
        self.name = name
        self._seq = itertools.count(1)
        self._queue: List[Tuple[Tuple[int, int], _Pending]] = []
        # Live (non-cancelled) queued entries, maintained incrementally
        # so queue_depth is O(1) — it is published on every queue
        # transition, which made the O(n) scan quadratic under load.
        self._live_queued = 0
        #: reservation id -> (reservation, priority) for every live grant.
        self._held: Dict[int, Tuple[Reservation, Priority]] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._pumping = False
        # Pre-bound decision log (same pattern as the metric instruments):
        # every verdict below is mirrored as a structured decision event
        # so `python -m repro explain` can reconstruct per-session chains.
        self._decisions = simulator.obs.decisions
        metrics = simulator.obs.metrics
        self._m_admitted = metrics.counter("admission.admitted")
        self._m_degraded = metrics.counter("admission.degraded")
        self._m_rejected = metrics.counter("admission.rejected")
        self._m_shed = metrics.counter("admission.shed")
        self._m_timeouts = metrics.counter("admission.timeouts")
        self._m_preempted = metrics.counter("admission.preempted")
        self._m_queued = metrics.counter("admission.queued")
        self._m_queue_depth = metrics.gauge("admission.queue_depth")
        self._m_queue_depth_h = metrics.histogram("admission.queue_depth_hist",
                                                  buckets=DEPTH_BUCKETS)
        self._m_queue_wait_s = metrics.histogram("admission.queue_wait_s")
        self._m_utilization = metrics.gauge(f"admission.{name}.utilization")

    # -- introspection -----------------------------------------------------
    @property
    def utilization(self) -> float:
        return self.channel.reserved_bps / self.channel.capacity_bps

    @property
    def queue_depth(self) -> int:
        return self._live_queued

    def holders(self, priority: Optional[Priority] = None) -> List[Reservation]:
        return [r for r, p in self._held.values()
                if priority is None or p is priority]

    # -- the decision core -------------------------------------------------
    def _grant(self, bps: float, contract: QoSContract, label: str) -> Reservation:
        reservation = self.channel.reserve(bps, label=label)
        self._held[reservation.id] = (reservation, contract.priority)
        reservation.on_release = self._on_release
        self._m_utilization.set(self.utilization)
        return reservation

    def _on_release(self, reservation: Reservation) -> None:
        self._held.pop(reservation.id, None)
        self._m_utilization.set(self.utilization)
        self._pump()

    def _preempt_for(self, bps: float) -> None:
        """Revoke background grants (newest first) until ``bps`` fits."""
        victims = sorted(
            (r for r, p in self._held.values()
             if p is Priority.BACKGROUND and not r.released),
            key=lambda r: -r.id,
        )
        for victim in victims:
            if self.channel.available_bps + 1e-9 >= bps:
                break
            victim.preempted = True
            self._m_preempted.inc(victim.cohort_clients)
            if self._decisions.enabled:
                # Ordinary streams keep the historical event shape; only
                # herd cohorts carry the per-client count field.
                if victim.cohort_clients == 1:
                    self._decisions.emit("preempt", victim.label,
                                         actor=self.name, bps=victim.bps)
                else:
                    self._decisions.emit("preempt", victim.label,
                                         actor=self.name, bps=victim.bps,
                                         count=victim.cohort_clients)
            tracer = self.simulator.obs.tracer
            if tracer.enabled:
                tracer.instant("admission:preempt", "admission",
                               victim=victim.label)
            victim.release()

    def _decide(self, contract: QoSContract, label: str,
                queued: bool = False) -> Optional[Reservation]:
        """Grant now, or return None (caller may queue).

        Raises :class:`~repro.errors.AdmissionError` when the request is
        *shed* — refused outright because the system is past its
        high-watermark and the request is lowest-priority.  Shed requests
        must not be queued; that is the point of shedding.
        """
        if (not queued
                and contract.priority is Priority.BACKGROUND
                and self.utilization >= self.high_watermark - 1e-12):
            self._m_shed.inc()
            if self._decisions.enabled:
                self._decisions.emit("shed", label, actor=self.name,
                                     reason="watermark",
                                     utilization=round(self.utilization, 4))
            raise AdmissionError(
                f"{self.name}: shedding background work "
                f"({self.utilization:.0%} of {self.channel.name!r} reserved, "
                f"watermark {self.high_watermark:.0%})"
            )
        available = self.channel.available_bps
        if available + 1e-9 >= contract.bps:
            self._m_admitted.inc()
            if self._decisions.enabled:
                self._decisions.emit("admit", label, actor=self.name,
                                     bps=contract.bps)
            return self._grant(contract.bps, contract, label)
        if self.preempt and contract.priority is Priority.INTERACTIVE:
            self._pumping = True  # freed bandwidth is for this request
            try:
                self._preempt_for(contract.bps)
            finally:
                self._pumping = False
            if self.channel.available_bps + 1e-9 >= contract.bps:
                self._m_admitted.inc()
                if self._decisions.enabled:
                    self._decisions.emit("admit", label, actor=self.name,
                                         bps=contract.bps, via="preemption")
                return self._grant(contract.bps, contract, label)
            available = self.channel.available_bps
        floor = contract.bps * contract.min_fraction
        if contract.min_fraction < 1.0 and available + 1e-9 >= floor and available > 0:
            self._m_degraded.inc()
            granted = min(available, contract.bps)
            if self._decisions.enabled:
                self._decisions.emit("degrade", label, actor=self.name,
                                     bps=granted, requested_bps=contract.bps,
                                     fraction=round(granted / contract.bps, 4))
            return self._grant(granted, contract, f"{label}-degraded")
        return None

    # -- synchronous admission (session connect path) ----------------------
    def try_admit(self, contract: QoSContract, label: str = "stream") -> Reservation:
        """Admit / preempt / degrade now, or raise — no queueing.

        This is the path for synchronous callers (e.g.
        ``Session.connect``) that are not running inside a DES process
        and therefore cannot wait in virtual time.
        """
        reservation = self._decide(contract, label)
        if reservation is None:
            self._m_rejected.inc()
            if self._decisions.enabled:
                self._decisions.emit(
                    "reject", label, actor=self.name, bps=contract.bps,
                    available_bps=round(self.channel.available_bps, 3))
            raise AdmissionError(
                f"{self.name}: cannot admit {contract.bps:g} b/s "
                f"({self.channel.available_bps:g} of "
                f"{self.channel.capacity_bps:g} b/s available on "
                f"{self.channel.name!r}; floor "
                f"{contract.bps * contract.min_fraction:g} b/s)"
            )
        self._pump()  # a degraded grant may leave room for queued work
        return reservation

    # -- batched admission (the herd path) ---------------------------------
    def admit_batch(self, contract: QoSContract, count: int,
                    label: str = "herd") -> BatchVerdict:
        """Admit up to ``count`` identical contracts in one decision.

        The vectorized equivalent of ``count`` back-to-back
        :meth:`try_admit` calls at one instant, minus queueing and
        preemption: as many full-rate grants as capacity allows are
        folded into **one** cohort :class:`~repro.net.channel.Reservation`
        of ``n x bps`` (so a herd of 10^5 clients costs O(lifetime)
        reservations, not O(clients)); the next client may take the
        degraded remainder exactly as a sequential arrival would; the
        rest are shed or rejected exactly as sequential arrivals would
        be.  Background batches re-check the watermark per grant, so a
        cohort stops growing the moment its own grants reach it — the
        same point a sequential arrival burst stops admitting.

        Cohort reservations carry ``cohort_clients`` so preemption by
        foreground interactive work is charged per *client*, not per
        reservation.  Metrics and the decision log advance by batch
        counts.
        """
        if count < 0:
            raise AdmissionError(f"batch count must be >= 0, got {count}")
        if count == 0:
            return BatchVerdict(0, 0, 0, 0, 0.0, ())
        if (contract.priority is Priority.BACKGROUND
                and self.utilization >= self.high_watermark - 1e-12):
            self._m_shed.inc(count)
            if self._decisions.enabled:
                self._decisions.emit("shed", label, actor=self.name,
                                     reason="watermark", count=count,
                                     utilization=round(self.utilization, 4))
            return BatchVerdict(count, 0, 0, count, 0.0, ())
        reservations = []
        granted_bps = 0.0
        available = self.channel.available_bps
        n_full = min(count, int((available + 1e-9) // contract.bps))
        if contract.priority is Priority.BACKGROUND and n_full:
            # A sequential background arrival re-checks the watermark
            # *before* its grant, so the k-th client of a burst admits
            # only while reserved + k*bps is still under it — cap the
            # cohort there, not at channel capacity.
            headroom = ((self.high_watermark - 1e-12)
                        * self.channel.capacity_bps
                        - self.channel.reserved_bps)
            n_full = min(n_full, max(0, math.ceil(headroom / contract.bps)))
        if n_full:
            cohort = self._grant(n_full * contract.bps, contract, label)
            cohort.cohort_clients = n_full
            reservations.append(cohort)
            granted_bps += cohort.bps
            self._m_admitted.inc(n_full)
            if self._decisions.enabled:
                self._decisions.emit("admit", label, actor=self.name,
                                     bps=contract.bps, count=n_full)
        # Past the grants above, a sequential background arrival sheds
        # at the watermark before it ever reaches the degrade step.
        at_watermark = (contract.priority is Priority.BACKGROUND
                        and self.utilization >= self.high_watermark - 1e-12)
        n_degraded = 0
        if count > n_full and contract.min_fraction < 1.0 and not at_watermark:
            available = self.channel.available_bps
            floor = contract.bps * contract.min_fraction
            if available + 1e-9 >= floor and available > 0:
                # Sequentially, the first client past capacity takes the
                # whole remainder (>= its floor); everyone after it sees
                # nothing left — so a batch degrades at most one client.
                grant = min(available, contract.bps)
                degraded = self._grant(grant, contract, f"{label}-degraded")
                degraded.cohort_clients = 1
                reservations.append(degraded)
                granted_bps += grant
                n_degraded = 1
                self._m_degraded.inc()
                if self._decisions.enabled:
                    self._decisions.emit(
                        "degrade", label, actor=self.name, bps=grant,
                        requested_bps=contract.bps,
                        fraction=round(grant / contract.bps, 4))
        shed = count - n_full - n_degraded
        if shed:
            # Sequentially the leftovers all see the same post-grant
            # state (a degraded grant may itself have reached the
            # watermark, so re-check): background work at the watermark
            # is shed, anything else is rejected.
            at_watermark = (contract.priority is Priority.BACKGROUND
                            and self.utilization
                            >= self.high_watermark - 1e-12)
            if at_watermark:
                self._m_shed.inc(shed)
            else:
                self._m_rejected.inc(shed)
            if self._decisions.enabled:
                self._decisions.emit(
                    "shed" if at_watermark else "reject", label,
                    actor=self.name, count=shed,
                    available_bps=round(self.channel.available_bps, 3))
        return BatchVerdict(count, n_full, n_degraded, shed,
                            granted_bps, tuple(reservations))

    # -- queued admission (DES subroutine) ---------------------------------
    def admit(self, contract: QoSContract, label: str = "stream") -> Generator:
        """DES subroutine: admit, or wait in the queue until admitted,
        shed, or timed out.

        Returns a live :class:`~repro.net.channel.Reservation`.  Raises
        :class:`~repro.errors.AdmissionError` when shed (watermark or
        queue backpressure) and
        :class:`~repro.errors.AdmissionTimeoutError` when the contract's
        queue deadline expires first.
        """
        reservation = self._decide(contract, label)  # raises when shed
        if reservation is not None:
            self._pump()
            return reservation
        self._make_room_for(contract, label)
        entry = _Pending(contract, label, next(self._seq),
                         self.simulator.event(f"admit:{label}"),
                         self.simulator.now.seconds)
        heapq.heappush(self._queue, (entry.sort_key, entry))
        self._live_queued += 1
        self._m_queued.inc()
        if self._decisions.enabled:
            self._decisions.emit("queue", label, actor=self.name,
                                 depth=self.queue_depth,
                                 priority=contract.priority.name.lower())
        self._publish_depth()
        try:
            payload = yield Timeout(entry.event, contract.queue_timeout_s)
        except DeadlineExceeded:
            entry.cancelled = True
            self._live_queued -= 1
            self._publish_depth()
            if entry.granted is not None:
                # Granted in the same tick the deadline fired (the timer
                # wins ties): give the bandwidth straight back.
                entry.granted.release()
            self._m_timeouts.inc()
            if self._decisions.enabled:
                self._decisions.emit("queue-timeout", label, actor=self.name,
                                     waited_s=contract.queue_timeout_s)
            raise AdmissionTimeoutError(
                f"{self.name}: {label!r} spent {contract.queue_timeout_s:g}s "
                f"queued without admission (priority "
                f"{contract.priority.name.lower()})"
            ) from None
        if isinstance(payload, _Shed):
            if self._decisions.enabled:
                self._decisions.emit("shed", label, actor=self.name,
                                     reason=payload.reason)
            raise AdmissionError(
                f"{self.name}: {label!r} shed while queued ({payload.reason})"
            )
        self._m_queue_wait_s.observe(
            self.simulator.now.seconds - entry.queued_at
        )
        return payload

    def _make_room_for(self, contract: QoSContract, label: str = "stream") -> None:
        """Bounded queue: shed the worst queued entry or refuse this one."""
        if self.queue_depth < self.max_queue:
            return
        worst = max(
            (e for _, e in self._queue if not e.cancelled),
            key=lambda e: e.sort_key,
            default=None,
        )
        if worst is not None and int(worst.contract.priority) > int(contract.priority):
            # A strictly lower-priority request waits in the queue: shed
            # it to make room (lowest-priority work goes first).
            worst.cancelled = True
            self._live_queued -= 1
            self._m_shed.inc()
            self._publish_depth()
            worst.event.trigger(_Shed("displaced by higher-priority request"))
            return
        self._m_shed.inc()
        if self._decisions.enabled:
            self._decisions.emit("shed", label, actor=self.name,
                                 reason="queue-full", depth=self.max_queue)
        raise AdmissionError(
            f"{self.name}: admission queue full "
            f"({self.max_queue} waiting); backpressure"
        )

    def _publish_depth(self) -> None:
        depth = self.queue_depth
        self._m_queue_depth.set(depth)
        self._m_queue_depth_h.observe(depth)

    def _pump(self) -> None:
        """Drain the wait queue, highest priority first, as capacity allows."""
        if self._pumping:
            return
        self._pumping = True
        try:
            while self._queue:
                key, entry = self._queue[0]
                if entry.cancelled:
                    heapq.heappop(self._queue)
                    continue
                contract = entry.contract
                available = self.channel.available_bps
                if available + 1e-9 >= contract.bps:
                    grant = contract.bps
                    self._m_admitted.inc()
                    verdict = "admit"
                elif (contract.min_fraction < 1.0
                      and available + 1e-9 >= contract.bps * contract.min_fraction
                      and available > 0):
                    grant = min(available, contract.bps)
                    self._m_degraded.inc()
                    verdict = "degrade"
                else:
                    break  # head of queue cannot be served; keep order
                heapq.heappop(self._queue)
                self._live_queued -= 1
                entry.granted = self._grant(grant, contract, entry.label)
                if self._decisions.enabled:
                    waited = self.simulator.now.seconds - entry.queued_at
                    self._decisions.emit(verdict, entry.label, actor=self.name,
                                         bps=grant, from_queue=True,
                                         waited_s=round(waited, 6))
                self._publish_depth()
                entry.event.trigger(entry.granted)
        finally:
            self._pumping = False

    # -- shared device pools -----------------------------------------------
    def acquire_device(self, pool, priority: Priority = Priority.STANDARD,
                       timeout_s: float = 1.0) -> Generator:
        """DES subroutine: a pool lease under admission policy.

        Fail-fast when a unit is free; when the pool is fully busy,
        background requests are shed; otherwise the request queues on
        the pool (FIFO, the hardware's own order) bounded by
        ``timeout_s``.
        """
        from repro.sim import WaitProcess

        try:
            return pool.allocate()
        except DeviceBusyError:
            pass
        if priority is Priority.BACKGROUND:
            self._m_shed.inc()
            if self._decisions.enabled:
                self._decisions.emit("shed", f"device:{pool.kind}",
                                     actor=self.name, reason="pool-busy")
            raise AdmissionError(
                f"{self.name}: shedding background request for a "
                f"{pool.kind!r} device ({pool.in_use}/{pool.count} busy)"
            )
        self._m_queued.inc()
        queued_at = self.simulator.now.seconds
        proc = self.simulator.spawn(pool.acquire(),
                                    name=f"admit-device:{pool.kind}")
        try:
            lease = yield Timeout(proc, timeout_s)
        except DeadlineExceeded:
            proc.interrupt()

            def scavenge():
                # The grant can land in the very tick the deadline fired
                # (the timer wins ties); if so, the lease would be
                # stranded — give the unit straight back.
                try:
                    late_lease = yield WaitProcess(proc)
                except BaseException:
                    return  # interrupted while queued: claim lapsed cleanly
                if late_lease is not None and not late_lease.released:
                    late_lease.release()

            self.simulator.spawn(scavenge(), name=f"admit-scavenge:{pool.kind}")
            self._m_timeouts.inc()
            raise AdmissionTimeoutError(
                f"{self.name}: no {pool.kind!r} device freed up within "
                f"{timeout_s:g}s"
            ) from None
        self._m_queue_wait_s.observe(self.simulator.now.seconds - queued_at)
        return lease

    # -- circuit breakers ----------------------------------------------------
    def breaker(self, name: str, **kwargs) -> CircuitBreaker:
        """Get or create the named breaker (see :mod:`repro.admission.breaker`)."""
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = CircuitBreaker(self.simulator, name=name, **kwargs)
            self._breakers[name] = breaker
        return breaker

    def __repr__(self) -> str:
        return (f"AdmissionController({self.name!r} on {self.channel.name!r}, "
                f"{len(self._held)} held, {self.queue_depth} queued)")
