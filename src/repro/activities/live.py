"""Live sources (paper §4, footnote 1).

"Examples of live sources include video cameras, microphones, and values
that are changing due to interaction with the client."

A live source has no stored value to bind: frames/samples are produced by
a capture callback *at the wall-clock (virtual) rate of the medium* and
cannot be read ahead — which is exactly why "it is impossible to compress
the entire value prior to exchange" (benchmark C2's live case).  Live
sources run until stopped or until ``max_elements`` is reached.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

import numpy as np

from repro.activities.base import Location, MediaActivity
from repro.activities.events import (
    EVENT_EACH_ELEMENT,
    EVENT_EACH_FRAME,
    EVENT_LAST_ELEMENT,
)
from repro.activities.ports import Direction
from repro.avtime import WorldTime
from repro.errors import ActivityError, ActivityStateError
from repro.sim import Delay, Simulator
from repro.streams.element import END_OF_STREAM, StreamElement
from repro.streams.sync import JitterModel, NoJitter
from repro.values.mediatype import standard_type


class LiveSource(MediaActivity):
    """Base for live capture activities.

    Parameters
    ----------
    capture:
        Callable ``capture(index) -> payload`` invoked at each element
        period; models the camera/microphone/interaction.
    rate:
        Elements per second of the live medium.
    max_elements:
        Stop after this many elements (a bounded recording); ``None``
        runs until ``stop()``.
    """

    EVENT_NAMES = MediaActivity.EVENT_NAMES + (EVENT_EACH_ELEMENT, EVENT_LAST_ELEMENT)

    def __init__(self, simulator: Simulator, capture: Callable[[int], object],
                 rate: float, element_bits: int,
                 name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 jitter: Optional[JitterModel] = None,
                 max_elements: Optional[int] = None) -> None:
        super().__init__(simulator, name, location)
        if rate <= 0:
            raise ActivityError(f"live rate must be positive, got {rate}")
        if element_bits <= 0:
            raise ActivityError(f"element size must be positive, got {element_bits}")
        if max_elements is not None and max_elements < 1:
            raise ActivityError(f"max_elements must be >= 1, got {max_elements}")
        self.capture = capture
        self.rate = rate
        self.element_bits = element_bits
        self.jitter = jitter or NoJitter()
        self.max_elements = max_elements
        self.elements_produced = 0

    # Live sources cannot be bound or cued: there is no stored value.
    def bind(self, value, port_name=None) -> None:
        raise ActivityStateError(
            f"live source {self.name!r} has no stored value to bind"
        )

    def cue(self, when: WorldTime) -> None:
        raise ActivityStateError(
            f"live source {self.name!r} cannot be cued: live data has no past"
        )

    def _media_type(self):
        return self.out_ports()[0].media_type

    def _process(self) -> Generator:
        port = self.out_ports()[0]
        t_start = self.simulator.now.seconds
        media_type = self._media_type()
        index = 0
        while not self._stop_requested:
            if self.max_elements is not None and index >= self.max_elements:
                break
            ideal = WorldTime(t_start + index / self.rate)
            target = ideal.seconds + self.jitter.offset(index)
            wait = target - self.simulator.now.seconds
            if wait > 0:
                yield Delay(wait)
            payload = self.capture(index)
            element = StreamElement(payload, index, ideal, media_type,
                                    self.element_bits)
            yield from port.send(element)
            self.elements_produced += 1
            self._emit(EVENT_EACH_ELEMENT, index)
            index += 1
        yield from port.send(END_OF_STREAM)
        self._emit(EVENT_LAST_ELEMENT, self.elements_produced)


class LiveCamera(LiveSource):
    """A live video camera producing raw frames.

    The default capture synthesizes a drifting-gradient scene with a
    frame counter burned in, so recordings are verifiable.
    """

    TABLE_ROW = ("live camera", "source", "(optics)", "raw")
    EVENT_NAMES = LiveSource.EVENT_NAMES + (EVENT_EACH_FRAME,)

    def __init__(self, simulator: Simulator, width: int = 64, height: int = 48,
                 rate: float = 30.0, capture: Optional[Callable] = None,
                 name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 jitter: Optional[JitterModel] = None,
                 max_elements: Optional[int] = None) -> None:
        self.width = width
        self.height = height
        super().__init__(
            simulator, capture or self._default_capture, rate,
            element_bits=width * height * 8, name=name, location=location,
            jitter=jitter, max_elements=max_elements,
        )
        self.add_port("video_out", Direction.OUT, standard_type("video/raw"))

    def _default_capture(self, index: int) -> np.ndarray:
        y, x = np.mgrid[0:self.height, 0:self.width]
        frame = ((x * 2 + y + index * 5) % 256).astype(np.uint8)
        # Burn a frame-counter block into the corner.
        size = max(2, min(self.height, self.width) // 8)
        frame[:size, :size] = index % 256
        return frame

    def _process(self) -> Generator:
        yield from super()._process()

    def _emit(self, event_name, payload=None) -> None:
        super()._emit(event_name, payload)
        if event_name == EVENT_EACH_ELEMENT:
            super()._emit(EVENT_EACH_FRAME, payload)


class LiveMicrophone(LiveSource):
    """A live microphone producing PCM blocks."""

    TABLE_ROW = ("live microphone", "source", "(acoustics)", "pcm")

    def __init__(self, simulator: Simulator, sample_rate: float = 8000.0,
                 block_samples: int = 512,
                 capture: Optional[Callable] = None,
                 name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 jitter: Optional[JitterModel] = None,
                 max_elements: Optional[int] = None) -> None:
        self.sample_rate = sample_rate
        self.block_samples = block_samples
        super().__init__(
            simulator, capture or self._default_capture,
            rate=sample_rate / block_samples,
            element_bits=block_samples * 16, name=name, location=location,
            jitter=jitter, max_elements=max_elements,
        )
        self.add_port("audio_out", Direction.OUT, standard_type("audio/pcm"))

    def _default_capture(self, index: int) -> np.ndarray:
        t = (np.arange(self.block_samples)
             + index * self.block_samples) / self.sample_rate
        wave = 0.4 * np.sin(2 * np.pi * 440.0 * t)
        return np.round(wave * 32767).astype(np.int16)[np.newaxis, :]
