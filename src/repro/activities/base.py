"""The abstract ``MediaActivity`` class (paper §4.2).

The paper's partial specification::

    class MediaActivity {
        PortSet  ports
        EventSet events
        Bind(MediaValue, Port)
        Cue(WorldTime)
        Start()
        Stop()
        Catch(Event, Handler)
    }

plus the surrounding notions: *activity creation* (instantiating a
subclass), *activity location* ("the processor or node on which they
execute"), *activity ports*, *activity binding*, *activity control* and
*activity event notification*.  Activities run as DES processes; their
behaviour is the subclass's ``_process`` generator.
"""

from __future__ import annotations

import abc
from enum import Enum
from typing import Any, Generator, Optional, Tuple

from repro.activities.events import (
    EVENT_FINISHED,
    EVENT_STARTED,
    EVENT_STOPPED,
    EventDispatcher,
    Handler,
)
from repro.activities.ports import Direction, Port
from repro.avtime import WorldTime
from repro.errors import ActivityStateError, PortError
from repro.sim import Process, Simulator
from repro.values.mediatype import MediaType


class Location(Enum):
    """Where an activity executes (paper: database vs application node)."""

    DATABASE = "database"
    APPLICATION = "application"


class ActivityState(Enum):
    CREATED = "created"
    RUNNING = "running"
    STOPPED = "stopped"  # stopped by the application before completion
    FINISHED = "finished"  # ran to end of stream


class ActivityKind(Enum):
    """Source / sink / transformer classification (paper §3.1, §4.2)."""

    SOURCE = "source"
    SINK = "sink"
    TRANSFORMER = "transformer"

    @staticmethod
    def classify(has_in: bool, has_out: bool) -> "ActivityKind":
        """Map port directions to the paper's three activity kinds."""
        if has_in and has_out:
            return ActivityKind.TRANSFORMER
        if has_out:
            return ActivityKind.SOURCE
        if has_in:
            return ActivityKind.SINK
        raise PortError("an activity must declare at least one port")


def _next_activity_ordinal(simulator: Simulator) -> int:
    """Per-simulator ordinal for auto-generated activity names.

    Keyed to the simulator (not a process-global counter) so a scenario's
    activity names — which leak into trace track names — depend only on
    construction order within its own simulation.  Rerunning a scenario in
    the same process then yields byte-identical trace exports.
    """
    ordinal = getattr(simulator, "_activity_ordinal", 0) + 1
    simulator._activity_ordinal = ordinal
    return ordinal


class MediaActivity(abc.ABC):
    """Abstract base of all activities.

    Subclasses declare ports in ``__init__`` via :meth:`add_port`, extend
    :attr:`EVENT_NAMES` with their events, and implement :meth:`_process`
    as a DES generator.
    """

    #: events every activity can emit; subclasses extend this tuple.
    EVENT_NAMES: Tuple[str, ...] = (EVENT_STARTED, EVENT_STOPPED, EVENT_FINISHED)

    def __init__(self, simulator: Simulator, name: Optional[str] = None,
                 location: Location = Location.APPLICATION) -> None:
        self.simulator = simulator
        self.name = name or (f"{type(self).__name__.lower()}"
                             f"-{_next_activity_ordinal(simulator)}")
        self.location = location
        self.ports: dict[str, Port] = {}
        self.events = EventDispatcher(self.EVENT_NAMES)
        self.state = ActivityState.CREATED
        self._bound: Any = None
        self._cue_position = WorldTime.zero()
        self._stop_requested = False
        self._proc: Optional[Process] = None
        #: when False the activity runs in free-run mode (no rate pacing);
        #: used by the pure-throughput benchmarks (DESIGN.md ablation 1).
        self.paced = True

    # -- ports ---------------------------------------------------------------
    def add_port(self, name: str, direction: Direction, media_type: MediaType) -> Port:
        if name in self.ports:
            raise PortError(f"activity {self.name!r} already has a port {name!r}")
        port = Port(name, direction, media_type, owner=self)
        self.ports[name] = port
        return port

    def port(self, name: str) -> Port:
        """Look up a declared port by name."""
        try:
            return self.ports[name]
        except KeyError:
            raise PortError(
                f"activity {self.name!r} has no port {name!r} "
                f"(ports: {sorted(self.ports)})"
            ) from None

    def in_ports(self) -> list[Port]:
        return [p for p in self.ports.values() if p.direction is Direction.IN]

    def out_ports(self) -> list[Port]:
        return [p for p in self.ports.values() if p.direction is Direction.OUT]

    @property
    def kind(self) -> ActivityKind:
        """Sink, source or transformer, from the port directions."""
        return ActivityKind.classify(bool(self.in_ports()), bool(self.out_ports()))

    # -- binding ---------------------------------------------------------
    def bind(self, value: Any, port_name: Optional[str] = None) -> None:
        """The paper's ``Bind(MediaValue, Port)``.

        The default implementation stores the value for the activity's
        single bindable role; subclasses validate media types and may
        narrow abstract port types to the bound value's type.
        """
        if self.state is ActivityState.RUNNING:
            raise ActivityStateError(f"cannot bind while {self.name!r} is running")
        self._validate_binding(value, port_name)
        self._bound = value

    def _validate_binding(self, value: Any, port_name: Optional[str]) -> None:
        """Subclass hook; default accepts anything."""

    @property
    def bound_value(self) -> Any:
        return self._bound

    # -- control ---------------------------------------------------------
    def cue(self, when: WorldTime) -> None:
        """Position the activity at world time ``when`` of its bound value."""
        if self.state is ActivityState.RUNNING:
            raise ActivityStateError(f"cannot cue while {self.name!r} is running")
        self._cue_position = when

    @property
    def cue_position(self) -> WorldTime:
        return self._cue_position

    def start(self) -> Process:
        """Spawn the activity's process; returns the DES process handle."""
        if self.state is ActivityState.RUNNING:
            raise ActivityStateError(f"activity {self.name!r} is already running")
        self._pre_start()
        self.state = ActivityState.RUNNING
        self._stop_requested = False
        self._proc = self.simulator.spawn(self._run(), name=self.name)
        return self._proc

    def _pre_start(self) -> None:
        """Subclass hook: validate configuration, acquire device resources."""

    def stop(self) -> None:
        """Request the activity stop at the next element boundary."""
        if self.state is not ActivityState.RUNNING:
            raise ActivityStateError(
                f"cannot stop {self.name!r} in state {self.state.value}"
            )
        self._stop_requested = True

    def catch(self, event_name: str, handler: Handler) -> None:
        """The paper's ``Catch(Event, Handler)``."""
        self.events.catch(event_name, handler)

    @property
    def process(self) -> Optional[Process]:
        return self._proc

    @property
    def finished(self) -> bool:
        return self.state in (ActivityState.FINISHED, ActivityState.STOPPED)

    # -- process scaffolding ------------------------------------------------
    def _run(self) -> Generator:
        self.events.emit(self, EVENT_STARTED, self.simulator.now)
        span = self.simulator.obs.tracer.begin(
            self.name, f"activity.{self.kind.value}", track=self.name,
            location=self.location.value,
        ) if self.simulator.obs.tracer.enabled else None
        try:
            yield from self._process()
        finally:
            if self._stop_requested:
                self.state = ActivityState.STOPPED
                self.events.emit(self, EVENT_STOPPED, self.simulator.now)
            else:
                self.state = ActivityState.FINISHED
                self.events.emit(self, EVENT_FINISHED, self.simulator.now)
            if span is not None:
                span.end(outcome=self.state.value)

    @abc.abstractmethod
    def _process(self) -> Generator:
        """The activity body: a DES generator producing/consuming elements."""

    def _emit(self, event_name: str, payload: Any = None) -> None:
        self.events.emit(self, event_name, payload)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, {self.kind.value}, "
            f"state={self.state.value})"
        )
