"""Ports and connections (paper §4.2).

"Each activity is associated with a set of Port objects through which
streams enter and leave the activity.  A port has a direction, either
'in' or 'out', and a media data type. ... An 'in' port can be connected
to an 'out' port provided they are of the same data type."

Type compatibility follows :meth:`MediaType.accepts`: exact match, or the
receiving port declares the kind-level wildcard.  A connection owns the
bounded stream buffer carrying elements, and optionally a network-channel
reservation that charges transfer time and accounts traffic (used when a
connection crosses the database/application boundary, Figs. 3-4).
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import ConnectionError_, PortError
from repro.sim import Simulator
from repro.streams.buffer import StreamBuffer
from repro.streams.element import EndOfStream, StreamElement
from repro.values.mediatype import MediaType

if TYPE_CHECKING:  # pragma: no cover
    from repro.activities.base import MediaActivity
    from repro.net.channel import Reservation


class Direction(Enum):
    IN = "in"
    OUT = "out"


class Port:
    """A directed, typed stream endpoint owned by an activity."""

    def __init__(self, name: str, direction: Direction, media_type: MediaType,
                 owner: Optional["MediaActivity"] = None) -> None:
        self.name = name
        self.direction = direction
        self._media_type = media_type
        self.owner = owner
        self.connection: Optional[Connection] = None
        # When this port re-exports a component's port on a composite
        # activity, ``proxy_for`` points at the inner port.
        self.proxy_for: Optional[Port] = None

    @property
    def media_type(self) -> MediaType:
        return self._media_type

    def narrow(self, media_type: MediaType) -> None:
        """Refine an abstract port type to a concrete one (at bind time).

        If the port was connected while still abstract, the peer port must
        accept the narrowed type — the deferred same-data-type check for
        the paper's bind-after-connect statement order.
        """
        if not self._media_type.accepts(media_type):
            raise PortError(
                f"port {self.full_name} of type {self._media_type.name} "
                f"cannot narrow to {media_type.name}"
            )
        if self.connection is not None and self.direction is Direction.OUT:
            peer = self.connection.sink
            if not peer.media_type.accepts(media_type):
                raise PortError(
                    f"port {self.full_name} cannot narrow to {media_type.name}: "
                    f"connected sink {peer.full_name} accepts {peer.media_type.name}"
                )
        self._media_type = media_type

    @property
    def full_name(self) -> str:
        owner = self.owner.name if self.owner is not None else "?"
        return f"{owner}.{self.name}"

    @property
    def connected(self) -> bool:
        return self.connection is not None

    def resolve(self) -> "Port":
        """Follow proxy links to the concrete component port."""
        port = self
        while port.proxy_for is not None:
            port = port.proxy_for
        return port

    # -- stream I/O (used by activity processes) --------------------------
    def send(self, element: StreamElement | EndOfStream) -> Generator:
        if self.direction is not Direction.OUT:
            raise PortError(f"cannot send on 'in' port {self.full_name}")
        if self.connection is None:
            owner = self.owner
            from repro.activities.base import ActivityState
            if owner is not None and (
                    getattr(owner, "_stop_requested", False)
                    or owner.state is not ActivityState.RUNNING):
                # The connection was torn down while this activity was
                # being stopped (session close removes its graph links);
                # the element it was flushing has nowhere to go.  Drop it
                # instead of failing the stopping process.
                return
            raise PortError(f"port {self.full_name} is not connected")
        yield from self.connection.send(element)

    def receive(self) -> Generator:
        if self.direction is not Direction.IN:
            raise PortError(f"cannot receive on 'out' port {self.full_name}")
        if self.connection is None:
            owner = self.owner
            from repro.activities.base import ActivityState
            from repro.streams.element import END_OF_STREAM
            if owner is not None and (
                    getattr(owner, "_stop_requested", False)
                    or owner.state is not ActivityState.RUNNING):
                # Torn down while stopping (see ``send``): nothing more
                # will ever arrive, so hand the consumer its end-of-stream.
                return END_OF_STREAM
            raise PortError(f"port {self.full_name} is not connected")
        element = yield from self.connection.receive()
        return element

    def __repr__(self) -> str:
        return f"Port({self.full_name}, {self.direction.value}, {self._media_type.name})"


class Connection:
    """A stream link from an 'out' port to an 'in' port.

    Parameters
    ----------
    simulator:
        DES kernel the buffer runs on.
    source / sink:
        The out-port and in-port.  Composite (proxy) ports are accepted;
        the connection attaches to the resolved concrete ports but type
        checking uses the ports as given.
    capacity:
        Buffer bound (elements).
    reservation:
        Optional network-channel reservation; when present, each element
        pays its transfer time before entering the buffer and the
        channel's traffic accounting is charged.
    """

    def __init__(self, simulator: Simulator, source: Port, sink: Port,
                 capacity: int = 8,
                 reservation: Optional["Reservation"] = None) -> None:
        if source.direction is not Direction.OUT:
            raise ConnectionError_(
                f"connection source must be an 'out' port, got {source.full_name}"
            )
        if sink.direction is not Direction.IN:
            raise ConnectionError_(
                f"connection sink must be an 'in' port, got {sink.full_name}"
            )
        # Same-data-type rule.  An out port still carrying an abstract
        # kind-level type (source created before its value is bound, as in
        # the paper's statement order 1-3-5) may connect to a same-kind in
        # port; the bind-time narrowing re-validates against this sink.
        abstract_ok = (
            source.media_type.is_abstract
            and source.media_type.kind is sink.media_type.kind
        )
        if not sink.media_type.accepts(source.media_type) and not abstract_ok:
            raise ConnectionError_(
                f"type mismatch: {source.full_name} produces {source.media_type.name}, "
                f"{sink.full_name} accepts {sink.media_type.name}"
            )
        real_source = source.resolve()
        real_sink = sink.resolve()
        for port in (real_source, real_sink):
            if port.connection is not None:
                raise ConnectionError_(
                    f"port {port.full_name} is already connected "
                    f"(use a tee activity to fan out)"
                )
        self.simulator = simulator
        self.source = real_source
        self.sink = real_sink
        self.reservation = reservation
        self.buffer = StreamBuffer(
            simulator, capacity,
            name=f"{real_source.full_name}->{real_sink.full_name}",
        )
        real_source.connection = self
        real_sink.connection = self
        self.elements_sent = 0
        self.bits_sent = 0

    def send(self, element: StreamElement | EndOfStream) -> Generator:
        """Pipelined send: the sender pays serialization time; propagation
        latency is absorbed by a delayed-delivery process, so the sender
        can clock out the next element immediately."""
        latency = 0.0
        if isinstance(element, StreamElement):
            if self.reservation is not None:
                yield from self.reservation.serialize(element.size_bits)
                latency = self.reservation.latency_s
            self.elements_sent += 1
            self.bits_sent += element.size_bits
        elif self.reservation is not None:
            # EOS rides the same path so ordering is preserved.
            latency = self.reservation.latency_s
        if latency > 0:
            self.simulator.spawn(
                self._deliver_later(element, latency),
                name=f"deliver:{self.buffer.name}",
            )
        else:
            yield from self.buffer.put(element)

    def _deliver_later(self, element, latency: float) -> Generator:
        from repro.sim import Delay
        yield Delay(latency)
        yield from self.buffer.put(element)

    def receive(self) -> Generator:
        element = yield from self.buffer.get()
        return element

    def disconnect(self) -> None:
        """Tear the connection down and release any reservation."""
        self.source.connection = None
        self.sink.connection = None
        if self.reservation is not None:
            self.reservation.release()

    def __repr__(self) -> str:
        return f"Connection({self.source.full_name} -> {self.sink.full_name})"
