"""The activity catalog (paper Table 1 + §4.3, plus audio/text analogues).

Table 1 lists eight video activities; the paper adds that "the following
would also apply to audio activities".  Every entry is implemented here as
a concrete :class:`~repro.activities.MediaActivity` subclass:

=================  ===========  ==================  ==================
activity           kind         input port type     output port type
=================  ===========  ==================  ==================
video digitizer    source       (analog)            raw
video reader       source       (storage)           raw / compressed
video encoder      transformer  raw                 compressed
video decoder      transformer  compressed          raw
video mixer        transformer  raw x n             raw
video tee          transformer  raw                 raw x n
video window       sink         raw                 (display)
video writer       sink         raw / compressed    (storage)
=================  ===========  ==================  ==================

``ActivityCatalog.table()`` reprints the table from the live classes —
the Table 1 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

import numpy as np

from repro.activities.base import Location, MediaActivity
from repro.activities.events import (
    EVENT_EACH_ELEMENT,
    EVENT_EACH_FRAME,
    EVENT_LAST_ELEMENT,
    EVENT_LAST_FRAME,
)
from repro.activities.ports import Direction
from repro.avtime import ObjectTime, WorldTime
from repro.errors import ActivityError, MediaTypeError
from repro.obs.metrics import LATENCY_BUCKETS_MS
from repro.sim import Delay, Simulator
from repro.streams.clock import PresentationLog
from repro.streams.element import END_OF_STREAM, EndOfStream, StreamElement
from repro.streams.sync import JitterModel, NoJitter, Resynchronizer, SyncGroup
from repro.quality.factors import VideoQuality
from repro.values.audio import AudioValue
from repro.values.base import MediaValue
from repro.values.mediatype import MediaType, standard_type
from repro.values.midi import MIDIValue
from repro.values.text import TextStreamValue
from repro.values.video import (
    EncodedVideoValue,
    LVVideoValue,
    RawVideoValue,
    VideoValue,
)


# ---------------------------------------------------------------------------
# shared machinery
# ---------------------------------------------------------------------------

class PacedSource(MediaActivity):
    """Base for sources: paces elements at the bound value's data rate.

    Element ``i`` of the bound value is produced at virtual time
    ``t_start + (ideal_i - cue) + jitter_i``, where ``ideal_i`` comes from
    the value's time mapping.  The element's ``ideal_time`` stamp excludes
    jitter, so downstream presentation logs measure exactly the injected
    latency plus pipeline delay.
    """

    EVENT_NAMES = MediaActivity.EVENT_NAMES + (EVENT_EACH_ELEMENT, EVENT_LAST_ELEMENT)

    def __init__(self, simulator: Simulator, name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 jitter: Optional[JitterModel] = None) -> None:
        super().__init__(simulator, name, location)
        self.jitter = jitter or NoJitter()
        self._sync_group: Optional[SyncGroup] = None
        self._sync_member: Optional[str] = None
        self._resync: Optional[Resynchronizer] = None
        self.elements_produced = 0
        self._m_produced = simulator.obs.metrics.counter("stream.elements_produced")
        #: optional storage stream (provided by the storage layer); when
        #: set, each element pays device read time.
        self.io_stream = None

    # -- sync wiring (used by CompositeActivity.install) -------------------
    def attach_sync(self, group: SyncGroup, member: str,
                    resync: Optional[Resynchronizer] = None) -> None:
        group.register(member)
        self._sync_group = group
        self._sync_member = member
        self._resync = resync

    # -- subclass interface -------------------------------------------------
    def _value(self) -> MediaValue:
        if self._bound is None:
            raise ActivityError(f"source {self.name!r} has no bound value")
        return self._bound

    def _element_payloads(self) -> Sequence[tuple]:
        """(payload, size_bits, media_type) per element, starting at cue."""
        raise NotImplementedError

    def _ideal_offset(self, position: int) -> float:
        """Seconds from cue position to element ``position``'s ideal time."""
        raise NotImplementedError

    # -- shared cue arithmetic --------------------------------------------
    # The cue position is the world time at which the activity's start
    # corresponds; element e of the bound value is produced at offset
    # (ideal_time(e) - cue) after start.  A value whose interval begins
    # after the cue therefore starts late on the shared axis (timeline
    # placement, Fig. 1); cueing past the value's start skips elements.

    def _start_element(self, value: MediaValue) -> int:
        if self._cue_position <= value.start:
            return 0
        return value.world_to_object(self._cue_position).index

    def _offset_of(self, value: MediaValue, element_index: int) -> float:
        ideal = value.object_to_world(ObjectTime(element_index))
        return (ideal - self._cue_position).seconds

    def _out_port_name(self) -> str:
        return self.out_ports()[0].name

    def _pre_start(self) -> None:
        self._value()  # raises if unbound

    #: depth of the storage read-ahead buffer (elements prefetched from the
    #: device while earlier elements are being paced and transmitted).
    PREFETCH_DEPTH = 4

    def _prefetch(self, payloads, fetched) -> Generator:
        """Device-read pipeline stage: reads run ahead of the pacing loop."""
        for position, (_payload, size_bits, _media_type) in enumerate(payloads):
            if self._stop_requested:
                break
            yield from self.io_stream.read(size_bits)
            yield from fetched.put(position)

    # -- the pacing loop -----------------------------------------------------
    def _process(self) -> Generator:
        try:
            yield from self._paced_loop()
        finally:
            # The stream is over (finished or stopped): give the device
            # bandwidth back so later streams can be admitted.
            release = getattr(self.io_stream, "release", None)
            if release is not None:
                release()

    def _paced_loop(self) -> Generator:
        port = self.port(self._out_port_name())
        t_start = self.simulator.now.seconds
        payloads = self._element_payloads()
        total = len(payloads)
        fetched = None
        if self.io_stream is not None:
            from repro.streams.buffer import StreamBuffer
            fetched = StreamBuffer(self.simulator, self.PREFETCH_DEPTH,
                                   name=f"{self.name}:prefetch")
            self.simulator.spawn(self._prefetch(payloads, fetched),
                                 name=f"{self.name}:prefetch")
        for position, (payload, size_bits, media_type) in enumerate(payloads):
            if self._stop_requested:
                break
            if self._resync is not None:
                self._resync.maybe_resync(position, self.jitter)
            offset = self._ideal_offset(position)
            lag = self.jitter.offset(position)
            if self._sync_group is not None:
                drift = getattr(self.jitter, "drift", lag)
                self._sync_group.report(self._sync_member, drift)
            ideal = WorldTime(t_start + offset)
            if fetched is not None:
                yield from fetched.get()  # wait for the device read
            if self.paced:
                target = t_start + offset + lag
                wait = target - self.simulator.now.seconds
                if wait > 0:
                    yield Delay(wait)
            element = StreamElement(payload, position, ideal, media_type, size_bits)
            yield from port.send(element)
            self.elements_produced += 1
            self._m_produced.inc()
            self._emit_each(element, last=position == total - 1)
        yield from port.send(END_OF_STREAM)
        self._emit_last()

    def _emit_each(self, element: StreamElement, last: bool) -> None:
        self._emit(EVENT_EACH_ELEMENT, element.index)
        if last:
            self._emit(EVENT_LAST_ELEMENT, element.index)

    def _emit_last(self) -> None:
        """Hook for subclass-specific final events."""


class SinkActivity(MediaActivity):
    """Base for sinks: presents elements, keeping a presentation log.

    When ``paced``, an element arriving before its scheduled presentation
    time is held until that time (real sinks present on schedule); late
    elements are presented immediately, so log latency = lateness.

    ``presentation_delay`` shifts every scheduled presentation later by a
    fixed amount — the prebuffering budget real players use to absorb
    constant pipeline latency (decode, device read, channel transfer).
    With a sufficient delay, jitter-free streams present exactly on their
    (shifted) schedule and multi-sink skew collapses to zero.
    """

    EVENT_NAMES = MediaActivity.EVENT_NAMES + (EVENT_EACH_ELEMENT, EVENT_LAST_ELEMENT)

    def __init__(self, simulator: Simulator, name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 keep_payloads: bool = True,
                 presentation_delay: float = 0.0) -> None:
        super().__init__(simulator, name, location)
        if presentation_delay < 0:
            raise ActivityError(
                f"presentation delay must be >= 0, got {presentation_delay}"
            )
        self.log = PresentationLog(self.name)
        self.keep_payloads = keep_payloads
        self.presentation_delay = presentation_delay
        self.presented: List = []
        self.elements_consumed = 0
        metrics = simulator.obs.metrics
        self._m_consumed = metrics.counter("stream.elements_presented")
        self._m_latency = metrics.histogram("stream.latency_ms",
                                            buckets=LATENCY_BUCKETS_MS)
        self._m_jitter = metrics.histogram("stream.jitter_ms",
                                           buckets=LATENCY_BUCKETS_MS)
        self._m_late = metrics.counter("stream.late_presentations")
        self._prev_latency_ms: Optional[float] = None

    def _in_port_name(self) -> str:
        return self.in_ports()[0].name

    def _scheduled_time(self, element: StreamElement) -> float:
        return element.ideal_time.seconds + self.presentation_delay

    def _process(self) -> Generator:
        port = self.port(self._in_port_name())
        while True:
            element = yield from port.receive()
            if isinstance(element, EndOfStream):
                break
            if self._stop_requested:
                continue  # drain without presenting
            if self.paced:
                wait = self._scheduled_time(element) - self.simulator.now.seconds
                if wait > 0:
                    yield Delay(wait)
            self._present(element)
            self.elements_consumed += 1
            actual = self.simulator.now
            self.log.record(element.index, element.ideal_time, actual)
            self._observe_presentation(element, actual)
            self._emit(EVENT_EACH_ELEMENT, element.index)
        self._emit(EVENT_LAST_ELEMENT, self.elements_consumed)

    def _observe_presentation(self, element: StreamElement, actual) -> None:
        """Publish per-element end-to-end latency and jitter vs ideal_time."""
        self._m_consumed.inc()
        latency_ms = (actual.seconds - element.ideal_time.seconds) * 1000.0
        self._m_latency.observe(max(0.0, latency_ms))
        if latency_ms > self.presentation_delay * 1000.0 + 1e-9:
            self._m_late.inc()
        if self._prev_latency_ms is not None:
            self._m_jitter.observe(abs(latency_ms - self._prev_latency_ms))
        self._prev_latency_ms = latency_ms
        tracer = self.simulator.obs.tracer
        if tracer.enabled:
            tracer.instant(f"{self.name}.present", "stream", track=self.name,
                           index=element.index, latency_ms=round(latency_ms, 3))

    def _present(self, element: StreamElement) -> None:
        if self.keep_payloads:
            self.presented.append(element.payload)


class TransformerActivity(MediaActivity):
    """Base for one-in/one-out transformers with a per-element cost."""

    def __init__(self, simulator: Simulator, name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 process_seconds: float = 0.0) -> None:
        super().__init__(simulator, name, location)
        if process_seconds < 0:
            raise ActivityError(f"processing cost must be >= 0, got {process_seconds}")
        self.process_seconds = process_seconds
        self.elements_processed = 0
        self._m_transformed = simulator.obs.metrics.counter(
            "stream.elements_transformed")

    def _transform(self, element: StreamElement) -> StreamElement:
        raise NotImplementedError

    def _process(self) -> Generator:
        in_port = self.in_ports()[0]
        out_port = self.out_ports()[0]
        while True:
            element = yield from in_port.receive()
            if isinstance(element, EndOfStream) or self._stop_requested:
                break
            if self.process_seconds > 0:
                yield Delay(self.process_seconds)
            yield from out_port.send(self._transform(element))
            self.elements_processed += 1
            self._m_transformed.inc()
        yield from out_port.send(END_OF_STREAM)


# ---------------------------------------------------------------------------
# Table 1: video activities
# ---------------------------------------------------------------------------

class VideoDigitizer(PacedSource):
    """Table 1 'video digitizer': analog in, raw digital out.

    The analog side is a bound :class:`LVVideoValue` (or live analog
    source); digitization cost per frame is configurable.
    """

    TABLE_ROW = ("video digitizer", "source", "analog", "raw")
    EVENT_NAMES = PacedSource.EVENT_NAMES + (EVENT_EACH_FRAME, EVENT_LAST_FRAME)

    def __init__(self, simulator: Simulator, name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 jitter: Optional[JitterModel] = None,
                 digitize_seconds: float = 0.0) -> None:
        super().__init__(simulator, name, location, jitter)
        self.digitize_seconds = digitize_seconds
        self.add_port("video_out", Direction.OUT, standard_type("video/raw"))

    def _validate_binding(self, value, port_name) -> None:
        if not isinstance(value, VideoValue) or not value.media_type.analog:
            raise MediaTypeError(
                f"digitizer {self.name!r} requires an analog video value, "
                f"got {type(value).__name__}"
            )

    def _element_payloads(self):
        value: LVVideoValue = self._value()
        start = self._start_element(value)
        raw_type = standard_type("video/raw")
        bits = value.raw_frame_bits()
        return [
            (value.frame(i), bits, raw_type)
            for i in range(start, value.num_frames)
        ]

    def _ideal_offset(self, position: int) -> float:
        value = self._value()
        start = self._start_element(value)
        return self._offset_of(value, start + position) + self.digitize_seconds

    def _emit_each(self, element, last):
        super()._emit_each(element, last)
        self._emit(EVENT_EACH_FRAME, element.index)
        if last:
            self._emit(EVENT_LAST_FRAME, element.index)


class VideoReader(PacedSource):
    """Table 1 'video reader': produces a stored video value as a stream.

    The output port carries the value's stored representation: raw frames
    for raw values, encoded chunks for compressed ones ("the paper's
    reader reads from storage; decoding is a separate activity").
    """

    TABLE_ROW = ("video reader", "source", "(storage)", "raw / compressed")
    EVENT_NAMES = PacedSource.EVENT_NAMES + (EVENT_EACH_FRAME, EVENT_LAST_FRAME)

    def __init__(self, simulator: Simulator, name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 jitter: Optional[JitterModel] = None,
                 media_type: Optional[MediaType] = None) -> None:
        super().__init__(simulator, name, location, jitter)
        self.add_port("video_out", Direction.OUT, media_type or standard_type("video/*"))

    def _validate_binding(self, value, port_name) -> None:
        if not isinstance(value, VideoValue):
            raise MediaTypeError(
                f"reader {self.name!r} requires a VideoValue, got {type(value).__name__}"
            )
        if value.media_type.analog:
            raise MediaTypeError(
                f"reader {self.name!r} cannot read analog video; use a digitizer"
            )
        port = self.port("video_out")
        if port.media_type.is_abstract:
            port.narrow(value.media_type)
        elif port.media_type != value.media_type:
            raise MediaTypeError(
                f"reader {self.name!r} port carries {port.media_type.name}, "
                f"bound value is {value.media_type.name}"
            )

    def _element_payloads(self):
        value: VideoValue = self._value()
        start = self._start_element(value)
        media_type = value.media_type
        if isinstance(value, EncodedVideoValue):
            return [
                (value.chunks[i], value.element_size_bits(i), media_type)
                for i in range(start, value.num_frames)
            ]
        bits = value.raw_frame_bits()
        return [
            (value.frame(i), bits, media_type)
            for i in range(start, value.num_frames)
        ]

    def _ideal_offset(self, position: int) -> float:
        value = self._value()
        start = self._start_element(value)
        return self._offset_of(value, start + position)

    def _emit_each(self, element, last):
        super()._emit_each(element, last)
        self._emit(EVENT_EACH_FRAME, element.index)
        if last:
            self._emit(EVENT_LAST_FRAME, element.index)


class VideoEncoder(TransformerActivity):
    """Table 1 'video encoder': raw in, compressed out."""

    TABLE_ROW = ("video encoder", "transformer", "raw", "compressed")

    def __init__(self, simulator: Simulator, codec, name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 process_seconds: float = 0.0) -> None:
        super().__init__(simulator, name, location, process_seconds)
        self.codec = codec
        self._encoder = codec.stream_encoder()
        out_type = standard_type(codec.value_class._TYPE_NAME)
        self.add_port("video_in", Direction.IN, standard_type("video/raw"))
        self.add_port("video_out", Direction.OUT, out_type)

    def _transform(self, element: StreamElement) -> StreamElement:
        chunk = self._encoder.encode_next(element.payload)
        return element.with_payload(
            chunk, self.port("video_out").media_type, len(chunk) * 8
        )


class VideoDecoder(TransformerActivity):
    """Table 1 'video decoder': compressed in, raw out."""

    TABLE_ROW = ("video decoder", "transformer", "compressed", "raw")

    def __init__(self, simulator: Simulator, codec, width: int, height: int,
                 depth: int, name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 process_seconds: float = 0.0) -> None:
        super().__init__(simulator, name, location, process_seconds)
        self.codec = codec
        self._decoder = codec.stream_decoder(width, height, depth)
        in_type = standard_type(codec.value_class._TYPE_NAME)
        self.add_port("video_in", Direction.IN, in_type)
        self.add_port("video_out", Direction.OUT, standard_type("video/raw"))
        self._raw_bits = width * height * depth

    def _transform(self, element: StreamElement) -> StreamElement:
        frame = self._decoder.decode_next(element.payload)
        return element.with_payload(frame, standard_type("video/raw"), self._raw_bits)


class VideoMixer(MediaActivity):
    """Table 1 'video mixer': raw x n in, raw out (weighted blend)."""

    TABLE_ROW = ("video mixer", "transformer", "raw x n", "raw")

    def __init__(self, simulator: Simulator, inputs: int = 2,
                 weights: Optional[Sequence[float]] = None,
                 name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 process_seconds: float = 0.0) -> None:
        super().__init__(simulator, name, location)
        if inputs < 2:
            raise ActivityError(f"a mixer needs >= 2 inputs, got {inputs}")
        self.inputs = inputs
        self.weights = list(weights) if weights is not None else [1.0 / inputs] * inputs
        if len(self.weights) != inputs:
            raise ActivityError(
                f"mixer got {len(self.weights)} weights for {inputs} inputs"
            )
        self.process_seconds = process_seconds
        self.elements_processed = 0
        for i in range(inputs):
            self.add_port(f"video_in_{i}", Direction.IN, standard_type("video/raw"))
        self.add_port("video_out", Direction.OUT, standard_type("video/raw"))

    def _process(self) -> Generator:
        in_ports = [self.port(f"video_in_{i}") for i in range(self.inputs)]
        out_port = self.port("video_out")
        while True:
            elements = []
            ended = False
            for port in in_ports:
                element = yield from port.receive()
                if isinstance(element, EndOfStream):
                    ended = True
                else:
                    elements.append(element)
            if ended or self._stop_requested:
                break
            if self.process_seconds > 0:
                yield Delay(self.process_seconds)
            mixed = self._mix(elements)
            yield from out_port.send(mixed)
            self.elements_processed += 1
        yield from out_port.send(END_OF_STREAM)

    def _mix(self, elements: List[StreamElement]) -> StreamElement:
        acc = np.zeros(elements[0].payload.shape, dtype=np.float64)
        for weight, element in zip(self.weights, elements):
            acc += weight * element.payload.astype(np.float64)
        frame = np.clip(np.round(acc), 0, 255).astype(np.uint8)
        return elements[0].with_payload(frame)


class VideoTee(MediaActivity):
    """Table 1 'video tee': raw in, raw x n out (stream duplication)."""

    TABLE_ROW = ("video tee", "transformer", "raw", "raw x n")

    def __init__(self, simulator: Simulator, outputs: int = 2,
                 name: Optional[str] = None,
                 location: Location = Location.APPLICATION) -> None:
        super().__init__(simulator, name, location)
        if outputs < 2:
            raise ActivityError(f"a tee needs >= 2 outputs, got {outputs}")
        self.outputs = outputs
        self.elements_processed = 0
        self.add_port("video_in", Direction.IN, standard_type("video/raw"))
        for i in range(outputs):
            self.add_port(f"video_out_{i}", Direction.OUT, standard_type("video/raw"))

    def _process(self) -> Generator:
        in_port = self.port("video_in")
        out_ports = [self.port(f"video_out_{i}") for i in range(self.outputs)]
        while True:
            element = yield from in_port.receive()
            if isinstance(element, EndOfStream) or self._stop_requested:
                break
            for port in out_ports:
                yield from port.send(element)
            self.elements_processed += 1
        for port in out_ports:
            yield from port.send(END_OF_STREAM)


class VideoWindow(SinkActivity):
    """Table 1 'video window': raw in, display out.

    Carries a quality factor (§4.3: ``new activity VideoWindow quality
    320x240x8@30``); frames larger than the window are spatially
    subsampled to fit — the delivered-quality path of scalable video.
    """

    TABLE_ROW = ("video window", "sink", "raw", "(display)")
    EVENT_NAMES = SinkActivity.EVENT_NAMES + (EVENT_EACH_FRAME, EVENT_LAST_FRAME)

    def __init__(self, simulator: Simulator, quality: Optional[VideoQuality] = None,
                 name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 keep_payloads: bool = True,
                 presentation_delay: float = 0.0) -> None:
        super().__init__(simulator, name, location, keep_payloads,
                         presentation_delay)
        self.quality = quality
        self.add_port("video_in", Direction.IN, standard_type("video/raw"))

    def _present(self, element: StreamElement) -> None:
        frame = element.payload
        if self.quality is not None:
            height, width = frame.shape[:2]
            divisor = max(1, min(width // self.quality.width,
                                 height // self.quality.height))
            if divisor > 1:
                frame = frame[::divisor, ::divisor]
        if self.keep_payloads:
            self.presented.append(frame)
        self._emit(EVENT_EACH_FRAME, element.index)


class VideoWriter(SinkActivity):
    """Table 1 'video writer': stream in, storage out.

    Accumulates the stream and exposes it as a new video value via
    :meth:`result`; when an ``io_stream`` (storage layer) is attached,
    each element pays device write time.
    """

    TABLE_ROW = ("video writer", "sink", "raw / compressed", "(storage)")

    def __init__(self, simulator: Simulator, name: Optional[str] = None,
                 location: Location = Location.DATABASE,
                 rate: float = 30.0, codec=None,
                 geometry: Optional[tuple] = None) -> None:
        super().__init__(simulator, name, location, keep_payloads=True)
        self.rate = rate
        self.codec = codec
        self.geometry = geometry  # (width, height, depth) for encoded streams
        self.io_stream = None
        self.paced = False  # writers persist as fast as the stream arrives
        self.add_port("video_in", Direction.IN, standard_type("video/*"))

    def _process(self) -> Generator:
        port = self.port("video_in")
        while True:
            element = yield from port.receive()
            if isinstance(element, EndOfStream):
                break
            if self.io_stream is not None:
                yield from self.io_stream.write(element.size_bits)
            self.presented.append(element.payload)
            self.elements_consumed += 1
            self.log.record(element.index, element.ideal_time, self.simulator.now)
            self._emit(EVENT_EACH_ELEMENT, element.index)
        self._emit(EVENT_LAST_ELEMENT, self.elements_consumed)

    def result(self) -> VideoValue:
        """The written stream as a new video value."""
        if not self.presented:
            raise ActivityError(f"writer {self.name!r} received no elements")
        first = self.presented[0]
        if isinstance(first, bytes):
            if self.codec is None or self.geometry is None:
                raise ActivityError(
                    f"writer {self.name!r} stored encoded chunks; construct it "
                    f"with codec= and geometry=(w, h, depth) to build a value"
                )
            width, height, depth = self.geometry
            return self.codec.value_class(
                list(self.presented), self.codec, width, height, depth, rate=self.rate
            )
        return RawVideoValue(np.stack(self.presented), rate=self.rate)


# ---------------------------------------------------------------------------
# audio / text / MIDI activities ("the following would also apply to audio")
# ---------------------------------------------------------------------------

class AudioReader(PacedSource):
    """Audio source streaming a bound AudioValue in sample blocks."""

    TABLE_ROW = ("audio reader", "source", "(storage)", "pcm / compressed")

    def __init__(self, simulator: Simulator, name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 jitter: Optional[JitterModel] = None,
                 block_samples: int = 1024) -> None:
        super().__init__(simulator, name, location, jitter)
        if block_samples < 1:
            raise ActivityError(f"block size must be >= 1, got {block_samples}")
        self.block_samples = block_samples
        self.add_port("audio_out", Direction.OUT, standard_type("audio/*"))

    def _validate_binding(self, value, port_name) -> None:
        if not isinstance(value, AudioValue):
            raise MediaTypeError(
                f"audio reader {self.name!r} requires an AudioValue, "
                f"got {type(value).__name__}"
            )
        port = self.port("audio_out")
        if port.media_type.is_abstract:
            port.narrow(value.media_type)

    def _element_payloads(self):
        value: AudioValue = self._value()
        samples = value.samples()
        media_type = value.media_type
        bits_per_sample = value.num_channels * value.depth
        # Cue rounds down to a block boundary.
        first = (self._start_element(value) // self.block_samples) * self.block_samples
        blocks = []
        for lo in range(first, value.num_samples, self.block_samples):
            block = samples[:, lo:lo + self.block_samples]
            blocks.append((block, block.shape[1] * bits_per_sample, media_type))
        return blocks

    def _ideal_offset(self, position: int) -> float:
        value = self._value()
        first = (self._start_element(value) // self.block_samples) * self.block_samples
        return self._offset_of(value, first + position * self.block_samples)


class AudioEncoder(TransformerActivity):
    """PCM block in, compressed block out (µ-law or ADPCM)."""

    TABLE_ROW = ("audio encoder", "transformer", "pcm", "compressed")

    def __init__(self, simulator: Simulator, codec, name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 process_seconds: float = 0.0) -> None:
        super().__init__(simulator, name, location, process_seconds)
        self.codec = codec
        out_name = "audio/mulaw" if codec.name == "mulaw" else "audio/adpcm"
        self.add_port("audio_in", Direction.IN, standard_type("audio/*"))
        self.add_port("audio_out", Direction.OUT, standard_type(out_name))

    def _transform(self, element: StreamElement) -> StreamElement:
        block = element.payload
        if self.codec.name == "mulaw":
            from repro.codecs.audio import encode_mulaw
            data = encode_mulaw(block).tobytes()
        else:
            from repro.codecs.audio import _adpcm_encode_channel
            count = block.shape[1]
            data = count.to_bytes(4, "little") + b"".join(
                _adpcm_encode_channel(block[c]) for c in range(block.shape[0])
            )
        return element.with_payload(
            (data, block.shape), self.port("audio_out").media_type, len(data) * 8
        )


class AudioDecoder(TransformerActivity):
    """Compressed block in, PCM block out."""

    TABLE_ROW = ("audio decoder", "transformer", "compressed", "pcm")

    def __init__(self, simulator: Simulator, codec, name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 process_seconds: float = 0.0) -> None:
        super().__init__(simulator, name, location, process_seconds)
        self.codec = codec
        in_name = "audio/mulaw" if codec.name == "mulaw" else "audio/adpcm"
        self.add_port("audio_in", Direction.IN, standard_type(in_name))
        self.add_port("audio_out", Direction.OUT, standard_type("audio/pcm"))

    def _transform(self, element: StreamElement) -> StreamElement:
        data, shape = element.payload
        channels = shape[0]
        block = self.codec.decode_block(data, channels)
        bits = block.shape[1] * channels * 16
        return element.with_payload(block, standard_type("audio/pcm"), bits)


class AudioResampler(TransformerActivity):
    """PCM rate conversion by linear interpolation.

    Mixing tracks captured at different rates (a 44.1 kHz CD track with an
    8 kHz voice track, say) needs a common rate first; this transformer
    rewrites each block to the target rate, preserving its time span.
    Stream elements keep their timing identity, so downstream sinks
    present on the original schedule.
    """

    TABLE_ROW = ("audio resampler", "transformer", "pcm", "pcm")

    def __init__(self, simulator: Simulator, source_rate: float,
                 target_rate: float, name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 process_seconds: float = 0.0) -> None:
        super().__init__(simulator, name, location, process_seconds)
        if source_rate <= 0 or target_rate <= 0:
            raise ActivityError(
                f"rates must be positive, got {source_rate} -> {target_rate}"
            )
        self.source_rate = source_rate
        self.target_rate = target_rate
        self.add_port("audio_in", Direction.IN, standard_type("audio/pcm"))
        self.add_port("audio_out", Direction.OUT, standard_type("audio/pcm"))

    def resample_block(self, block: np.ndarray) -> np.ndarray:
        """Linear-interpolation rate conversion of one (channels, n) block."""
        channels, count = block.shape
        out_count = max(1, round(count * self.target_rate / self.source_rate))
        if out_count == count:
            return block
        positions = np.linspace(0.0, count - 1, out_count)
        resampled = np.empty((channels, out_count), dtype=np.int16)
        source_index = np.arange(count)
        for c in range(channels):
            resampled[c] = np.round(
                np.interp(positions, source_index, block[c].astype(np.float64))
            ).astype(np.int16)
        return resampled

    def _transform(self, element: StreamElement) -> StreamElement:
        block = self.resample_block(element.payload)
        bits = block.shape[0] * block.shape[1] * 16
        return element.with_payload(block, standard_type("audio/pcm"), bits)


class AudioMixer(MediaActivity):
    """PCM x n in, PCM out (saturating sum)."""

    TABLE_ROW = ("audio mixer", "transformer", "pcm x n", "pcm")

    def __init__(self, simulator: Simulator, inputs: int = 2,
                 name: Optional[str] = None,
                 location: Location = Location.APPLICATION) -> None:
        super().__init__(simulator, name, location)
        if inputs < 2:
            raise ActivityError(f"a mixer needs >= 2 inputs, got {inputs}")
        self.inputs = inputs
        self.elements_processed = 0
        for i in range(inputs):
            self.add_port(f"audio_in_{i}", Direction.IN, standard_type("audio/pcm"))
        self.add_port("audio_out", Direction.OUT, standard_type("audio/pcm"))

    def _process(self) -> Generator:
        in_ports = [self.port(f"audio_in_{i}") for i in range(self.inputs)]
        out_port = self.port("audio_out")
        while True:
            blocks = []
            ended = False
            for port in in_ports:
                element = yield from port.receive()
                if isinstance(element, EndOfStream):
                    ended = True
                else:
                    blocks.append(element)
            if ended or self._stop_requested:
                break
            width = min(b.payload.shape[1] for b in blocks)
            acc = np.zeros((blocks[0].payload.shape[0], width), dtype=np.int32)
            for block in blocks:
                acc += block.payload[:, :width].astype(np.int32)
            mixed = np.clip(acc, -32768, 32767).astype(np.int16)
            # The mix is truncated to the shortest input block, so the
            # wire size must be restated rather than inherited.
            yield from out_port.send(
                blocks[0].with_payload(mixed, size_bits=mixed.size * 16))
            self.elements_processed += 1
        yield from out_port.send(END_OF_STREAM)


class Speaker(SinkActivity):
    """Audio sink: 'presents' PCM blocks, logging presentation times."""

    TABLE_ROW = ("speaker", "sink", "pcm", "(DAC)")

    def __init__(self, simulator: Simulator, quality=None,
                 name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 keep_payloads: bool = True,
                 presentation_delay: float = 0.0) -> None:
        super().__init__(simulator, name, location, keep_payloads,
                         presentation_delay)
        self.quality = quality
        self.add_port("audio_in", Direction.IN, standard_type("audio/pcm"))

    def pcm(self) -> np.ndarray:
        """All presented blocks concatenated."""
        if not self.presented:
            raise ActivityError(f"speaker {self.name!r} presented nothing")
        return np.concatenate(self.presented, axis=1)


class AudioWriter(SinkActivity):
    """Audio sink persisting the stream as a new RawAudioValue."""

    TABLE_ROW = ("audio writer", "sink", "pcm", "(storage)")

    def __init__(self, simulator: Simulator, name: Optional[str] = None,
                 location: Location = Location.DATABASE,
                 sample_rate: float = 44100.0) -> None:
        super().__init__(simulator, name, location, keep_payloads=True)
        self.sample_rate = sample_rate
        self.io_stream = None
        self.paced = False
        self.add_port("audio_in", Direction.IN, standard_type("audio/pcm"))

    def _present(self, element: StreamElement) -> None:
        super()._present(element)

    def result(self):
        from repro.values.audio import RawAudioValue
        if not self.presented:
            raise ActivityError(f"writer {self.name!r} received no elements")
        return RawAudioValue(
            np.concatenate(self.presented, axis=1), sample_rate=self.sample_rate
        )


class TextReader(PacedSource):
    """Source streaming a TextStreamValue item by item."""

    TABLE_ROW = ("text reader", "source", "(storage)", "text")

    def __init__(self, simulator: Simulator, name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 jitter: Optional[JitterModel] = None) -> None:
        super().__init__(simulator, name, location, jitter)
        self.add_port("text_out", Direction.OUT, standard_type("text/stream"))

    def _validate_binding(self, value, port_name) -> None:
        if not isinstance(value, TextStreamValue):
            raise MediaTypeError(
                f"text reader {self.name!r} requires a TextStreamValue, "
                f"got {type(value).__name__}"
            )

    def _element_payloads(self):
        value: TextStreamValue = self._value()
        media_type = value.media_type
        start = self._start_element(value)
        return [
            (value.item(i), value.element_size_bits(i), media_type)
            for i in range(start, value.element_count)
        ]

    def _ideal_offset(self, position: int) -> float:
        value = self._value()
        start = self._start_element(value)
        return self._offset_of(value, start + position)


class SubtitleWindow(SinkActivity):
    """Text sink: presents subtitle items."""

    TABLE_ROW = ("subtitle window", "sink", "text", "(display)")

    def __init__(self, simulator: Simulator, name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 presentation_delay: float = 0.0) -> None:
        super().__init__(simulator, name, location, keep_payloads=True,
                         presentation_delay=presentation_delay)
        self.add_port("text_in", Direction.IN, standard_type("text/stream"))

    def texts(self) -> List[str]:
        return [item.text for item in self.presented]


class MIDISource(PacedSource):
    """Source synthesizing a bound MIDIValue to PCM blocks on the fly.

    The paper's 'alternate representation' path: the stored value is MIDI
    events; what flows is synthesized audio.
    """

    TABLE_ROW = ("midi source", "source", "(storage, midi)", "pcm")

    def __init__(self, simulator: Simulator, synthesizer=None,
                 name: Optional[str] = None,
                 location: Location = Location.DATABASE,
                 jitter: Optional[JitterModel] = None,
                 block_samples: int = 1024) -> None:
        super().__init__(simulator, name, location, jitter)
        if synthesizer is None:
            from repro.codecs.midisynth import MIDISynthesizer
            synthesizer = MIDISynthesizer()
        self.synthesizer = synthesizer
        self.block_samples = block_samples
        self.add_port("audio_out", Direction.OUT, standard_type("audio/pcm"))
        self._rendered = None

    def _validate_binding(self, value, port_name) -> None:
        if not isinstance(value, MIDIValue):
            raise MediaTypeError(
                f"MIDI source {self.name!r} requires a MIDIValue, "
                f"got {type(value).__name__}"
            )
        self._rendered = None

    def _element_payloads(self):
        if self._rendered is None:
            self._rendered = self.synthesizer.render(self._value())
        audio = self._rendered
        samples = audio.samples()
        bits_per_sample = audio.num_channels * audio.depth
        media_type = audio.media_type
        return [
            (samples[:, lo:lo + self.block_samples],
             min(self.block_samples, audio.num_samples - lo) * bits_per_sample,
             media_type)
            for lo in range(0, audio.num_samples, self.block_samples)
        ]

    def _ideal_offset(self, position: int) -> float:
        if self._rendered is None:
            self._rendered = self.synthesizer.render(self._value())
        # Rendered audio starts at world time 0; cue shifts the offset.
        return (
            position * self.block_samples / self._rendered.sample_rate
            - self._cue_position.seconds
        )


# ---------------------------------------------------------------------------
# Table 1 reproduction
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class CatalogRow:
    activity: str
    kind: str
    input_type: str
    output_type: str


class ActivityCatalog:
    """Reprints Table 1 from the live activity classes."""

    VIDEO_CLASSES = (
        VideoDigitizer, VideoReader, VideoEncoder, VideoDecoder,
        VideoMixer, VideoTee, VideoWindow, VideoWriter,
    )
    AUDIO_CLASSES = (
        AudioReader, AudioEncoder, AudioDecoder, AudioMixer, Speaker, AudioWriter,
    )
    OTHER_CLASSES = (TextReader, SubtitleWindow, MIDISource)

    @classmethod
    def rows(cls, include_audio: bool = False) -> List[CatalogRow]:
        classes = cls.VIDEO_CLASSES + (
            cls.AUDIO_CLASSES + cls.OTHER_CLASSES if include_audio else ()
        )
        return [CatalogRow(*klass.TABLE_ROW) for klass in classes]

    @classmethod
    def table(cls, include_audio: bool = False) -> str:
        """Format the catalog rows as the aligned Table 1 text."""
        rows = cls.rows(include_audio)
        header = CatalogRow("activity", "kind", "input port data type",
                            "output port data type")
        all_rows = [header] + rows
        widths = [
            max(len(getattr(r, f)) for r in all_rows)
            for f in ("activity", "kind", "input_type", "output_type")
        ]
        def fmt(row: CatalogRow) -> str:
            return "  ".join(
                getattr(row, f).ljust(w)
                for f, w in zip(("activity", "kind", "input_type", "output_type"), widths)
            ).rstrip()
        lines = [fmt(header), "  ".join("-" * w for w in widths)]
        lines.extend(fmt(r) for r in rows)
        return "\n".join(lines)
