"""Flow composition: AV activities (paper §4.2, Table 1, Fig. 2).

"Our approach is to give applications control over active AV data, that
is streams, through the creation and manipulation of instances of
'activity classes'."

* :class:`MediaActivity` — the abstract framework class: ports, events,
  ``Bind`` / ``Cue`` / ``Start`` / ``Stop`` / ``Catch``;
* :class:`Port` / :class:`Connection` — typed, directed stream endpoints
  and the rule "an 'in' port can be connected to an 'out' port provided
  they are of the same data type";
* :class:`CompositeActivity` — flow composition's second mechanism:
  component activities with re-exported ports and maintained
  synchronization;
* :class:`ActivityGraph` — a validated group of connected activities;
* :mod:`repro.activities.library` — the full Table 1 catalog plus the
  audio/text equivalents.
"""

from repro.activities.base import ActivityKind, ActivityState, Location, MediaActivity
from repro.activities.composite import CompositeActivity, MultiSink, MultiSource
from repro.activities.events import (
    EVENT_EACH_ELEMENT,
    EVENT_EACH_FRAME,
    EVENT_FINISHED,
    EVENT_LAST_ELEMENT,
    EVENT_LAST_FRAME,
    EVENT_STARTED,
    EVENT_STOPPED,
    EventDispatcher,
)
from repro.activities.graph import ActivityGraph
from repro.activities.ports import Connection, Direction, Port

__all__ = [
    "MediaActivity",
    "ActivityState",
    "ActivityKind",
    "Location",
    "Port",
    "Direction",
    "Connection",
    "CompositeActivity",
    "MultiSource",
    "MultiSink",
    "ActivityGraph",
    "EventDispatcher",
    "EVENT_STARTED",
    "EVENT_STOPPED",
    "EVENT_FINISHED",
    "EVENT_EACH_ELEMENT",
    "EVENT_LAST_ELEMENT",
    "EVENT_EACH_FRAME",
    "EVENT_LAST_FRAME",
]
