"""Activity event notification (paper §4.2).

"As an activity proceeds it generates events which can be 'caught' by
applications.  In the example above, the VideoSource class identifies two
events, EACH-FRAME and LAST-FRAME.  An application could instantiate this
class, request notification on a frame-by-frame basis ... start the
activity and then wait to be notified."

Events are named; handlers are plain callables invoked synchronously (in
virtual time) as ``handler(activity, event_name, payload)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Tuple

from repro.errors import ActivityError

if TYPE_CHECKING:  # pragma: no cover
    from repro.activities.base import MediaActivity

# Generic lifecycle events every activity provides.
EVENT_STARTED = "STARTED"
EVENT_STOPPED = "STOPPED"
EVENT_FINISHED = "FINISHED"
# Per-element events of streaming activities.
EVENT_EACH_ELEMENT = "EACH_ELEMENT"
EVENT_LAST_ELEMENT = "LAST_ELEMENT"
# The paper's video-specific aliases.
EVENT_EACH_FRAME = "EACH_FRAME"
EVENT_LAST_FRAME = "LAST_FRAME"

Handler = Callable[["MediaActivity", str, Any], None]


class EventDispatcher:
    """Per-activity registry of event handlers."""

    def __init__(self, event_names: Tuple[str, ...]) -> None:
        self._event_names = tuple(event_names)
        self._handlers: Dict[str, List[Handler]] = {name: [] for name in event_names}
        self.emit_counts: Dict[str, int] = {name: 0 for name in event_names}

    @property
    def event_names(self) -> Tuple[str, ...]:
        return self._event_names

    def catch(self, event_name: str, handler: Handler) -> None:
        """The paper's ``Catch(Event, Handler)``."""
        if event_name not in self._handlers:
            raise ActivityError(
                f"unknown event {event_name!r} (this activity provides {self._event_names})"
            )
        self._handlers[event_name].append(handler)

    def uncatch(self, event_name: str, handler: Handler) -> None:
        try:
            self._handlers[event_name].remove(handler)
        except (KeyError, ValueError):
            raise ActivityError(
                f"handler not registered for event {event_name!r}"
            ) from None

    def emit(self, activity: "MediaActivity", event_name: str, payload: Any = None) -> None:
        if event_name not in self._handlers:
            raise ActivityError(f"activity cannot emit undeclared event {event_name!r}")
        self.emit_counts[event_name] += 1
        for handler in list(self._handlers[event_name]):
            handler(activity, event_name, payload)

    def has_handlers(self, event_name: str) -> bool:
        return bool(self._handlers.get(event_name))
