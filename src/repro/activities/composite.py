"""Composite activities (paper §4.2, Fig. 2; §4.3 MultiSource/MultiSink).

"Composite activities can be formed which contain component activities.
It is possible to connect an 'out' port of a component to the 'out' of
the composite in which it is contained — provided the ports are of the
same data type.  A similar rule applies to the connection of 'in' ports."

"activities which process composite AV values will generally contain
components for each track of the value.  Such a composite would maintain
the synchronization of its component activities."

Exported ports are proxy :class:`~repro.activities.ports.Port` objects;
connections made to them attach to the underlying component port, so "an
application working with a source activity need not be aware of its
internal configuration" (Fig. 2, bottom).
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.activities.base import ActivityState, Location, MediaActivity
from repro.activities.ports import Port
from repro.avtime import WorldTime
from repro.errors import ActivityError, ActivityStateError, PortError
from repro.sim import Simulator, WaitProcess
from repro.streams.sync import Resynchronizer, SyncGroup
from repro.temporal.composite import TemporalComposite


class CompositeActivity(MediaActivity):
    """An activity containing component activities.

    Parameters
    ----------
    resync_interval:
        When set, every paced component source gets a
        :class:`Resynchronizer` with this element interval and reports its
        drift to the composite's :class:`SyncGroup` — the paper's
        "maintain the synchronization of its component activities".
        ``None`` disables active resynchronization (the group still
        *measures* skew).
    """

    def __init__(self, simulator: Simulator, name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 resync_interval: Optional[int] = None) -> None:
        super().__init__(simulator, name, location)
        self.components: Dict[str, MediaActivity] = {}
        self._track_of: Dict[str, Optional[str]] = {}
        self.sync_group = SyncGroup(self.name)
        self.resync_interval = resync_interval

    # -- composition ---------------------------------------------------------
    def install(self, component: MediaActivity,
                track: Optional[str] = None) -> MediaActivity:
        """The paper's ``install <activity> in <composite>``."""
        if component.name in self.components:
            raise ActivityError(
                f"component {component.name!r} already installed in {self.name!r}"
            )
        if component is self:
            raise ActivityError("a composite cannot contain itself")
        self.components[component.name] = component
        self._track_of[component.name] = track
        if hasattr(component, "attach_sync"):
            member = track or component.name
            resync = (
                Resynchronizer(self.resync_interval)
                if self.resync_interval is not None else None
            )
            component.attach_sync(self.sync_group, member, resync)
        return component

    def export(self, inner_port: Port, name: Optional[str] = None) -> Port:
        """Re-export a component's port on the composite boundary.

        Enforces the paper's rule: out connects to out, in connects to in,
        same data type (the proxy inherits the inner port's type).
        """
        owner = inner_port.owner
        if owner is None or owner.name not in self.components:
            raise PortError(
                f"cannot export {inner_port.full_name}: not a port of an "
                f"installed component of {self.name!r}"
            )
        proxy = self.add_port(
            name or inner_port.name, inner_port.direction, inner_port.media_type
        )
        proxy.proxy_for = inner_port
        return proxy

    def simple(self) -> bool:
        """The paper's simple/composite distinction."""
        return False

    def attach_sync(self, group: SyncGroup, member: str,
                    resync: Optional[Resynchronizer] = None) -> None:
        """Join an outer sync group: delegate to syncable components."""
        targets = [c for c in self.components.values() if hasattr(c, "attach_sync")]
        for component in targets:
            name = member if len(targets) == 1 else f"{member}.{component.name}"
            component.attach_sync(group, name, resync)

    # -- binding ------------------------------------------------------------
    def bind(self, value, port_name: Optional[str] = None) -> None:
        """Bind a temporally composed value: distribute tracks to components.

        Components installed with a ``track`` receive that track's value;
        binding a non-composite value requires exactly one component.
        """
        if self.state is ActivityState.RUNNING:
            raise ActivityStateError(f"cannot bind while {self.name!r} is running")
        if isinstance(value, TemporalComposite):
            for comp_name, component in self.components.items():
                track = self._track_of[comp_name]
                if track is None:
                    continue
                component.bind(value.value(track))
            self._bound = value
            return
        bindable = [c for c, t in self._track_of.items() if t is None]
        if len(self.components) == 1:
            next(iter(self.components.values())).bind(value)
            self._bound = value
            return
        raise ActivityError(
            f"cannot bind a single value to composite {self.name!r} with "
            f"{len(self.components)} components (bind a TemporalComposite, "
            f"or install components with track names); "
            f"untracked components: {bindable}"
        )

    # -- control ---------------------------------------------------------
    def cue(self, when: WorldTime) -> None:
        super().cue(when)
        for component in self.components.values():
            component.cue(when)

    def stop(self) -> None:
        super().stop()
        for component in self.components.values():
            if component.state is ActivityState.RUNNING:
                component.stop()

    def _pre_start(self) -> None:
        if not self.components:
            raise ActivityError(f"composite {self.name!r} has no components")

    def _process(self) -> Generator:
        procs = [component.start() for component in self.components.values()]
        for proc in procs:
            yield WaitProcess(proc)

    # -- introspection ---------------------------------------------------
    def max_skew(self) -> float:
        """Largest inter-component drift spread observed (seconds)."""
        return self.sync_group.max_skew()


class MultiSource(CompositeActivity):
    """The §4.3 composite source: one component source per track.

    ``install`` exports each component source's out ports automatically
    under ``<track>`` (or the component name), so a matching
    :class:`MultiSink` can be paired port-by-port.
    """

    def install(self, component: MediaActivity,
                track: Optional[str] = None) -> MediaActivity:
        super().install(component, track)
        label = track or component.name
        outs = component.out_ports()
        if not outs:
            raise ActivityError(
                f"MultiSource component {component.name!r} has no out ports"
            )
        for port in outs:
            name = label if len(outs) == 1 else f"{label}.{port.name}"
            self.export(port, name)
        return component


class MultiSink(CompositeActivity):
    """The §4.3 composite sink: one component sink per track."""

    def install(self, component: MediaActivity,
                track: Optional[str] = None) -> MediaActivity:
        super().install(component, track)
        label = track or component.name
        ins = component.in_ports()
        if not ins:
            raise ActivityError(
                f"MultiSink component {component.name!r} has no in ports"
            )
        for port in ins:
            name = label if len(ins) == 1 else f"{label}.{port.name}"
            self.export(port, name)
        return component
