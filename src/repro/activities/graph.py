"""Activity graphs (paper §4.2).

"A group of activities connected in this fashion is called an *activity
graph*."  The graph owns the connections between activity ports, validates
structure (type-checked connections, no dangling in-ports at start, no
cycles) and runs the whole configuration on the DES kernel.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.activities.base import ActivityState, MediaActivity
from repro.activities.composite import CompositeActivity
from repro.activities.ports import Connection, Direction, Port
from repro.avtime import WorldTime
from repro.errors import ConnectionError_, GraphError
from repro.sim import Simulator


class ActivityGraph:
    """A set of activities plus the connections between their ports."""

    def __init__(self, simulator: Simulator, name: str = "graph") -> None:
        self.simulator = simulator
        self.name = name
        self.activities: Dict[str, MediaActivity] = {}
        self.connections: List[Connection] = []

    # -- construction ------------------------------------------------------
    def add(self, activity: MediaActivity) -> MediaActivity:
        if activity.name in self.activities:
            raise GraphError(f"activity {activity.name!r} already in graph {self.name!r}")
        self.activities[activity.name] = activity
        return activity

    def remove(self, activity: MediaActivity) -> None:
        """Remove a top-level activity and tear down its connections.

        Connections touching the activity (or any component of it, for a
        composite) are disconnected, which releases their channel
        reservations.  Sessions call this on close so a long-lived system
        does not accrete dead activities (the churn test pins this down).
        """
        registered = self.activities.get(activity.name)
        if registered is not activity:
            raise GraphError(
                f"activity {activity.name!r} is not in graph {self.name!r}"
            )
        del self.activities[activity.name]
        members = {id(a) for a in self._flatten(activity)}
        survivors: List[Connection] = []
        for connection in self.connections:
            if (id(connection.source.owner) in members
                    or id(connection.sink.owner) in members):
                connection.disconnect()
            else:
                survivors.append(connection)
        self.connections = survivors

    def connect(self, source: Port, sink: Port, capacity: int = 8,
                reservation=None) -> Connection:
        """Create a type-checked connection between two ports.

        Both owning activities must already be in the graph (composites
        count through their exported ports).
        """
        for port in (source, sink):
            owner = port.owner
            if owner is None or not self._contains_activity(owner):
                raise GraphError(
                    f"port {port.full_name} does not belong to an activity "
                    f"in graph {self.name!r}"
                )
        connection = Connection(self.simulator, source, sink, capacity, reservation)
        self.connections.append(connection)
        return connection

    def connect_composites(self, source: CompositeActivity, sink: CompositeActivity,
                           capacity: int = 8, channel=None) -> List[Connection]:
        """Pairwise-connect two composites' exported ports (§4.3, Fig. 3).

        Exported out-ports of ``source`` pair with exported in-ports of
        ``sink`` by port name first, then by media-type compatibility.
        When ``channel`` is given, each paired stream takes a bandwidth
        reservation on it sized by the source port's bound value (or the
        channel rejects the admission).
        """
        outs = [p for p in source.ports.values() if p.direction is Direction.OUT]
        ins = {p.name: p for p in sink.ports.values() if p.direction is Direction.IN}
        if not outs:
            raise GraphError(f"composite {source.name!r} exports no out ports")
        connections = []
        unmatched_ins = dict(ins)
        for out_port in outs:
            in_port = unmatched_ins.pop(out_port.name, None)
            if in_port is None:
                candidates = [
                    p for p in unmatched_ins.values()
                    if p.media_type.accepts(out_port.media_type)
                ]
                if not candidates:
                    raise ConnectionError_(
                        f"no in-port of {sink.name!r} matches out-port "
                        f"{out_port.full_name} ({out_port.media_type.name})"
                    )
                in_port = candidates[0]
                del unmatched_ins[in_port.name]
            reservation = None
            if channel is not None:
                reservation = channel.reserve(self._port_bandwidth(out_port))
            connections.append(self.connect(out_port, in_port, capacity, reservation))
        return connections

    @staticmethod
    def _port_bandwidth(port: Port) -> float:
        """Bandwidth demand of the stream leaving ``port`` (bits/second)."""
        owner = port.resolve().owner
        value = getattr(owner, "bound_value", None)
        rate = getattr(value, "data_rate_bps", None)
        if callable(rate):
            bps = value.data_rate_bps()
            if bps > 0:
                return bps
        return 1_000_000.0  # default reservation when no value is bound yet

    # -- validation ----------------------------------------------------------
    @staticmethod
    def _flatten(activity: MediaActivity) -> List[MediaActivity]:
        """The activity and, recursively, all composite components."""
        result = [activity]
        if isinstance(activity, CompositeActivity):
            for component in activity.components.values():
                result.extend(ActivityGraph._flatten(component))
        return result

    def _contains_activity(self, activity: MediaActivity) -> bool:
        for member in self.activities.values():
            if any(a is activity for a in self._flatten(member)):
                return True
        return False

    def _leaf_activities(self) -> List[MediaActivity]:
        leaves: List[MediaActivity] = []
        for activity in self.activities.values():
            leaves.extend(
                a for a in self._flatten(activity)
                if not isinstance(a, CompositeActivity)
            )
        return leaves

    def validate(self) -> None:
        """Structural checks before start.

        * every in-port of every (leaf) activity is connected;
        * every out-port is connected;
        * the connection graph is acyclic (streams flow forward).
        """
        for activity in self._leaf_activities():
            for port in activity.ports.values():
                if port.proxy_for is not None:
                    continue
                if not port.resolve().connected:
                    raise GraphError(
                        f"port {port.full_name} is not connected"
                    )
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        edges: Dict[str, Set[str]] = {}
        for connection in self.connections:
            src = connection.source.owner.name
            dst = connection.sink.owner.name
            edges.setdefault(src, set()).add(dst)
        visiting: Set[str] = set()
        done: Set[str] = set()

        def visit(node: str) -> None:
            if node in done:
                return
            if node in visiting:
                raise GraphError(f"activity graph {self.name!r} contains a cycle at {node!r}")
            visiting.add(node)
            for succ in edges.get(node, ()):
                visit(succ)
            visiting.discard(node)
            done.add(node)

        for node in list(edges):
            visit(node)

    # -- control ---------------------------------------------------------
    def start_all(self) -> None:
        """Validate, then start every top-level activity."""
        self.validate()
        for activity in self.activities.values():
            activity.start()

    def stop_all(self) -> None:
        for activity in self.activities.values():
            if activity.state is ActivityState.RUNNING:
                activity.stop()

    def run(self, until: Optional[WorldTime] = None) -> WorldTime:
        """Run the simulation until all streams drain (or ``until``)."""
        return self.simulator.run(until)

    def run_to_completion(self) -> WorldTime:
        """start_all + run; the common one-shot pattern."""
        self.start_all()
        return self.run()

    # -- accounting ----------------------------------------------------------
    def total_bits_sent(self) -> int:
        return sum(c.bits_sent for c in self.connections)

    # -- the paper's graphical notation -------------------------------------
    def render_ascii(self) -> str:
        """Render the activity graph in the paper's node/arc notation.

        "Flow composition, activity graphs, simple and composite
        activities can be depicted using a graphical notion where nodes
        correspond to activities and directed arcs indicate port
        connections" (§4.2, Fig. 2).  Composites render as bracketed
        groups listing their components.
        """
        lines = []
        for activity in self.activities.values():
            if isinstance(activity, CompositeActivity):
                inner = " ".join(f"[{c.name}]" for c in activity.components.values())
                lines.append(f"[{activity.name}: {inner}]  ({activity.kind.value})")
            else:
                lines.append(f"[{activity.name}]  ({activity.kind.value})")
        for connection in self.connections:
            media = connection.source.media_type.name
            lines.append(
                f"  [{connection.source.owner.name}] --{media}--> "
                f"[{connection.sink.owner.name}]"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ActivityGraph({self.name!r}, {len(self.activities)} activities, "
            f"{len(self.connections)} connections)"
        )
