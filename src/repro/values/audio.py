"""Audio values (paper §4.1).

The paper's specialization::

    class AudioValue subclass-of MediaValue {
        int numChannel
        int depth
        int numSample
        sample[numChannel][numSample]
    }

Samples are int16 numpy arrays of shape ``(num_channels, num_samples)``.
"Digital audio is basically a sequence of digitized samples"; encoded
specializations (µ-law, ADPCM) store compressed byte blocks and decode on
access, mirroring the video hierarchy.
"""

from __future__ import annotations

import abc
from typing import Any, List, Protocol

import numpy as np

from repro.avtime import TimeMapping, WorldTime
from repro.errors import DataModelError
from repro.values.base import MediaValue
from repro.values.mediatype import MediaType, standard_type


class AudioBlockCodec(Protocol):
    """Protocol encoded audio values use to decode their blocks."""

    name: str
    block_samples: int

    def decode_block(self, block: bytes, num_channels: int) -> np.ndarray: ...


class AudioValue(MediaValue, abc.ABC):
    """Generic audio: channels of int16 samples at a sample rate.

    Object time counts *sample frames* (one sample per channel); the
    element payload at index ``i`` is the length-``num_channels`` int16
    vector of sample frame ``i``.
    """

    def __init__(self, num_channels: int, depth: int, mapping: TimeMapping) -> None:
        if num_channels <= 0:
            raise DataModelError(f"channel count must be positive, got {num_channels}")
        if depth not in (8, 16):
            raise DataModelError(f"unsupported sample depth {depth} (use 8 or 16)")
        super().__init__(mapping)
        self.num_channels = num_channels
        self.depth = depth

    @property
    def num_samples(self) -> int:
        """The paper's ``numSample`` attribute (per channel)."""
        return self.element_count

    @property
    def sample_rate(self) -> float:
        return self.mapping.rate

    @abc.abstractmethod
    def samples(self) -> np.ndarray:
        """Full decoded sample array of shape (num_channels, num_samples)."""

    def element_payload(self, index: int) -> Any:
        self._check_index(index)
        return self.samples()[:, index]

    def samples_at(self, when: WorldTime) -> np.ndarray:
        return self.element_payload(self.world_to_object(when).index)

    def sample_slice(self, start: int, count: int) -> np.ndarray:
        """Samples ``[start, start+count)`` across all channels."""
        if start < 0 or count < 0 or start + count > self.num_samples:
            raise DataModelError(
                f"slice [{start}, {start + count}) out of range [0, {self.num_samples})"
            )
        return self.samples()[:, start:start + count]


class RawAudioValue(AudioValue):
    """Uncompressed PCM audio."""

    _TYPE_NAME = "audio/pcm"

    def __init__(self, samples: np.ndarray, sample_rate: float = 44100.0,
                 depth: int = 16, mapping: TimeMapping | None = None) -> None:
        samples = np.asarray(samples, dtype=np.int16)
        if samples.ndim == 1:
            samples = samples[np.newaxis, :]
        if samples.ndim != 2:
            raise DataModelError(
                f"samples must have shape (channels, n) or (n,), got {samples.shape}"
            )
        if samples.shape[1] == 0:
            raise DataModelError("an audio value must contain at least one sample")
        super().__init__(samples.shape[0], depth, mapping or TimeMapping(sample_rate))
        self._samples = samples

    @classmethod
    def cd_audio(cls, samples: np.ndarray) -> "RawAudioValue":
        """CD encoded audio: stereo pairs of 16-bit samples at 44.1 kHz."""
        value = cls(samples, sample_rate=44100.0, depth=16)
        if value.num_channels != 2:
            raise DataModelError("CD audio requires exactly 2 channels")
        value._type_name = "audio/cd"
        return value

    _type_name: str | None = None

    @property
    def media_type(self) -> MediaType:
        return standard_type(self._type_name or self._TYPE_NAME)

    @property
    def element_count(self) -> int:
        return int(self._samples.shape[1])

    def samples(self) -> np.ndarray:
        return self._samples

    def element_size_bits(self, index: int) -> int:
        self._check_index(index)
        return self.num_channels * self.depth

    def _with_mapping(self, mapping: TimeMapping) -> "RawAudioValue":
        clone = type(self).__new__(type(self))
        AudioValue.__init__(clone, self.num_channels, self.depth, mapping)
        clone._samples = self._samples
        clone._type_name = self._type_name
        return clone


class EncodedAudioValue(AudioValue, abc.ABC):
    """Compressed audio stored as fixed-span encoded blocks."""

    _TYPE_NAME = "audio/adpcm"

    def __init__(self, blocks: List[bytes], codec: AudioBlockCodec,
                 num_channels: int, num_samples: int, sample_rate: float,
                 depth: int = 16, mapping: TimeMapping | None = None) -> None:
        if not blocks:
            raise DataModelError("an audio value must contain at least one block")
        if num_samples <= 0:
            raise DataModelError(f"sample count must be positive, got {num_samples}")
        super().__init__(num_channels, depth, mapping or TimeMapping(sample_rate))
        self._blocks = list(blocks)
        self._codec = codec
        self._num_samples = num_samples
        self._decoded: np.ndarray | None = None

    @property
    def media_type(self) -> MediaType:
        return standard_type(self._TYPE_NAME)

    @property
    def codec(self) -> AudioBlockCodec:
        return self._codec

    @property
    def blocks(self) -> List[bytes]:
        return self._blocks

    @property
    def element_count(self) -> int:
        return self._num_samples

    def samples(self) -> np.ndarray:
        if self._decoded is None:
            parts = [self._codec.decode_block(b, self.num_channels) for b in self._blocks]
            self._decoded = np.concatenate(parts, axis=1)[:, : self._num_samples]
        return self._decoded

    def element_size_bits(self, index: int) -> int:
        self._check_index(index)
        total_bits = sum(len(b) for b in self._blocks) * 8
        return max(1, total_bits // self._num_samples)

    def data_size_bits(self) -> int:
        return sum(len(b) for b in self._blocks) * 8

    def compression_ratio(self) -> float:
        raw = self.num_channels * self.depth * self._num_samples
        stored = self.data_size_bits()
        return raw / stored if stored else float("inf")

    def _with_mapping(self, mapping: TimeMapping) -> "EncodedAudioValue":
        clone = type(self).__new__(type(self))
        AudioValue.__init__(clone, self.num_channels, self.depth, mapping)
        clone._blocks = self._blocks
        clone._codec = self._codec
        clone._num_samples = self._num_samples
        clone._decoded = self._decoded
        return clone


class MuLawAudioValue(EncodedAudioValue):
    """µ-law companded 8-bit audio (telephone 'voice quality')."""

    _TYPE_NAME = "audio/mulaw"


class ADPCMAudioValue(EncodedAudioValue):
    """4-bit adaptive differential PCM audio."""

    _TYPE_NAME = "audio/adpcm"
