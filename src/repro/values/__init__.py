"""The AV data model: ``MediaValue`` and its specializations (paper §4.1).

An *AV value* is a finite sequence of digital audio or video data elements;
each value has a *media data type* governing the encoding and
interpretation of its elements and determining its data rate (paper §3.1,
definitions 1–2).

The class hierarchy mirrors the paper:

* :class:`MediaValue` — the abstract framework class with the two temporal
  coordinate systems and the ``WorldToObject`` / ``ObjectToWorld`` /
  ``Scale`` / ``Translate`` / ``Element`` behaviours;
* :class:`VideoValue` / :class:`AudioValue` — the media specializations of
  §4.1, plus :class:`TextStreamValue` (used by the Newscast example),
  :class:`ImageValue` ("sequence of raster images") and
  :class:`MIDIValue` (the paper's "alternate representation from which
  audio sequences are produced");
* encoded specializations "reflecting different encoding and storage
  strategies": ``JPEGVideoValue``, ``MPEGVideoValue``, ``DVIVideoValue``,
  ``CCIRVideoValue``, ``LVVideoValue`` and the encoded audio classes.
"""

from repro.values.audio import ADPCMAudioValue, AudioValue, MuLawAudioValue, RawAudioValue
from repro.values.base import MediaValue
from repro.values.image import ImageValue
from repro.values.mediatype import (
    MediaKind,
    MediaType,
    MediaTypeRegistry,
    STANDARD_TYPES,
    standard_type,
)
from repro.values.midi import MIDIEvent, MIDIValue
from repro.values.text import TextItem, TextStreamValue
from repro.values.video import (
    CCIRVideoValue,
    DVIVideoValue,
    EncodedVideoValue,
    JPEGVideoValue,
    LVVideoValue,
    MPEGVideoValue,
    RawVideoValue,
    VideoValue,
)

__all__ = [
    "MediaValue",
    "MediaKind",
    "MediaType",
    "MediaTypeRegistry",
    "STANDARD_TYPES",
    "standard_type",
    "VideoValue",
    "RawVideoValue",
    "EncodedVideoValue",
    "JPEGVideoValue",
    "MPEGVideoValue",
    "DVIVideoValue",
    "CCIRVideoValue",
    "LVVideoValue",
    "AudioValue",
    "RawAudioValue",
    "MuLawAudioValue",
    "ADPCMAudioValue",
    "TextStreamValue",
    "TextItem",
    "ImageValue",
    "MIDIValue",
    "MIDIEvent",
]
