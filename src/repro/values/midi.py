"""MIDI-like event tracks.

The paper (§1) notes that an AV database "may store ... an alternate
representation from which the audio or video sequences are produced
(examples would be synthesizing digital audio from MIDI data ...)".
``MIDIValue`` is that alternate representation: a sorted sequence of
note events.  The synthesizer in :mod:`repro.codecs.midisynth` renders a
``MIDIValue`` into a :class:`~repro.values.RawAudioValue`.

Object time for a MIDI value counts *ticks* at a tick rate (default 480
ticks/s); the element at index ``i`` is the tuple of events starting at
tick ``i`` (usually empty — MIDI is sparse).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence, Tuple

from repro.avtime import TimeMapping
from repro.errors import DataModelError
from repro.values.base import MediaValue
from repro.values.mediatype import MediaType, standard_type


@dataclass(frozen=True, slots=True)
class MIDIEvent:
    """A note event: pitch + velocity over a tick span."""

    tick: int
    note: int  # MIDI note number, 0..127 (69 = A4 = 440 Hz)
    velocity: int  # 1..127
    duration_ticks: int

    def __post_init__(self) -> None:
        if self.tick < 0:
            raise DataModelError(f"event tick must be >= 0, got {self.tick}")
        if not 0 <= self.note <= 127:
            raise DataModelError(f"MIDI note must be in [0, 127], got {self.note}")
        if not 1 <= self.velocity <= 127:
            raise DataModelError(f"MIDI velocity must be in [1, 127], got {self.velocity}")
        if self.duration_ticks <= 0:
            raise DataModelError(f"event duration must be positive, got {self.duration_ticks}")

    @property
    def frequency_hz(self) -> float:
        """Equal-temperament frequency of the note."""
        return 440.0 * 2.0 ** ((self.note - 69) / 12.0)


class MIDIValue(MediaValue):
    """A sorted track of note events at a tick rate."""

    def __init__(self, events: Sequence[MIDIEvent], ticks_per_second: float = 480.0,
                 mapping: TimeMapping | None = None) -> None:
        if not events:
            raise DataModelError("a MIDI value must contain at least one event")
        super().__init__(mapping or TimeMapping(ticks_per_second))
        self._events = tuple(sorted(events, key=lambda e: (e.tick, e.note)))
        self._length_ticks = max(e.tick + e.duration_ticks for e in self._events)

    @property
    def media_type(self) -> MediaType:
        return standard_type("midi/events")

    @property
    def events(self) -> Tuple[MIDIEvent, ...]:
        return self._events

    @property
    def ticks_per_second(self) -> float:
        return self.mapping.rate

    @property
    def element_count(self) -> int:
        return self._length_ticks

    def element_payload(self, index: int) -> Any:
        """All events that start exactly at tick ``index``."""
        self._check_index(index)
        return tuple(e for e in self._events if e.tick == index)

    def element_size_bits(self, index: int) -> int:
        self._check_index(index)
        # 3 bytes per event message, amortized as in a standard MIDI file.
        return sum(24 for e in self._events if e.tick == index)

    def active_at_tick(self, tick: int) -> Tuple[MIDIEvent, ...]:
        """Events sounding (started, not yet ended) at ``tick``."""
        return tuple(e for e in self._events if e.tick <= tick < e.tick + e.duration_ticks)

    def _with_mapping(self, mapping: TimeMapping) -> "MIDIValue":
        clone = type(self).__new__(type(self))
        MediaValue.__init__(clone, mapping)
        clone._events = self._events
        clone._length_ticks = self._length_ticks
        return clone
