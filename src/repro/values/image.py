"""Still raster images.

The paper's ``VideoValue`` is declared as ``ImageValue frame[numFrame]`` —
video frames *are* images.  ``ImageValue`` is a single raster; it is also
the element type of the rendered image streams of Scenario II ("a new
visualization of the world is rendered ... resulting in a sequence of
images (an AV value) being sent to the user").

As a ``MediaValue`` an image is a one-element sequence whose presentation
duration defaults to one second (a still shown for a configurable span).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.avtime import TimeMapping
from repro.errors import DataModelError
from repro.values.base import MediaValue
from repro.values.mediatype import MediaType, standard_type
from repro.values.video import validate_frame


class ImageValue(MediaValue):
    """A single raster image (grayscale uint8 or RGB uint8)."""

    def __init__(self, pixels: np.ndarray, display_seconds: float = 1.0) -> None:
        pixels = np.asarray(pixels, dtype=np.uint8)
        if pixels.ndim == 2:
            depth = 8
            height, width = pixels.shape
        elif pixels.ndim == 3 and pixels.shape[2] == 3:
            depth = 24
            height, width, _ = pixels.shape
        else:
            raise DataModelError(f"image must be (h,w) or (h,w,3) uint8, got {pixels.shape}")
        if display_seconds <= 0:
            raise DataModelError(f"display span must be positive, got {display_seconds}")
        super().__init__(TimeMapping(rate=1.0 / display_seconds))
        validate_frame(pixels, width, height, depth)
        self._pixels = pixels
        self.width = width
        self.height = height
        self.depth = depth

    @property
    def media_type(self) -> MediaType:
        return standard_type("image/raster")

    @property
    def element_count(self) -> int:
        return 1

    @property
    def pixels(self) -> np.ndarray:
        return self._pixels

    def element_payload(self, index: int) -> Any:
        self._check_index(index)
        return self._pixels

    def element_size_bits(self, index: int) -> int:
        self._check_index(index)
        return self.width * self.height * self.depth

    def _with_mapping(self, mapping: TimeMapping) -> "ImageValue":
        clone = type(self).__new__(type(self))
        MediaValue.__init__(clone, mapping)
        clone._pixels = self._pixels
        clone.width = self.width
        clone.height = self.height
        clone.depth = self.depth
        return clone
