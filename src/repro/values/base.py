"""The abstract ``MediaValue`` framework class (paper §4.1).

The paper's partial specification::

    class MediaValue {
        WorldTime   duration
        WorldTime   start
        ObjectTime  WorldToObject(WorldTime)
        WorldTime   ObjectToWorld(ObjectTime)
        Scale(float)
        Translate(WorldTime)
        MediaValue  Element(WorldTime)
    }

"The units of world time are specified by the MediaValue class, while the
units of object time are a subclass responsibility."  Here the mapping
between the two axes is delegated to :class:`~repro.avtime.TimeMapping`;
subclasses supply the element count, the native element rate and the
actual element payloads.

``Scale`` and ``Translate`` are *non-mutating* — they return a re-mapped
value sharing the underlying element storage, which implements the paper's
"data sharing through aggregation" storage-minimization requirement (§2).
"""

from __future__ import annotations

import abc
from typing import Any

from repro.avtime import Interval, ObjectTime, TimeMapping, WorldTime
from repro.errors import TemporalError
from repro.values.mediatype import MediaType


class MediaValue(abc.ABC):
    """Abstract base of all AV values.

    Concrete subclasses must provide element storage and may not be
    instantiated through this class.  The temporal interface is fully
    implemented here in terms of a :class:`TimeMapping`.
    """

    def __init__(self, mapping: TimeMapping) -> None:
        self._mapping = mapping

    # -- subclass responsibilities --------------------------------------
    @property
    @abc.abstractmethod
    def media_type(self) -> MediaType:
        """The media data type governing this value's elements."""

    @property
    @abc.abstractmethod
    def element_count(self) -> int:
        """Number of data elements in the (finite) sequence."""

    @abc.abstractmethod
    def element_payload(self, index: int) -> Any:
        """The raw payload of element ``index`` (frame array, sample...)."""

    @abc.abstractmethod
    def element_size_bits(self, index: int) -> int:
        """Stored size of element ``index`` in bits."""

    @abc.abstractmethod
    def _with_mapping(self, mapping: TimeMapping) -> "MediaValue":
        """A copy of this value presented under ``mapping`` (shared storage)."""

    # -- the paper's temporal interface -----------------------------------
    @property
    def mapping(self) -> TimeMapping:
        return self._mapping

    @property
    def start(self) -> WorldTime:
        """World time at which the value's first element is presented."""
        return self._mapping.start

    @property
    def duration(self) -> WorldTime:
        """World-time presentation span of the whole value."""
        return self._mapping.duration_of(self.element_count)

    @property
    def interval(self) -> Interval:
        """The value's presentation interval ``[start, start+duration)``."""
        return Interval(self.start, self.duration)

    def world_to_object(self, when: WorldTime) -> ObjectTime:
        """Element index presented at world time ``when``.

        Raises :class:`TemporalError` when ``when`` falls outside the
        value's presentation interval.
        """
        index = self._mapping.world_to_object(when)
        if index.index < 0 or index.index >= self.element_count:
            raise TemporalError(
                f"world time {when!r} outside value interval {self.interval!r}"
            )
        return index

    def object_to_world(self, index: ObjectTime) -> WorldTime:
        """World time at which element ``index`` begins presentation."""
        self._check_index(index.index)
        return self._mapping.object_to_world(index)

    def scale(self, factor: float) -> "MediaValue":
        """Stretch presentation by ``factor`` (``> 1`` plays slower)."""
        return self._with_mapping(self._mapping.scaled(factor))

    def translate(self, delta: WorldTime) -> "MediaValue":
        """Shift the presentation start by ``delta``."""
        return self._with_mapping(self._mapping.translated(delta))

    def element(self, when: WorldTime) -> Any:
        """The paper's ``Element(WorldTime)``: payload presented at ``when``."""
        return self.element_payload(self.world_to_object(when).index)

    # -- data rate (definition 2) ---------------------------------------
    @property
    def rate(self) -> float:
        """Native element rate (elements per second of media time)."""
        return self._mapping.rate

    def data_size_bits(self) -> int:
        """Total stored size of all elements, in bits."""
        return sum(self.element_size_bits(i) for i in range(self.element_count))

    def data_rate_bps(self) -> float:
        """Average data rate in bits per second of presentation time.

        "The type of v (and v itself) determine r, the data rate of v":
        for constant-size encodings this is exactly the type's rate; for
        variable-size encodings (MPEG-like) it is the value's own average.
        """
        seconds = self.duration.seconds
        if seconds == 0:
            return 0.0
        return self.data_size_bits() / seconds

    # -- helpers -----------------------------------------------------------
    def _check_index(self, index: int) -> None:
        if index < 0 or index >= self.element_count:
            raise TemporalError(
                f"element index {index} out of range [0, {self.element_count})"
            )

    def __len__(self) -> int:
        return self.element_count

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(type={self.media_type.name}, "
            f"n={self.element_count}, rate={self.rate:g}/s, "
            f"dur={self.duration.seconds:g}s)"
        )
