"""Media data types (paper §3.1, definition 2).

"Each AV value has a media data type governing the encoding and
interpretation of its elements.  The type of v (and v itself) determine r,
the data rate of v."

A :class:`MediaType` names a (kind, encoding) pair and knows whether the
encoding is compressed — the distinction Table 1 draws between "raw" and
"compressed" port data types.  The :class:`MediaTypeRegistry` holds the
standard types the paper names (CD audio, CCIR 601 video, JPEG/MPEG/DVI
compressed video, LaserVision analog video) plus the raw working types.

Port-type compatibility (flow composition, §4.2) is *exact-type* matching
with one relaxation: a port declared with an abstract kind-level type
(e.g. "any video") accepts any type of that kind.  This mirrors the
paper's abstract activities whose port types "are not fully specified".
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, Optional

from repro.errors import MediaTypeError


class MediaKind(Enum):
    """Top-level medium classification."""

    VIDEO = "video"
    AUDIO = "audio"
    TEXT = "text"
    IMAGE = "image"
    MIDI = "midi"
    GEOMETRY = "geometry"  # camera poses / scene streams (Scenario II)


@dataclass(frozen=True, slots=True)
class MediaType:
    """A named media data type.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"video/jpeg"``.
    kind:
        The medium (:class:`MediaKind`).
    encoding:
        Encoding label, e.g. ``"raw"``, ``"jpeg"``, ``"pcm"``.  ``"*"``
        marks an abstract kind-level type that matches any encoding.
    compressed:
        Whether elements are compressed (Table 1's raw/compressed split).
    analog:
        Whether the representation is analog (LaserVision videodiscs);
        analog values must be digitized by a digitizer activity before
        digital processing.
    native_rate:
        Default element rate in elements/second (frames/s or samples/s),
        ``None`` where the type spans a range of rates (MPEG, DVI).
    """

    name: str
    kind: MediaKind
    encoding: str
    compressed: bool = False
    analog: bool = False
    native_rate: Optional[float] = None

    @property
    def is_abstract(self) -> bool:
        """Kind-level wildcard types (``encoding == "*"``)."""
        return self.encoding == "*"

    def accepts(self, other: "MediaType") -> bool:
        """Port-compatibility: can a port of this type carry ``other``?

        Exact match, or this type is the kind-level wildcard for
        ``other``'s kind.  Analog and digital types never interchange.
        """
        if self == other:
            return True
        if self.is_abstract and self.kind is other.kind and not other.analog:
            return True
        return False

    def require_kind(self, kind: MediaKind) -> None:
        if self.kind is not kind:
            raise MediaTypeError(f"expected a {kind.value} type, got {self.name!r}")

    def __str__(self) -> str:
        return self.name


class MediaTypeRegistry:
    """Mutable registry of media types, pre-seeded with the standard set."""

    def __init__(self) -> None:
        self._types: Dict[str, MediaType] = {}

    def register(self, media_type: MediaType) -> MediaType:
        if media_type.name in self._types:
            raise MediaTypeError(f"media type {media_type.name!r} already registered")
        self._types[media_type.name] = media_type
        return media_type

    def get(self, name: str) -> MediaType:
        try:
            return self._types[name]
        except KeyError:
            raise MediaTypeError(f"unknown media type {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self) -> Iterator[MediaType]:
        return iter(self._types.values())

    def __len__(self) -> int:
        return len(self._types)


def _seed(registry: MediaTypeRegistry) -> None:
    V, A = MediaKind.VIDEO, MediaKind.AUDIO
    registry.register(MediaType("video/*", V, "*"))
    registry.register(MediaType("video/raw", V, "raw", native_rate=30.0))
    # CCIR 601: uncompressed studio digital video, 13.5 MHz luma sampling.
    registry.register(MediaType("video/ccir601", V, "ccir601", native_rate=30.0))
    registry.register(MediaType("video/rle", V, "rle", compressed=True))
    registry.register(MediaType("video/jpeg", V, "jpeg", compressed=True))
    registry.register(MediaType("video/mpeg", V, "mpeg", compressed=True))
    registry.register(MediaType("video/dvi", V, "dvi", compressed=True))
    # LaserVision: analog video on videodisc, digitized on read.
    registry.register(MediaType("video/lv-analog", V, "lv", analog=True, native_rate=30.0))
    registry.register(MediaType("audio/*", A, "*"))
    registry.register(MediaType("audio/pcm", A, "pcm"))
    # CD encoded audio: stereo 16-bit PCM at 44.1 kHz (paper §3.1).
    registry.register(MediaType("audio/cd", A, "cd-pcm", native_rate=44100.0))
    registry.register(MediaType("audio/mulaw", A, "mulaw", compressed=True, native_rate=8000.0))
    registry.register(MediaType("audio/adpcm", A, "adpcm", compressed=True))
    registry.register(MediaType("text/*", MediaKind.TEXT, "*"))
    registry.register(MediaType("text/stream", MediaKind.TEXT, "stream"))
    registry.register(MediaType("image/raster", MediaKind.IMAGE, "raster"))
    registry.register(MediaType("midi/events", MediaKind.MIDI, "events"))
    registry.register(MediaType("geometry/pose", MediaKind.GEOMETRY, "pose"))


STANDARD_TYPES = MediaTypeRegistry()
_seed(STANDARD_TYPES)


def standard_type(name: str) -> MediaType:
    """Look up one of the pre-registered standard media types."""
    return STANDARD_TYPES.get(name)
