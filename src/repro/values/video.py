"""Video values (paper §4.1).

The paper's specialization::

    class VideoValue subclass-of MediaValue {
        int width
        int height
        int depth
        int numFrame
        ImageValue frame[numFrame]
    }

"Each of these classes would in turn have a number of specializations
reflecting different encoding and storage strategies ... Possible
specializations of VideoValue include JPEG-VideoValue, MPEG-VideoValue,
DVI-VideoValue, CCIR-VideoValue and LV-VideoValue (for values stored on
LaserVision videodiscs) ... an application working with existing AV values
can use the generic VideoValue class and thus be screened from underlying
differences in representation."

Frames are numpy arrays: shape ``(height, width)`` for 8-bit grayscale or
``(height, width, 3)`` for 24-bit colour, dtype ``uint8``.
"""

from __future__ import annotations

import abc
from typing import Any, List, Protocol, Sequence

import numpy as np

from repro.avtime import TimeMapping, WorldTime
from repro.errors import DataModelError, MediaTypeError
from repro.values.base import MediaValue
from repro.values.mediatype import MediaType, standard_type


def frame_shape(width: int, height: int, depth: int) -> tuple[int, ...]:
    """Array shape of a single frame for the given pixel geometry."""
    if depth == 8:
        return (height, width)
    if depth == 24:
        return (height, width, 3)
    raise DataModelError(f"unsupported pixel depth {depth} (use 8 or 24)")


def validate_frame(frame: np.ndarray, width: int, height: int, depth: int) -> np.ndarray:
    """Check dtype and geometry of one frame array."""
    expected = frame_shape(width, height, depth)
    if frame.dtype != np.uint8:
        raise DataModelError(f"frames must be uint8, got {frame.dtype}")
    if frame.shape != expected:
        raise DataModelError(f"frame shape {frame.shape} != expected {expected}")
    return frame


class VideoFrameCodec(Protocol):
    """Protocol encoded video values use to decode their chunks.

    Implemented by the codecs in :mod:`repro.codecs`; kept as a protocol so
    the value layer does not import the codec layer.
    """

    name: str

    def decode_frame_at(
        self, chunks: Sequence[bytes], index: int, width: int, height: int, depth: int
    ) -> np.ndarray: ...


class VideoValue(MediaValue, abc.ABC):
    """Generic video: a sequence of raster frames at a frame rate.

    Applications program against this class; the representation-specific
    subclasses below differ only in storage and ``media_type``.
    """

    def __init__(self, width: int, height: int, depth: int, mapping: TimeMapping) -> None:
        if width <= 0 or height <= 0:
            raise DataModelError(f"frame geometry must be positive, got {width}x{height}")
        frame_shape(width, height, depth)  # validates depth
        super().__init__(mapping)
        self.width = width
        self.height = height
        self.depth = depth

    @property
    def num_frames(self) -> int:
        """The paper's ``numFrame`` attribute."""
        return self.element_count

    @abc.abstractmethod
    def frame(self, index: int) -> np.ndarray:
        """Decoded frame ``index`` as a numpy array."""

    def element_payload(self, index: int) -> Any:
        return self.frame(index)

    def frame_at(self, when: WorldTime) -> np.ndarray:
        """Frame presented at world time ``when``."""
        return self.frame(self.world_to_object(when).index)

    def element_value(self, when: WorldTime) -> "MediaValue":
        """The paper's ``MediaValue Element(WorldTime)`` signature: the
        element at ``when`` *as a media value* (a still image whose
        display span is one frame period)."""
        from repro.values.image import ImageValue
        frame = self.frame_at(when)
        return ImageValue(frame, display_seconds=self.mapping.element_period().seconds)

    @property
    def geometry(self) -> tuple[int, int, int]:
        return (self.width, self.height, self.depth)

    def raw_frame_bits(self) -> int:
        """Uncompressed size of one frame in bits."""
        return self.width * self.height * self.depth


class RawVideoValue(VideoValue):
    """Uncompressed video held as one contiguous frame array."""

    _TYPE_NAME = "video/raw"

    def __init__(self, frames: np.ndarray, rate: float = 30.0,
                 mapping: TimeMapping | None = None) -> None:
        frames = np.asarray(frames, dtype=np.uint8)
        if frames.ndim == 3:
            depth = 8
            n, height, width = frames.shape
        elif frames.ndim == 4 and frames.shape[3] == 3:
            depth = 24
            n, height, width, _ = frames.shape
        else:
            raise DataModelError(
                f"frames must have shape (n,h,w) or (n,h,w,3), got {frames.shape}"
            )
        if n == 0:
            raise DataModelError("a video value must contain at least one frame")
        super().__init__(width, height, depth, mapping or TimeMapping(rate))
        self._frames = frames

    @property
    def media_type(self) -> MediaType:
        return standard_type(self._TYPE_NAME)

    @property
    def element_count(self) -> int:
        return int(self._frames.shape[0])

    def frame(self, index: int) -> np.ndarray:
        self._check_index(index)
        return self._frames[index]

    def element_size_bits(self, index: int) -> int:
        self._check_index(index)
        return self.raw_frame_bits()

    @property
    def frames_array(self) -> np.ndarray:
        """The full (n, h, w[, 3]) frame array (shared, do not mutate)."""
        return self._frames

    def _with_mapping(self, mapping: TimeMapping) -> "RawVideoValue":
        clone = type(self).__new__(type(self))
        VideoValue.__init__(clone, self.width, self.height, self.depth, mapping)
        clone._frames = self._frames
        return clone


class CCIRVideoValue(RawVideoValue):
    """CCIR 601 studio digital video: uncompressed, fixed type rate."""

    _TYPE_NAME = "video/ccir601"


class LVVideoValue(RawVideoValue):
    """Video stored in analog form on a LaserVision videodisc.

    The frame array stands for the analog master's latent content; reading
    the frames digitally models digitize-on-read.  Analog values cannot be
    carried on digital ports (see :meth:`MediaType.accepts`) — they must
    pass through a digitizer activity first.
    """

    _TYPE_NAME = "video/lv-analog"


class EncodedVideoValue(VideoValue):
    """Compressed video: one encoded chunk per frame, decoded on access."""

    _TYPE_NAME = "video/rle"  # overridden by subclasses

    def __init__(self, chunks: List[bytes], codec: VideoFrameCodec,
                 width: int, height: int, depth: int, rate: float = 30.0,
                 mapping: TimeMapping | None = None) -> None:
        if not chunks:
            raise DataModelError("a video value must contain at least one frame")
        super().__init__(width, height, depth, mapping or TimeMapping(rate))
        self._chunks = list(chunks)
        self._codec = codec
        expected = self._expected_codec_name()
        if expected is not None and codec.name != expected:
            raise MediaTypeError(
                f"{type(self).__name__} requires the {expected!r} codec, got {codec.name!r}"
            )

    @classmethod
    def _expected_codec_name(cls) -> str | None:
        """Codec name this class requires, or None for the generic class."""
        return None

    @property
    def media_type(self) -> MediaType:
        return standard_type(self._TYPE_NAME)

    @property
    def codec(self) -> VideoFrameCodec:
        return self._codec

    @property
    def chunks(self) -> List[bytes]:
        return self._chunks

    @property
    def element_count(self) -> int:
        return len(self._chunks)

    def frame(self, index: int) -> np.ndarray:
        self._check_index(index)
        return self._codec.decode_frame_at(
            self._chunks, index, self.width, self.height, self.depth
        )

    def element_size_bits(self, index: int) -> int:
        self._check_index(index)
        return len(self._chunks[index]) * 8

    def compression_ratio(self) -> float:
        """Raw bits over stored bits for the whole value."""
        stored = self.data_size_bits()
        if stored == 0:
            return float("inf")
        return self.raw_frame_bits() * self.element_count / stored

    def _with_mapping(self, mapping: TimeMapping) -> "EncodedVideoValue":
        clone = type(self).__new__(type(self))
        VideoValue.__init__(clone, self.width, self.height, self.depth, mapping)
        clone._chunks = self._chunks
        clone._codec = self._codec
        return clone


class JPEGVideoValue(EncodedVideoValue):
    """Intraframe block-DCT compressed video (JPEG-like)."""

    _TYPE_NAME = "video/jpeg"

    @classmethod
    def _expected_codec_name(cls) -> str | None:
        return "jpeg"


class MPEGVideoValue(EncodedVideoValue):
    """Interframe keyframe+delta compressed video (MPEG-like)."""

    _TYPE_NAME = "video/mpeg"

    @classmethod
    def _expected_codec_name(cls) -> str | None:
        return "mpeg"


class DVIVideoValue(EncodedVideoValue):
    """Block vector-quantization compressed video (DVI-like)."""

    _TYPE_NAME = "video/dvi"

    @classmethod
    def _expected_codec_name(cls) -> str | None:
        return "dvi"
