"""Text-stream values.

The paper's Newscast example includes a ``TextStreamValue subtitleTrack``
inside a temporal composite.  A text stream is a sequence of timed text
items (subtitles, captions) presented at a nominal item rate; items carry
their own display spans in object time so that irregular subtitle timing
is representable while the value still satisfies the uniform-rate
``MediaValue`` contract (object time = item index).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.avtime import TimeMapping
from repro.errors import DataModelError
from repro.values.base import MediaValue
from repro.values.mediatype import MediaType, standard_type


@dataclass(frozen=True, slots=True)
class TextItem:
    """One timed text element of a stream."""

    text: str
    # Display span in item units; 1.0 means the item occupies exactly one
    # nominal item period.
    span: float = 1.0

    def __post_init__(self) -> None:
        if self.span <= 0:
            raise DataModelError(f"text item span must be positive, got {self.span}")


class TextStreamValue(MediaValue):
    """A sequence of timed text items (e.g. a subtitle track)."""

    def __init__(self, items: Sequence[TextItem | str], rate: float = 1.0,
                 mapping: TimeMapping | None = None) -> None:
        if not items:
            raise DataModelError("a text stream must contain at least one item")
        normalized = [
            item if isinstance(item, TextItem) else TextItem(str(item)) for item in items
        ]
        super().__init__(mapping or TimeMapping(rate))
        self._items = normalized

    @property
    def media_type(self) -> MediaType:
        return standard_type("text/stream")

    @property
    def element_count(self) -> int:
        return len(self._items)

    def item(self, index: int) -> TextItem:
        self._check_index(index)
        return self._items[index]

    def element_payload(self, index: int) -> Any:
        return self.item(index)

    def element_size_bits(self, index: int) -> int:
        self._check_index(index)
        return len(self._items[index].text.encode("utf-8")) * 8

    def texts(self) -> list[str]:
        return [item.text for item in self._items]

    def _with_mapping(self, mapping: TimeMapping) -> "TextStreamValue":
        clone = type(self).__new__(type(self))
        MediaValue.__init__(clone, mapping)
        clone._items = self._items
        return clone
