"""Presentation logs and skew measurement.

Sinks record, per presented element, the *ideal* presentation time (what
the source's time mapping prescribed) and the *actual* virtual time of
presentation.  From these logs the benchmarks compute latency, jitter and
— between two sinks of a composite — inter-stream skew, the quantity the
paper says "tend[s] to jitter and require[s] regular resynchronization".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.avtime import WorldTime
from repro.errors import TemporalError


@dataclass(frozen=True, slots=True)
class PresentationRecord:
    """One presented element."""

    index: int
    ideal: WorldTime
    actual: WorldTime

    @property
    def latency(self) -> WorldTime:
        """actual - ideal: how late (or early, negative) it was presented."""
        return self.actual - self.ideal


@dataclass
class PresentationLog:
    """Ordered record of one sink's presentations."""

    name: str = "sink"
    records: List[PresentationRecord] = field(default_factory=list)

    def record(self, index: int, ideal: WorldTime, actual: WorldTime) -> None:
        self.records.append(PresentationRecord(index, ideal, actual))

    def __len__(self) -> int:
        return len(self.records)

    # -- statistics ---------------------------------------------------------
    def latencies(self) -> List[float]:
        return [r.latency.seconds for r in self.records]

    def mean_latency(self) -> float:
        if not self.records:
            raise TemporalError(f"log {self.name!r} is empty")
        values = self.latencies()
        return sum(values) / len(values)

    def max_latency(self) -> float:
        if not self.records:
            raise TemporalError(f"log {self.name!r} is empty")
        return max(self.latencies())

    def jitter(self) -> float:
        """Peak-to-peak variation of latency (seconds)."""
        values = self.latencies()
        if len(values) < 2:
            return 0.0
        return max(values) - min(values)

    def interarrival_stddev(self) -> float:
        """Standard deviation of actual inter-presentation gaps."""
        if len(self.records) < 3:
            return 0.0
        gaps = [
            (b.actual - a.actual).seconds
            for a, b in zip(self.records, self.records[1:])
        ]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        return var ** 0.5

    def latency_at_ideal(self, ideal: WorldTime) -> Optional[float]:
        """Latency of the record closest to ``ideal``, or None if empty."""
        if not self.records:
            return None
        best = min(self.records, key=lambda r: abs((r.ideal - ideal).seconds))
        return best.latency.seconds


def skew_between(log_a: PresentationLog, log_b: PresentationLog,
                 samples: int = 50) -> List[float]:
    """Inter-stream skew series between two presentation logs.

    At ``samples`` evenly spaced ideal times over the logs' common ideal
    span, the skew is ``latency_a - latency_b``: how far stream A has
    drifted relative to stream B.  Perfectly synchronized streams give an
    all-zero series regardless of shared latency.
    """
    if not log_a.records or not log_b.records:
        raise TemporalError("cannot compute skew with an empty presentation log")
    lo = max(log_a.records[0].ideal.seconds, log_b.records[0].ideal.seconds)
    hi = min(log_a.records[-1].ideal.seconds, log_b.records[-1].ideal.seconds)
    if hi < lo:
        raise TemporalError("presentation logs do not overlap in ideal time")
    series = []
    count = max(2, samples)
    for i in range(count):
        t = WorldTime(lo + (hi - lo) * i / (count - 1))
        la = log_a.latency_at_ideal(t)
        lb = log_b.latency_at_ideal(t)
        series.append(la - lb)
    return series
