"""Jitter models and resynchronization (paper §3.3, scheduling).

"Because of unpredictable system latencies, AV values tend to jitter and
require regular resynchronization."

A :class:`JitterModel` injects per-element latency into a source's pacing.
:class:`RandomWalkJitter` makes the latency a bounded random walk, so
*drift accumulates* — exactly the failure mode that makes unsynchronized
long streams fall apart.  A :class:`SyncGroup` is the database-side
coordinator: member sources report their current drift and the group
computes the correction each member must apply; a :class:`Resynchronizer`
applies the correction every ``interval`` elements, bounding skew.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, List

from repro.errors import TemporalError


class JitterModel(abc.ABC):
    """Per-element latency offsets, deterministic given a seed."""

    @abc.abstractmethod
    def offset(self, index: int) -> float:
        """Latency (seconds, >= 0) injected before producing element ``index``.

        Must be called with strictly increasing ``index`` values; models
        may carry state between calls.
        """

    @abc.abstractmethod
    def reset_drift(self) -> None:
        """Drop accumulated drift (a resynchronization point)."""


class NoJitter(JitterModel):
    """The ideal system: every element exactly on schedule."""

    def offset(self, index: int) -> float:
        return 0.0

    def reset_drift(self) -> None:
        return None


class RandomWalkJitter(JitterModel):
    """Latency performing a non-negative bounded random walk.

    Each element's latency moves by a uniform step in
    ``[-step, +step * bias]``; with ``bias > 1`` (default) latency tends
    upward, modelling queueing delays that accumulate until something
    resynchronizes the stream.
    """

    def __init__(self, step: float = 0.002, bias: float = 1.5,
                 ceiling: float = 1.0, seed: int = 0) -> None:
        if step < 0:
            raise TemporalError(f"jitter step must be >= 0, got {step}")
        self._step = step
        self._bias = bias
        self._ceiling = ceiling
        self._rng = random.Random(seed)
        self._drift = 0.0

    @property
    def drift(self) -> float:
        return self._drift

    def offset(self, index: int) -> float:
        delta = self._rng.uniform(-self._step, self._step * self._bias)
        self._drift = min(self._ceiling, max(0.0, self._drift + delta))
        return self._drift

    def reset_drift(self) -> None:
        self._drift = 0.0


class Resynchronizer:
    """Applies drift correction every ``interval`` elements."""

    def __init__(self, interval: int = 10) -> None:
        if interval < 1:
            raise TemporalError(f"resync interval must be >= 1, got {interval}")
        self.interval = interval
        self.resync_count = 0

    def maybe_resync(self, index: int, jitter: JitterModel) -> bool:
        """Reset the model's drift at resync points; True when applied."""
        if index > 0 and index % self.interval == 0:
            jitter.reset_drift()
            self.resync_count += 1
            return True
        return False


class SyncGroup:
    """Coordinates the member streams of one composite activity.

    Members register under a track name and report their drift each time
    they produce an element.  ``max_skew`` is the instantaneous spread of
    reported drifts — the quantity composite activities must keep small
    ("assuring that the streams corresponding to the different tracks
    remain temporally correlated").
    """

    def __init__(self, name: str = "sync-group") -> None:
        self.name = name
        self._drifts: Dict[str, float] = {}
        self._history: List[float] = []

    def register(self, member: str) -> None:
        if member in self._drifts:
            raise TemporalError(f"member {member!r} already in sync group {self.name!r}")
        self._drifts[member] = 0.0

    @property
    def members(self) -> List[str]:
        return sorted(self._drifts)

    def report(self, member: str, drift: float) -> None:
        if member not in self._drifts:
            raise TemporalError(f"member {member!r} not in sync group {self.name!r}")
        self._drifts[member] = drift
        if len(self._drifts) > 1:
            self._history.append(self.current_skew())

    def current_skew(self) -> float:
        if not self._drifts:
            return 0.0
        values = list(self._drifts.values())
        return max(values) - min(values)

    def max_skew(self) -> float:
        return max(self._history, default=0.0)

    def skew_history(self) -> List[float]:
        return list(self._history)
