"""Streams: AV data in its *active* state (paper §4.2).

"AV data has an active state.  In this form it is best thought of as a
stream, i.e., a rate can be associated with the data and operations on the
data must proceed at this rate. ... AV database systems must manage
streams of data in addition to passive data elements."

* :class:`StreamElement` — one in-flight data element, stamped with its
  object-time index, ideal presentation time and size;
* :class:`StreamBuffer` — the bounded, backpressured queue that carries
  elements across a port connection (runs on the DES kernel);
* :class:`PresentationLog` — what a sink records; skew/jitter statistics
  are computed from these logs;
* :class:`JitterModel` hierarchy — injected latency models, including the
  accumulating drift that motivates the paper's "regular
  resynchronization" requirement, and the resync controller that removes
  it.
"""

from repro.streams.buffer import StreamBuffer
from repro.streams.clock import PresentationLog, PresentationRecord, skew_between
from repro.streams.element import END_OF_STREAM, EndOfStream, StreamElement
from repro.streams.sync import (
    JitterModel,
    NoJitter,
    RandomWalkJitter,
    Resynchronizer,
    SyncGroup,
)

__all__ = [
    "StreamElement",
    "EndOfStream",
    "END_OF_STREAM",
    "StreamBuffer",
    "PresentationLog",
    "PresentationRecord",
    "skew_between",
    "JitterModel",
    "NoJitter",
    "RandomWalkJitter",
    "Resynchronizer",
    "SyncGroup",
]
